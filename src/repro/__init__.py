"""Reproduction of "MISS: Multi-Interest Self-Supervised Learning Framework
for Click-Through Rate Prediction" (Guo et al., ICDE 2022).

Subpackages
-----------
``repro.nn``             numpy autodiff substrate (tensors, layers, optimisers)
``repro.data``           InterestWorld simulator + the paper's data pipeline
``repro.models``         the 13 CTR baselines of Table IV
``repro.core``           the MISS framework (extractors, augmentation, losses)
``repro.ssl_baselines``  Rule / IRSSL / S3Rec / CL4SRec (Table VI)
``repro.training``       trainer, metrics, calibration, experiment runner
``repro.resilience``     crash-safe checkpoints, exact resume, anomaly recovery
``repro.serving``        frozen artifacts, micro-batched scoring, HTTP serving
``repro.bench``          benchmark harness regenerating every table and figure
"""

__version__ = "1.0.0"

__all__ = ["nn", "data", "models", "core", "ssl_baselines", "training",
           "resilience", "serving", "bench", "__version__"]
