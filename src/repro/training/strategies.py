"""Multi-task training strategies for MISS (paper §IV-C and Table IX).

* :func:`train_joint` — the default: one loop over Eq. 17's combined loss.
* :func:`train_pretrain` — the two-stage alternative: first optimise only the
  SSL losses to shape the embeddings, then fine-tune with the CTR loss alone.
"""

from __future__ import annotations

import numpy as np

from ..core.plugin import MISSEnhancedModel
from ..data.batching import CTRDataset, DataLoader
from ..nn import Adam, clip_grad_norm
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["train_joint", "train_pretrain"]


def train_joint(model: MISSEnhancedModel, train: CTRDataset,
                validation: CTRDataset, config: TrainConfig,
                on_batch_end=None, observers=None) -> TrainResult:
    """MISS-Joint: CTR and SSL losses optimised together end-to-end."""
    return Trainer(config).fit(model, train, validation,
                               on_batch_end=on_batch_end, observers=observers)


def train_pretrain(model: MISSEnhancedModel, train: CTRDataset,
                   validation: CTRDataset, config: TrainConfig,
                   pretrain_epochs: int = 3, observers=None) -> TrainResult:
    """MISS-Pre: SSL-only pre-training, then CTR-only fine-tuning.

    Stage one runs ``pretrain_epochs`` passes that minimise only the weighted
    SSL loss (no click supervision), initialising the shared embeddings.
    Stage two fine-tunes with the base model's CTR loss; the SSL component is
    frozen out of the objective, matching the paper's description.
    """
    if pretrain_epochs < 1:
        raise ValueError("pretrain_epochs must be >= 1")

    rng = np.random.default_rng(config.seed)
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, rng=rng)
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    model.train()
    for _ in range(pretrain_epochs):
        for batch in loader:
            optimizer.zero_grad()
            loss = model.ssl_loss(batch)
            loss.backward()
            clip_grad_norm(optimizer.parameters, config.grad_clip)
            optimizer.step()

    # Stage two: plain CTR fine-tuning of the base model (embeddings warm).
    return Trainer(config).fit(model.base, train, validation,
                               observers=observers)
