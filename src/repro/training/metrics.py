"""Evaluation metrics: AUC and Logloss (§VI-A4), plus relative improvement."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["auc_score", "logloss_score", "relative_improvement", "EvalResult"]


@dataclass(frozen=True)
class EvalResult:
    """AUC/Logloss pair for one model on one split."""

    auc: float
    logloss: float

    def __str__(self) -> str:
        return f"AUC={self.auc:.4f} Logloss={self.logloss:.4f}"


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Tied scores receive average ranks, so the estimate is exact in the
    presence of ties.  Requires at least one positive and one negative.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    positives = labels == 1.0
    num_pos = int(positives.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("AUC undefined without both classes")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    ranks[order] = np.arange(1, scores.size + 1, dtype=np.float64)
    # Average ranks across ties.
    sorted_scores = scores[order]
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0) + 1
    groups = np.split(np.arange(scores.size), boundaries)
    for group in groups:
        if group.size > 1:
            ranks[order[group]] = ranks[order[group]].mean()
    rank_sum = ranks[positives].sum()
    u_statistic = rank_sum - num_pos * (num_pos + 1) / 2.0
    return float(u_statistic / (num_pos * num_neg))


def logloss_score(labels: np.ndarray, probs: np.ndarray, eps: float = 1e-7) -> float:
    """Mean binary cross-entropy between labels and predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64)
    probs = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
    if labels.shape != probs.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {probs.shape}")
    return float(-(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)).mean())


def relative_improvement(baseline: float, improved: float) -> float:
    """The paper's RI column: ``(improved - baseline) / baseline`` in percent."""
    if baseline == 0:
        raise ZeroDivisionError("baseline metric is zero")
    return 100.0 * (improved - baseline) / baseline
