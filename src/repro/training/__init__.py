"""Training harness: metrics, trainer, strategies, calibration, experiments."""

from .calibration import PlattScaler
from .experiment import (
    ExperimentResult,
    calibrated_eval,
    predict_logits_array,
    run_experiment,
)
from .metrics import EvalResult, auc_score, logloss_score, relative_improvement
from .strategies import train_joint, train_pretrain
from .trainer import TrainConfig, Trainer, TrainResult, evaluate, improvement

__all__ = [
    "PlattScaler",
    "ExperimentResult", "calibrated_eval", "predict_logits_array", "run_experiment",
    "EvalResult", "auc_score", "logloss_score", "relative_improvement",
    "train_joint", "train_pretrain",
    "TrainConfig", "Trainer", "TrainResult", "evaluate", "improvement",
]
