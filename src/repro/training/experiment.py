"""High-level experiment runner shared by the benchmark harness and examples.

``run_experiment`` owns the full protocol: train with validation-based model
selection, fit the uniform Platt calibration on validation, and report
calibrated AUC/Logloss on the test split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batching import CTRDataset, DataLoader
from ..data.processing import ProcessedData
from ..models.base import CTRModel
from ..obs import EvalEndEvent, ObserverList
from ..serving.forward import forward_logits
from .calibration import PlattScaler
from .metrics import EvalResult, auc_score, logloss_score
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["ExperimentResult", "predict_logits_array", "calibrated_eval",
           "run_experiment"]


@dataclass
class ExperimentResult:
    """Outcome of one (model, dataset) cell in a results table."""

    model_name: str
    dataset_name: str
    test: EvalResult
    validation: EvalResult
    train_result: TrainResult

    @property
    def auc(self) -> float:
        return self.test.auc

    @property
    def logloss(self) -> float:
        return self.test.logloss


def predict_logits_array(model: CTRModel, dataset: CTRDataset,
                         batch_size: int = 512) -> np.ndarray:
    """Raw logits for every sample of ``dataset`` in eval mode.

    Computed through the deterministic blocked forward shared with the
    serving subsystem, so the result is bit-identical for any
    ``batch_size`` — and to an :class:`~repro.serving.InferenceSession`
    scoring the same rows online.
    """
    if len(dataset) == 0:
        raise ValueError(
            f"cannot predict on an empty split of dataset "
            f"{dataset.schema.name!r}: it contains no samples")
    was_training = model.training
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    logits = np.concatenate([forward_logits(model, batch)
                             for batch in loader])
    if was_training:
        model.train()
    return logits


def calibrated_eval(model: CTRModel, data: ProcessedData,
                    batch_size: int = 512) -> tuple[EvalResult, EvalResult]:
    """(validation, test) metrics after Platt calibration on validation."""
    val_logits = predict_logits_array(model, data.validation, batch_size)
    scaler = PlattScaler.fit(val_logits, data.validation.labels)
    val_probs = scaler.transform(val_logits)
    test_logits = predict_logits_array(model, data.test, batch_size)
    test_probs = scaler.transform(test_logits)
    validation = EvalResult(auc=auc_score(data.validation.labels, val_probs),
                            logloss=logloss_score(data.validation.labels, val_probs))
    test = EvalResult(auc=auc_score(data.test.labels, test_probs),
                      logloss=logloss_score(data.test.labels, test_probs))
    return validation, test


def run_experiment(model: CTRModel, data: ProcessedData, config: TrainConfig,
                   model_name: str = "", train=None,
                   on_batch_end=None, observers=None, *,
                   checkpoint_dir=None, resume: bool = False,
                   checkpoint_every: int | None = None,
                   keep_checkpoints: int = 3,
                   anomaly_guard=None) -> ExperimentResult:
    """Train ``model`` and return calibrated test metrics.

    ``train`` overrides the training split (used by the corruption studies
    and to train straight off a pipeline ``ShardedCTRDataset``);
    validation/test always come from ``data`` untouched.  ``observers`` are
    threaded through to :meth:`Trainer.fit` and additionally receive the
    calibrated test evaluation as a final ``eval_end`` event (after the
    trainer's ``run_end``), so run traces record the reported numbers.

    The resilience options (``checkpoint_dir``/``resume``/
    ``checkpoint_every``/``keep_checkpoints``/``anomaly_guard``) are passed
    straight to :meth:`Trainer.fit` — see :mod:`repro.resilience`.
    """
    obs = ObserverList.build(observers, on_batch_end=None)
    train_split = train if train is not None else data.train
    train_result = Trainer(config).fit(model, train_split, data.validation,
                                       on_batch_end=on_batch_end,
                                       observers=obs,
                                       checkpoint_dir=checkpoint_dir,
                                       resume=resume,
                                       checkpoint_every=checkpoint_every,
                                       keep_checkpoints=keep_checkpoints,
                                       anomaly_guard=anomaly_guard)
    validation, test = calibrated_eval(model, data,
                                       batch_size=config.eval_batch_size)
    if obs:
        obs.on_eval_end(EvalEndEvent(
            epoch=train_result.best_epoch, split="test",
            auc=test.auc, logloss=test.logloss))
    return ExperimentResult(
        model_name=model_name or type(model).__name__,
        dataset_name=data.schema.name,
        test=test,
        validation=validation,
        train_result=train_result,
    )
