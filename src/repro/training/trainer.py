"""Mini-batch training loop with validation-based model selection.

Follows the paper's protocol (§VI-A5): Adam optimiser, batch size 128, the
validation split drives hyper-parameter/epoch selection, and reported numbers
come from the test split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.batching import Batch, CTRDataset, DataLoader
from ..models.base import CTRModel
from ..nn import Adam, clip_grad_norm
from .metrics import EvalResult, auc_score, logloss_score

__all__ = ["TrainConfig", "TrainResult", "Trainer", "evaluate"]

BatchCallback = Callable[[CTRModel, Batch, int], None]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 10
    batch_size: int = 128
    learning_rate: float = 1e-2
    weight_decay: float = 1e-5
    patience: int = 3          # early stopping on validation AUC
    grad_clip: float = 10.0
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    best_epoch: int
    validation: EvalResult
    history: list[EvalResult] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)


def evaluate(model: CTRModel, dataset: CTRDataset, batch_size: int = 512) -> EvalResult:
    """AUC/Logloss of ``model`` on ``dataset`` in eval mode."""
    was_training = model.training
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    probs = np.concatenate([model.predict_proba(batch) for batch in loader])
    if was_training:
        model.train()
    return EvalResult(auc=auc_score(dataset.labels, probs),
                      logloss=logloss_score(dataset.labels, probs))


class Trainer:
    """Trains any :class:`CTRModel` via its ``training_loss`` hook.

    The same trainer drives plain baselines, MISS-enhanced models, and the
    SSL baselines — they only differ in what ``training_loss`` returns.
    """

    def __init__(self, config: TrainConfig):
        self.config = config

    def fit(self, model: CTRModel, train: CTRDataset, validation: CTRDataset,
            on_batch_end: BatchCallback | None = None) -> TrainResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        loader = DataLoader(train, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        best_auc = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        best_epoch = -1
        bad_epochs = 0
        history: list[EvalResult] = []
        losses: list[float] = []
        step = 0

        model.train()
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            num_batches = 0
            for batch in loader:
                optimizer.zero_grad()
                loss = model.training_loss(batch)
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
                step += 1
                if on_batch_end is not None:
                    on_batch_end(model, batch, step)
            losses.append(epoch_loss / max(num_batches, 1))

            result = evaluate(model, validation)
            history.append(result)
            if result.auc > best_auc:
                best_auc = result.auc
                best_state = model.state_dict()
                best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= cfg.patience:
                    break

        if best_state is not None:
            model.load_state_dict(best_state)
        return TrainResult(best_epoch=best_epoch, validation=history[best_epoch],
                           history=history, train_losses=losses)
