"""Mini-batch training loop with validation-based model selection.

Follows the paper's protocol (§VI-A5): Adam optimiser, batch size 128, the
validation split drives hyper-parameter/epoch selection, and reported numbers
come from the test split.

The loop narrates itself through the :mod:`repro.obs` event bus: pass
``observers=[...]`` to receive structured run/epoch/batch/eval events, with
per-phase wall-time (data assembly, forward, backward, optimiser step, eval)
and per-component losses when the model exposes them.  The historical
``on_batch_end(model, batch, step)`` callback keeps working as a shim.  With
no observers attached the instrumentation is skipped entirely.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from ..data.batching import Batch, CTRDataset, DataLoader
from ..models.base import CTRModel
from ..nn import Adam, clip_grad_norm, no_grad
from ..obs import (
    BatchEndEvent,
    EpochStartEvent,
    EvalEndEvent,
    MetricRegistry,
    ObserverList,
    PhaseTimings,
    RunEndEvent,
    RunStartEvent,
    collect,
    phase,
)
from .metrics import EvalResult, auc_score, logloss_score

__all__ = ["TrainConfig", "TrainResult", "Trainer", "evaluate"]

BatchCallback = Callable[[CTRModel, Batch, int], None]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 10
    batch_size: int = 128
    learning_rate: float = 1e-2
    weight_decay: float = 1e-5
    patience: int = 3          # early stopping on validation AUC
    grad_clip: float = 10.0
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    best_epoch: int
    validation: EvalResult
    history: list[EvalResult] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)
    #: JSON-safe telemetry snapshots; populated only when observers were
    #: attached to the run (metric registry dump and per-phase timings).
    metrics: dict | None = None
    timings: dict | None = None


def evaluate(model: CTRModel, dataset: CTRDataset, batch_size: int = 512) -> EvalResult:
    """AUC/Logloss of ``model`` on ``dataset`` in eval mode."""
    was_training = model.training
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        probs = np.concatenate([model.predict_proba(batch) for batch in loader])
    if was_training:
        model.train()
    return EvalResult(auc=auc_score(dataset.labels, probs),
                      logloss=logloss_score(dataset.labels, probs))


class Trainer:
    """Trains any :class:`CTRModel` via its ``training_loss`` hook.

    The same trainer drives plain baselines, MISS-enhanced models, and the
    SSL baselines — they only differ in what ``training_loss`` returns.
    """

    def __init__(self, config: TrainConfig):
        self.config = config

    def fit(self, model: CTRModel, train: CTRDataset, validation: CTRDataset,
            on_batch_end: BatchCallback | None = None,
            observers=None) -> TrainResult:
        cfg = self.config
        obs = ObserverList.build(observers, on_batch_end)
        rng = np.random.default_rng(cfg.seed)
        loader = DataLoader(train, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        best_auc = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        best_epoch = -1
        bad_epochs = 0
        history: list[EvalResult] = []
        losses: list[float] = []
        step = 0

        # Instrumentation is armed only when someone is listening, so a bare
        # ``fit()`` pays nothing for the telemetry layer.
        instrument = bool(obs)
        registry = MetricRegistry() if instrument else None
        timings = PhaseTimings(registry=registry) if instrument else None
        run_start = time.perf_counter()
        epochs_run = 0
        if instrument:
            obs.on_run_start(RunStartEvent(
                model=type(model).__name__, num_train=len(train),
                num_validation=len(validation), config=asdict(cfg)))

        model.train()
        for epoch in range(cfg.epochs):
            epochs_run = epoch + 1
            if instrument:
                obs.on_epoch_start(EpochStartEvent(epoch=epoch))
            epoch_loss = 0.0
            num_batches = 0
            component_sums: dict[str, float] = {}
            with collect(timings) if instrument else nullcontext():
                for batch in loader:
                    optimizer.zero_grad()
                    with phase("train.forward"):
                        loss = model.training_loss(batch)
                    with phase("train.backward"):
                        loss.backward()
                    with phase("train.optim"):
                        grad_norm = clip_grad_norm(optimizer.parameters,
                                                   cfg.grad_clip)
                        optimizer.step()
                    loss_value = loss.item()
                    epoch_loss += loss_value
                    num_batches += 1
                    step += 1
                    if instrument:
                        components = getattr(model, "last_loss_components", None)
                        self._record_step(registry, loss_value, grad_norm,
                                          components)
                        if components:
                            for name, value in components.items():
                                component_sums[name] = (
                                    component_sums.get(name, 0.0) + value)
                        obs.on_batch_end(BatchEndEvent(
                            epoch=epoch, step=step, loss=loss_value,
                            grad_norm=grad_norm, loss_components=components,
                            model=model, batch=batch))
                with phase("train.eval"):
                    result = evaluate(model, validation)
            losses.append(epoch_loss / max(num_batches, 1))
            history.append(result)
            if instrument:
                means = ({name: total / max(num_batches, 1)
                          for name, total in component_sums.items()}
                         or None)
                obs.on_eval_end(EvalEndEvent(
                    epoch=epoch, split="validation", auc=result.auc,
                    logloss=result.logloss, train_loss=losses[-1],
                    loss_components=means))

            # NaN validation AUC must not silently win (NaN > x is False for
            # every x); it counts as a non-improving epoch here and the
            # all-NaN case is rejected explicitly after the loop.
            if np.isfinite(result.auc) and result.auc > best_auc:
                best_auc = result.auc
                best_state = model.state_dict()
                best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= cfg.patience:
                    break

        if best_state is None:
            raise RuntimeError(
                "training never produced a finite validation AUC "
                f"({epochs_run} epoch(s), last={history[-1].auc!r}); "
                "refusing to silently select the final weights")
        model.load_state_dict(best_state)
        telemetry_metrics = registry.snapshot() if instrument else None
        telemetry_timings = timings.snapshot() if instrument else None
        if instrument:
            obs.on_run_end(RunEndEvent(
                best_epoch=best_epoch, epochs_run=epochs_run, steps=step,
                wall_time_s=time.perf_counter() - run_start,
                timings=telemetry_timings, metrics=telemetry_metrics))
        return TrainResult(best_epoch=best_epoch, validation=history[best_epoch],
                           history=history, train_losses=losses,
                           metrics=telemetry_metrics, timings=telemetry_timings)

    @staticmethod
    def _record_step(registry: MetricRegistry, loss: float, grad_norm: float,
                     components: dict[str, float] | None) -> None:
        registry.counter("train.steps").inc()
        registry.ema("train.loss.total").update(loss)
        registry.histogram("train.grad_norm").record(grad_norm)
        if components:
            for name, value in components.items():
                registry.ema(f"train.loss.{name}").update(value)
