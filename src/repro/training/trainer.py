"""Mini-batch training loop with validation-based model selection.

Follows the paper's protocol (§VI-A5): Adam optimiser, batch size 128, the
validation split drives hyper-parameter/epoch selection, and reported numbers
come from the test split.

The loop narrates itself through the :mod:`repro.obs` event bus: pass
``observers=[...]`` to receive structured run/epoch/batch/eval events, with
per-phase wall-time (data assembly, forward, backward, optimiser step, eval)
and per-component losses when the model exposes them.  The historical
``on_batch_end(model, batch, step)`` callback keeps working as a shim.  With
no observers attached the instrumentation is skipped entirely.

Crash safety (see :mod:`repro.resilience` and DESIGN.md §"Resilience"):
``fit(..., checkpoint_dir=...)`` writes atomic, checksummed
:class:`~repro.resilience.RunCheckpoint` files every ``checkpoint_every``
steps and at every epoch end; ``resume=True`` continues a killed run
bit-identically (same weights, same metrics) because the checkpoint carries
the optimiser moments, the loader RNG state at epoch start, and every
module-level RNG stream.  If *every* checkpoint on disk fails validation,
``resume=True`` raises instead of silently restarting from scratch.
SIGINT/SIGTERM finish the in-flight step (or the in-flight epoch-end eval),
write a final checkpoint, and raise
:class:`~repro.resilience.TrainingInterrupted`.
``anomaly_guard=True`` adds NaN/Inf/spike detection with rollback to the last
good checkpoint and learning-rate backoff under a bounded retry budget.
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..data.batching import Batch, CTRDataset, DataLoader
from ..data.pipeline.loader import PrefetchLoader
from ..models.base import CTRModel
from ..nn import Adam, clip_grad_norm, get_backend
from ..serving.forward import forward_probabilities
from ..obs import (
    AnomalyDetectedEvent,
    BatchEndEvent,
    CheckpointRestoredEvent,
    CheckpointWrittenEvent,
    EpochStartEvent,
    EvalEndEvent,
    MetricRegistry,
    ObserverList,
    PhaseTimings,
    RunEndEvent,
    RunStartEvent,
    collect,
    phase,
)
from ..resilience import (
    AnomalyGuard,
    AnomalySignal,
    CheckpointCorruptError,
    CheckpointStore,
    GracefulInterrupt,
    NumericalAnomalyError,
    RunCheckpoint,
    TrainingInterrupted,
    named_rng_states,
    restore_rng_states,
    rng_state,
    set_rng_state,
)
from .metrics import EvalResult, auc_score, logloss_score

__all__ = ["TrainConfig", "TrainResult", "Trainer", "evaluate",
           "improvement"]

BatchCallback = Callable[[CTRModel, Batch, int], None]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 10
    batch_size: int = 128
    eval_batch_size: int = 512  # memory granularity of eval forwards
    learning_rate: float = 1e-2
    weight_decay: float = 1e-5
    patience: int = 3          # early stopping on validation AUC
    grad_clip: float = 10.0
    seed: int = 0
    num_workers: int = 0       # 0 = in-line batch assembly (DataLoader)
    prefetch_depth: int = 2    # batches per worker window when prefetching

    def __post_init__(self):
        # Bad CLI input must fail here, at construction, not mid-run.
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1")
        if not math.isfinite(self.learning_rate) or self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be finite and positive, "
                f"got {self.learning_rate!r}")
        if not math.isfinite(self.grad_clip) or self.grad_clip <= 0:
            raise ValueError(
                f"grad_clip must be finite and positive, got {self.grad_clip!r}")
        if not math.isfinite(self.weight_decay) or self.weight_decay < 0:
            raise ValueError(
                f"weight_decay must be finite and non-negative, "
                f"got {self.weight_decay!r}")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    best_epoch: int
    validation: EvalResult
    history: list[EvalResult] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)
    #: JSON-safe telemetry snapshots; populated only when observers were
    #: attached to the run (metric registry dump and per-phase timings).
    metrics: dict | None = None
    timings: dict | None = None


def evaluate(model: CTRModel, dataset: CTRDataset, batch_size: int = 512) -> EvalResult:
    """AUC/Logloss of ``model`` on ``dataset`` in eval mode.

    ``batch_size`` only bounds how many rows are materialised at once; the
    actual forward runs through the fixed-block deterministic path shared
    with the serving subsystem, so metrics are bit-identical for any choice
    of ``batch_size`` (and to online scores of the same rows).
    """
    if len(dataset) == 0:
        raise ValueError(
            f"cannot evaluate on an empty split of dataset "
            f"{dataset.schema.name!r}: it contains no samples")
    was_training = model.training
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    probs = np.concatenate([forward_probabilities(model, batch)
                            for batch in loader])
    if was_training:
        model.train()
    return EvalResult(auc=auc_score(dataset.labels, probs),
                      logloss=logloss_score(dataset.labels, probs))


def improvement(auc: float, best_auc: float) -> bool:
    """Validation-selection rule shared by :class:`Trainer` and
    :mod:`repro.distributed`: an epoch improves only on a *finite* AUC
    strictly above the best so far.  NaN must not silently win (``NaN > x``
    is ``False`` for every ``x``), so a NaN epoch counts as non-improving
    and the all-NaN case is rejected explicitly after the loop.
    """
    return bool(np.isfinite(auc) and auc > best_auc)


class _RunState:
    """Mutable loop state of one training run — exactly what a
    :class:`RunCheckpoint` serialises, plus the live loader RNG."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.epoch = 0
        self.batches_done = 0          # batches completed in current epoch
        self.epoch_rng_state = rng_state(rng)  # loader RNG at epoch start
        self.step = 0
        self.best_auc = -np.inf
        self.best_state: dict[str, np.ndarray] | None = None
        self.best_epoch = -1
        self.bad_epochs = 0
        self.history: list[EvalResult] = []
        self.losses: list[float] = []
        self.epoch_loss = 0.0
        self.num_batches = 0
        self.component_sums: dict[str, float] = {}
        self.epochs_run = 0
        self.completed = False


class Trainer:
    """Trains any :class:`CTRModel` via its ``training_loss`` hook.

    The same trainer drives plain baselines, MISS-enhanced models, and the
    SSL baselines — they only differ in what ``training_loss`` returns.
    """

    def __init__(self, config: TrainConfig):
        self.config = config

    # ``train`` may be any ``__len__`` + ``batch(indices)`` dataset — the
    # in-memory CTRDataset or a pipeline ShardedCTRDataset (duck-typed).
    def fit(self, model: CTRModel, train, validation: CTRDataset,
            on_batch_end: BatchCallback | None = None,
            observers=None, *,
            checkpoint_dir: str | Path | None = None,
            resume: bool = False,
            checkpoint_every: int | None = None,
            keep_checkpoints: int = 3,
            anomaly_guard=None,
            handle_signals: bool | None = None) -> TrainResult:
        cfg = self.config
        obs = ObserverList.build(observers, on_batch_end)
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        store = (CheckpointStore(checkpoint_dir, keep_last=keep_checkpoints)
                 if checkpoint_dir is not None else None)
        if resume and store is None:
            raise ValueError("resume=True requires checkpoint_dir")
        guard = AnomalyGuard.build(anomaly_guard)
        if handle_signals is None:
            handle_signals = store is not None

        rng = np.random.default_rng(cfg.seed)
        if cfg.num_workers > 0:
            # Same RNG stream, same epoch order — the prefetch loader's
            # determinism contract (DESIGN.md §11) keeps resume bit-identical
            # at any worker count.
            loader = PrefetchLoader(train, batch_size=cfg.batch_size,
                                    shuffle=True, rng=rng,
                                    num_workers=cfg.num_workers,
                                    prefetch_depth=cfg.prefetch_depth)
        else:
            loader = DataLoader(train, batch_size=cfg.batch_size, shuffle=True,
                                rng=rng)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        state = _RunState(rng)

        if resume:
            ckpt, path, skipped = store.load_latest()
            if ckpt is None and skipped:
                # Every checkpoint on disk failed validation.  Restarting from
                # scratch here would silently discard a (possibly multi-hour)
                # run and overwrite the corrupt-but-diagnostic files.
                reasons = "; ".join(f"{p}: {why}" for p, why in skipped)
                raise CheckpointCorruptError(
                    f"resume=True, but no checkpoint in {store.directory} "
                    f"passed validation; refusing to silently restart from "
                    f"scratch ({reasons})")
            if ckpt is not None:
                self._restore(ckpt, model, optimizer, state, guard)
                obs.on_checkpoint_restored(CheckpointRestoredEvent(
                    step=ckpt.step, epoch=ckpt.epoch, reason="resume",
                    path=str(path),
                    skipped=[str(p) for p, _ in skipped] or None))
                if ckpt.completed:
                    # The run already finished; the checkpointed model state
                    # is the best-epoch weights, so just report the result.
                    return TrainResult(
                        best_epoch=state.best_epoch,
                        validation=state.history[state.best_epoch],
                        history=state.history, train_losses=state.losses)

        # Instrumentation is armed only when someone is listening, so a bare
        # ``fit()`` pays nothing for the telemetry layer.
        instrument = bool(obs)
        registry = MetricRegistry() if instrument else None
        timings = PhaseTimings(registry=registry) if instrument else None
        if instrument:
            # Pipeline telemetry (queue-depth gauge, shard-cache counters,
            # shard_loaded events) when the loader/dataset support it; the
            # loader forwards the binding to its dataset.
            for target in (loader, train):
                bind = getattr(target, "bind_telemetry", None)
                if bind is not None:
                    bind(registry=registry, observers=obs)
                    break
        run_start = time.perf_counter()
        if instrument:
            obs.on_run_start(RunStartEvent(
                model=type(model).__name__, num_train=len(train),
                num_validation=len(validation),
                config={**asdict(cfg), "backend": get_backend().name}))

        model.train()
        interrupt = GracefulInterrupt() if handle_signals else None
        with (interrupt if interrupt is not None else nullcontext()):
            if guard is not None and guard.last_good is None:
                # Arm rollback from step one: snapshot the initial state.
                guard.snapshot(self._capture(model, optimizer, state, guard))
            while True:
                try:
                    self._train_epochs(model, loader, validation, optimizer,
                                       state, obs, instrument, registry,
                                       timings, store, guard,
                                       checkpoint_every, interrupt)
                except AnomalySignal as signal_:
                    self._recover(signal_, guard, model, optimizer, state, obs)
                    continue
                break

        if state.best_state is None:
            raise RuntimeError(
                "training never produced a finite validation AUC "
                f"({state.epochs_run} epoch(s), "
                f"last={state.history[-1].auc!r}); "
                "refusing to silently select the final weights")
        model.load_state_dict(state.best_state)
        state.completed = True
        if store is not None:
            # Final checkpoint: model holds the best-epoch weights and the
            # run is flagged complete, so a later --resume is a no-op.
            self._write_checkpoint(model, optimizer, state, store, guard, obs,
                                   is_best=True)
        telemetry_metrics = registry.snapshot() if instrument else None
        telemetry_timings = timings.snapshot() if instrument else None
        if instrument:
            obs.on_run_end(RunEndEvent(
                best_epoch=state.best_epoch, epochs_run=state.epochs_run,
                steps=state.step,
                wall_time_s=time.perf_counter() - run_start,
                timings=telemetry_timings, metrics=telemetry_metrics))
        return TrainResult(best_epoch=state.best_epoch,
                           validation=state.history[state.best_epoch],
                           history=state.history, train_losses=state.losses,
                           metrics=telemetry_metrics,
                           timings=telemetry_timings)

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _train_epochs(self, model, loader, validation, optimizer,
                      state: _RunState, obs, instrument, registry, timings,
                      store, guard, checkpoint_every, interrupt) -> None:
        cfg = self.config
        while state.epoch < cfg.epochs and state.bad_epochs < cfg.patience:
            epoch = state.epoch
            state.epochs_run = epoch + 1
            skip = state.batches_done
            if skip == 0:
                state.epoch_rng_state = rng_state(state.rng)
                state.epoch_loss = 0.0
                state.num_batches = 0
                state.component_sums = {}
                if instrument:
                    obs.on_epoch_start(EpochStartEvent(epoch=epoch))
            else:
                # Resuming (or rolling back) mid-epoch: rewind the loader RNG
                # to the epoch start so the permutation replays identically,
                # then skip the batches that were already trained on.
                set_rng_state(state.rng, state.epoch_rng_state)
            with collect(timings) if instrument else nullcontext():
                for batch in loader.iter_batches(skip=skip):
                    self._train_step(model, batch, optimizer, state, obs,
                                     instrument, registry, guard)
                    if (checkpoint_every
                            and state.step % checkpoint_every == 0):
                        self._write_checkpoint(model, optimizer, state,
                                               store, guard, obs)
                    if interrupt is not None and interrupt.requested:
                        path = (self._write_checkpoint(
                                    model, optimizer, state, store, guard,
                                    obs) if store is not None else None)
                        raise TrainingInterrupted(
                            signum=interrupt.signum, step=state.step,
                            checkpoint=path)
                with phase("train.eval"):
                    result = evaluate(model, validation,
                                      batch_size=cfg.eval_batch_size)
            state.losses.append(state.epoch_loss / max(state.num_batches, 1))
            state.history.append(result)
            if instrument:
                means = ({name: total / max(state.num_batches, 1)
                          for name, total in state.component_sums.items()}
                         or None)
                obs.on_eval_end(EvalEndEvent(
                    epoch=epoch, split="validation", auc=result.auc,
                    logloss=result.logloss, train_loss=state.losses[-1],
                    loss_components=means))

            improved = improvement(result.auc, state.best_auc)
            if improved:
                state.best_auc = result.auc
                state.best_state = model.state_dict()
                state.best_epoch = epoch
                state.bad_epochs = 0
            else:
                state.bad_epochs += 1
            state.epoch += 1
            state.batches_done = 0
            # The finished epoch's permutation has already been drawn from the
            # loader RNG, so the state *now* is what the next epoch consumes.
            # Refresh the capture before the epoch-end checkpoint — a resume
            # from a stale capture would replay the finished epoch's
            # permutation and diverge from the uninterrupted run.
            state.epoch_rng_state = rng_state(state.rng)
            path = None
            if store is not None or guard is not None:
                path = self._write_checkpoint(model, optimizer, state, store,
                                              guard, obs, is_best=improved)
            # A signal that landed during eval or the checkpoint write above
            # must not wait for the next epoch's first step — on the final
            # epoch there is none and the interrupt would be dropped.  The
            # epoch-end checkpoint has already made the stop durable.
            if interrupt is not None and interrupt.requested:
                raise TrainingInterrupted(signum=interrupt.signum,
                                          step=state.step, checkpoint=path)

    def _train_step(self, model, batch, optimizer, state: _RunState, obs,
                    instrument, registry, guard) -> None:
        cfg = self.config
        optimizer.zero_grad()
        with phase("train.forward"):
            loss = model.training_loss(batch)
        loss_value = loss.item()
        if guard is not None:
            kind = guard.check_loss(loss_value)
            if kind is not None:
                raise AnomalySignal(kind, loss_value, state.step + 1,
                                    state.epoch)
        with phase("train.backward"):
            loss.backward()
        with phase("train.optim"):
            grad_norm = clip_grad_norm(optimizer.parameters, cfg.grad_clip)
            if guard is not None:
                kind = guard.check_grad_norm(grad_norm)
                if kind is not None:
                    # Caught before the update applies, so the weights stay
                    # finite; rollback still rewinds to replay the stream.
                    raise AnomalySignal(kind, grad_norm, state.step + 1,
                                        state.epoch)
            optimizer.step()
        if guard is not None:
            guard.record(loss_value)
        state.epoch_loss += loss_value
        state.num_batches += 1
        state.step += 1
        state.batches_done += 1
        if instrument:
            components = getattr(model, "last_loss_components", None)
            self._record_step(registry, loss_value, grad_norm, components)
            if components:
                for name, value in components.items():
                    state.component_sums[name] = (
                        state.component_sums.get(name, 0.0) + value)
            obs.on_batch_end(BatchEndEvent(
                epoch=state.epoch, step=state.step, loss=loss_value,
                grad_norm=grad_norm, loss_components=components,
                model=model, batch=batch))

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------
    def _capture(self, model, optimizer, state: _RunState,
                 guard) -> RunCheckpoint:
        return RunCheckpoint(
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            loader_rng_state=state.epoch_rng_state,
            module_rng_states=named_rng_states(model),
            epoch=state.epoch,
            batches_done=state.batches_done,
            step=state.step,
            best_auc=float(state.best_auc),
            best_epoch=state.best_epoch,
            bad_epochs=state.bad_epochs,
            best_state=({k: v.copy() for k, v in state.best_state.items()}
                        if state.best_state is not None else None),
            history=[{"auc": float(r.auc), "logloss": float(r.logloss)}
                     for r in state.history],
            train_losses=list(state.losses),
            epoch_loss=state.epoch_loss,
            num_batches=state.num_batches,
            component_sums=dict(state.component_sums),
            epochs_run=state.epochs_run,
            anomaly_retries=guard.retries if guard is not None else 0,
            config=asdict(self.config),
            completed=state.completed,
        )

    def _write_checkpoint(self, model, optimizer, state: _RunState, store,
                          guard, obs, is_best: bool = False) -> Path | None:
        ckpt = self._capture(model, optimizer, state, guard)
        path = store.save(ckpt, is_best=is_best) if store is not None else None
        if guard is not None:
            guard.snapshot(ckpt, path)
        obs.on_checkpoint_written(CheckpointWrittenEvent(
            step=state.step, epoch=state.epoch,
            path=str(path) if path is not None else None,
            is_best=is_best, completed=state.completed))
        return path

    @staticmethod
    def _restore(ckpt: RunCheckpoint, model, optimizer, state: _RunState,
                 guard=None) -> None:
        model.load_state_dict(ckpt.model_state)
        optimizer.load_state_dict(ckpt.optimizer_state)
        restore_rng_states(model, ckpt.module_rng_states)
        set_rng_state(state.rng, ckpt.loader_rng_state)
        state.epoch_rng_state = ckpt.loader_rng_state
        state.epoch = ckpt.epoch
        state.batches_done = ckpt.batches_done
        state.step = ckpt.step
        state.best_auc = ckpt.best_auc
        state.best_epoch = ckpt.best_epoch
        state.bad_epochs = ckpt.bad_epochs
        state.best_state = ({k: v.copy() for k, v in ckpt.best_state.items()}
                            if ckpt.best_state is not None else None)
        state.history = [EvalResult(auc=row["auc"], logloss=row["logloss"])
                         for row in ckpt.history]
        state.losses = list(ckpt.train_losses)
        state.epoch_loss = ckpt.epoch_loss
        state.num_batches = ckpt.num_batches
        state.component_sums = dict(ckpt.component_sums)
        state.epochs_run = ckpt.epochs_run
        state.completed = ckpt.completed
        if guard is not None:
            guard.retries = ckpt.anomaly_retries

    def _recover(self, signal_: AnomalySignal, guard: AnomalyGuard | None,
                 model, optimizer, state: _RunState, obs) -> None:
        """Roll back to the last good checkpoint with LR backoff, or give up."""
        if guard is None:  # pragma: no cover - signals only raised with guard
            raise signal_
        guard.retries += 1
        obs.on_anomaly_detected(AnomalyDetectedEvent(
            step=signal_.step, epoch=signal_.epoch, anomaly=signal_.kind,
            value=signal_.value, lr=optimizer.lr, retries=guard.retries,
            retries_remaining=guard.retries_remaining))
        if guard.retries > guard.config.max_retries or guard.last_good is None:
            raise NumericalAnomalyError(
                f"{signal_.kind} at step {signal_.step} "
                f"(value={signal_.value!r}); retry budget of "
                f"{guard.config.max_retries} exhausted "
                f"(lr reached {optimizer.lr:g})") from signal_
        lr_at_failure = optimizer.lr
        ckpt = guard.last_good
        self._restore(ckpt, model, optimizer, state)
        guard.retries = max(guard.retries, ckpt.anomaly_retries)
        # Back off from the lr in effect when the anomaly hit (not the
        # restored one) so repeated failures keep shrinking the step size.
        optimizer.lr = lr_at_failure * guard.config.backoff_factor
        guard.reset_stats()
        obs.on_checkpoint_restored(CheckpointRestoredEvent(
            step=ckpt.step, epoch=ckpt.epoch, reason="rollback",
            path=(str(guard.last_good_path)
                  if guard.last_good_path is not None else None)))

    @staticmethod
    def _record_step(registry: MetricRegistry, loss: float, grad_norm: float,
                     components: dict[str, float] | None) -> None:
        registry.counter("train.steps").inc()
        registry.ema("train.loss.total").update(loss)
        registry.histogram("train.grad_norm").record(grad_norm)
        if components:
            for name, value in components.items():
                registry.ema(f"train.loss.{name}").update(value)