"""Post-hoc probability calibration (Platt scaling) fitted on validation.

The simulated worlds are orders of magnitude smaller than the paper's
datasets, so every model — baseline or MISS — reaches near-zero training loss
and emits over-confident logits.  To keep the Logloss columns meaningful we
apply the same monotone calibration ``σ(a·logit + b)``, with ``a, b`` fitted
on the *validation* split, to every model uniformly.  Because ``a > 0`` the
transformation never changes AUC, and fitting on validation keeps the test
split untouched.  This harness choice is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

__all__ = ["PlattScaler"]


@dataclass
class PlattScaler:
    """Monotone logistic calibration ``p = σ(scale·logit + offset)``."""

    scale: float = 1.0
    offset: float = 0.0

    @staticmethod
    def fit(logits: np.ndarray, labels: np.ndarray) -> "PlattScaler":
        """Fit by minimising validation logloss; the slope is kept positive."""
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if logits.shape != labels.shape:
            raise ValueError("logits and labels must align")

        def loss(params: np.ndarray) -> float:
            raw_scale, offset = params
            scale = np.exp(raw_scale)  # enforce a > 0 → AUC preserved
            z = np.clip(scale * logits + offset, -60, 60)
            probs = 1.0 / (1.0 + np.exp(-z))
            probs = np.clip(probs, 1e-12, 1 - 1e-12)
            return float(-(labels * np.log(probs)
                           + (1 - labels) * np.log(1 - probs)).mean())

        result = minimize(loss, x0=np.array([0.0, 0.0]), method="Nelder-Mead",
                          options={"xatol": 1e-6, "fatol": 1e-9, "maxiter": 500})
        raw_scale, offset = result.x
        return PlattScaler(scale=float(np.exp(raw_scale)), offset=float(offset))

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated click probabilities."""
        z = np.clip(self.scale * np.asarray(logits) + self.offset, -60, 60)
        return 1.0 / (1.0 + np.exp(-z))
