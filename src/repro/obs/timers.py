"""Scoped phase timers: attribute wall-time to named phases of a run.

Library code marks its hot paths with the module-level :func:`phase` context
manager (or the :func:`timed` decorator)::

    with phase("model.ssl.mie"):
        maps = self.extractor(c)

When no collector is active this is a near-free no-op, so instrumentation can
live permanently in the data loader, the trainer, and the MISS SSL branches.
The trainer activates a :class:`PhaseTimings` collector for the duration of a
run via :func:`collect`; nested phases are accounted hierarchically, i.e. a
parent's *self* time excludes the time spent in child phases, so time shares
sum to ~100% of the instrumented window.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from .metrics import MetricRegistry

__all__ = ["PhaseStat", "PhaseTimings", "collect", "phase", "timed",
           "active_timings"]


@dataclass
class PhaseStat:
    """Accumulated wall-time of one named phase."""

    total_s: float = 0.0
    child_s: float = 0.0
    count: int = 0

    @property
    def self_s(self) -> float:
        """Time spent in this phase excluding nested child phases."""
        return self.total_s - self.child_s


class PhaseTimings:
    """Collector of per-phase wall-time with nesting support.

    When constructed with a :class:`MetricRegistry`, every observed duration
    is also recorded into a ``<name>_ms`` streaming histogram so traces get
    per-phase latency quantiles (e.g. ``data.batch_ms``).
    """

    def __init__(self, registry: MetricRegistry | None = None):
        self.stats: dict[str, PhaseStat] = {}
        self.registry = registry
        # The active-phase stack is *per thread*: ScoringEngine workers and
        # PrefetchLoader threads time phases concurrently into one
        # collector, and nesting only ever exists within a single thread.
        # A shared stack would interleave push/pop across threads and
        # corrupt self-time accounting (negative self_s, misattributed
        # child time).
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list[float]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        stack = self._stack()
        start = time.perf_counter()
        stack.append(0.0)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            child = stack.pop()
            if stack:
                stack[-1] += elapsed
            self.observe(name, elapsed, child_seconds=child)

    def observe(self, name: str, seconds: float,
                child_seconds: float = 0.0) -> None:
        with self._lock:
            stat = self.stats.setdefault(name, PhaseStat())
            stat.total_s += seconds
            stat.child_s += child_seconds
            stat.count += 1
        if self.registry is not None:
            self.registry.histogram(f"{name}_ms").record(seconds * 1000.0)

    def shares(self) -> dict[str, float]:
        """Fraction of instrumented self-time per phase (sums to 1.0)."""
        total = sum(stat.self_s for stat in self.stats.values())
        if total <= 0.0:
            return {name: 0.0 for name in self.stats}
        return {name: stat.self_s / total for name, stat in self.stats.items()}

    def snapshot(self) -> dict[str, dict]:
        """JSON-safe dump: total/self seconds, call count, and time share."""
        shares = self.shares()
        return {name: {"total_s": stat.total_s, "self_s": stat.self_s,
                       "count": stat.count, "share": shares[name]}
                for name, stat in sorted(self.stats.items())}


# The active collector stack.  Single-threaded training loops push one
# collector for the duration of a run; an empty stack makes phase() a no-op.
_ACTIVE: list[PhaseTimings] = []


class _NoopPhase:
    """Shared do-nothing scope returned when no collector is active.

    A dedicated slotted singleton (rather than ``contextlib.nullcontext``)
    keeps the inactive path to two empty method calls with no attribute
    loads, so ``with phase(...)`` blocks can stay in library hot paths
    permanently.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopPhase()


def active_timings() -> PhaseTimings | None:
    """The innermost active collector, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collect(timings: PhaseTimings) -> Iterator[PhaseTimings]:
    """Route all :func:`phase` scopes to ``timings`` inside the block."""
    _ACTIVE.append(timings)
    try:
        yield timings
    finally:
        _ACTIVE.pop()


def phase(name: str):
    """Context manager timing one scope under the active collector (no-op
    when none is active)."""
    if not _ACTIVE:
        return _NOOP
    return _ACTIVE[-1].phase(name)


def timed(name: str) -> Callable:
    """Decorator form of :func:`phase`."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ACTIVE:  # skip even the no-op context when inactive
                return fn(*args, **kwargs)
            with _ACTIVE[-1].phase(name):
                return fn(*args, **kwargs)
        return wrapper

    return decorate
