"""Observer sinks: JSONL run traces and a throttled console reporter."""

from __future__ import annotations

import json
import os
import sys
import threading
from contextlib import suppress
from typing import Any, TextIO

from .events import (
    SCHEMA_VERSION,
    AnomalyDetectedEvent,
    BaseObserver,
    BatchEndEvent,
    BatchFlushedEvent,
    CheckpointRestoredEvent,
    CheckpointWrittenEvent,
    DriftDetectedEvent,
    EpochStartEvent,
    EvalEndEvent,
    ModelSwappedEvent,
    PromotionEvent,
    RequestCompletedEvent,
    RequestReceivedEvent,
    RequestShedEvent,
    RunEndEvent,
    RunStartEvent,
    DistSyncEvent,
    ShardLoadedEvent,
    StreamWindowEvent,
)

__all__ = ["JsonlTraceWriter", "ConsoleReporter"]


def _coerce(value: Any):
    """json.dumps fallback for numpy scalars and other item()-bearers."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


class JsonlTraceWriter(BaseObserver):
    """Writes one JSON object per event, schema-versioned, flushed per line.

    Crash-safe by design: every record is flushed to the OS immediately, so a
    trace from a killed or crashed run is readable up to the last completed
    event — the resume workflow relies on this to reconstruct what happened.
    ``close`` additionally fsyncs, is idempotent, and runs from ``__exit__``
    and ``__del__`` so an exception anywhere in the run cannot strand an open
    handle with buffered records.

    The file is opened at construction so an unwritable path fails before
    training starts, and stays open across runs (``run_experiment`` appends a
    final test evaluation after the trainer's ``run_end``); close explicitly
    or use as a context manager.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: TextIO | None = open(path, "w", encoding="utf-8")
        self._write_lock = threading.Lock()
        self.lines_written = 0

    @property
    def closed(self) -> bool:
        return self._fh is None

    def _write(self, kind: str, payload: dict) -> None:
        # Serialised: serving events and spans reach one writer from handler,
        # engine-worker, and tracer threads concurrently.
        with self._write_lock:
            if self._fh is None:
                raise ValueError(f"trace writer for {self.path} is closed")
            record = {"schema_version": SCHEMA_VERSION, "event": kind,
                      **payload}
            self._fh.write(json.dumps(record, default=_coerce) + "\n")
            self._fh.flush()
            self.lines_written += 1

    def on_run_start(self, event: RunStartEvent) -> None:
        self._write(event.kind, event.payload())

    def on_epoch_start(self, event: EpochStartEvent) -> None:
        self._write(event.kind, event.payload())

    def on_batch_end(self, event: BatchEndEvent) -> None:
        self._write(event.kind, event.payload())

    def on_eval_end(self, event: EvalEndEvent) -> None:
        self._write(event.kind, event.payload())

    def on_run_end(self, event: RunEndEvent) -> None:
        self._write(event.kind, event.payload())

    def on_checkpoint_written(self, event: CheckpointWrittenEvent) -> None:
        self._write(event.kind, event.payload())

    def on_checkpoint_restored(self, event: CheckpointRestoredEvent) -> None:
        self._write(event.kind, event.payload())

    def on_anomaly_detected(self, event: AnomalyDetectedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_request_received(self, event: RequestReceivedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_batch_flushed(self, event: BatchFlushedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_request_completed(self, event: RequestCompletedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_model_swapped(self, event: ModelSwappedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_request_shed(self, event: RequestShedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_shard_loaded(self, event: ShardLoadedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_dist_sync(self, event: DistSyncEvent) -> None:
        self._write(event.kind, event.payload())

    def on_stream_window(self, event: StreamWindowEvent) -> None:
        self._write(event.kind, event.payload())

    def on_drift_detected(self, event: DriftDetectedEvent) -> None:
        self._write(event.kind, event.payload())

    def on_promotion(self, event: PromotionEvent) -> None:
        self._write(event.kind, event.payload())

    def write_span(self, record: dict) -> None:
        """Span-sink protocol (see :class:`repro.obs.trace.Tracer`): spans
        share the run-trace file as additive ``span`` events."""
        self._write("span", record)

    def close(self) -> None:
        if self._fh is not None:
            fh, self._fh = self._fh, None
            with suppress(OSError, ValueError):
                fh.flush()
                os.fsync(fh.fileno())
            fh.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        with suppress(Exception):
            self.close()


class ConsoleReporter(BaseObserver):
    """Human-readable progress lines, throttled to every ``every`` steps."""

    def __init__(self, every: int = 20, stream: TextIO | None = None):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.stream = stream if stream is not None else sys.stdout

    def _print(self, text: str) -> None:
        print(text, file=self.stream)

    def on_run_start(self, event: RunStartEvent) -> None:
        self._print(f"[obs] run start: {event.model} "
                    f"(train={event.num_train}, val={event.num_validation})")

    def on_batch_end(self, event: BatchEndEvent) -> None:
        if event.step % self.every:
            return
        line = (f"[obs] epoch {event.epoch} step {event.step:>6} "
                f"loss {event.loss:.4f} |grad| {event.grad_norm:.3f}")
        if event.loss_components:
            parts = " ".join(f"{k}={v:.4f}"
                             for k, v in event.loss_components.items())
            line += f" ({parts})"
        self._print(line)

    def on_eval_end(self, event: EvalEndEvent) -> None:
        line = (f"[obs] epoch {event.epoch} {event.split}: "
                f"AUC={event.auc:.4f} Logloss={event.logloss:.4f}")
        if event.train_loss is not None:
            line += f" train_loss={event.train_loss:.4f}"
        self._print(line)

    def on_checkpoint_written(self, event: CheckpointWrittenEvent) -> None:
        where = event.path or "memory"
        flags = "".join([" (best)" if event.is_best else "",
                         " (final)" if event.completed else ""])
        self._print(f"[obs] checkpoint @ step {event.step}: {where}{flags}")

    def on_checkpoint_restored(self, event: CheckpointRestoredEvent) -> None:
        line = (f"[obs] restored checkpoint @ step {event.step} "
                f"(epoch {event.epoch}, {event.reason})")
        if event.skipped:
            line += f" — skipped {len(event.skipped)} corrupt checkpoint(s)"
        self._print(line)

    def on_anomaly_detected(self, event: AnomalyDetectedEvent) -> None:
        self._print(f"[obs] ANOMALY {event.anomaly} @ step {event.step}: "
                    f"value={event.value!r} lr={event.lr:g} "
                    f"retries left={event.retries_remaining}")

    def on_batch_flushed(self, event: BatchFlushedEvent) -> None:
        self._print(f"[obs] batch flushed: {event.batch_size} request(s), "
                    f"waited {event.wait_ms:.1f}ms, "
                    f"forward {event.forward_ms:.1f}ms, "
                    f"queue depth {event.queue_depth}")

    def on_stream_window(self, event: StreamWindowEvent) -> None:
        self._print(f"[obs] window {event.window:>4} "
                    f"prod[{event.production_version}] "
                    f"AUC={event.production_auc:.4f} "
                    f"learner AUC={event.learner_auc:.4f} "
                    f"({event.rows} rows)")

    def on_drift_detected(self, event: DriftDetectedEvent) -> None:
        self._print(f"[obs] DRIFT {event.detector} @ window {event.window}: "
                    f"{event.value:.4f} > {event.threshold:g}")

    def on_promotion(self, event: PromotionEvent) -> None:
        line = (f"[obs] promotion {event.action}: {event.version} "
                f"@ window {event.window}")
        if event.reason:
            line += f" ({event.reason})"
        self._print(line)

    def on_run_end(self, event: RunEndEvent) -> None:
        self._print(f"[obs] run end: best epoch {event.best_epoch} "
                    f"after {event.epochs_run} epochs / {event.steps} steps "
                    f"in {event.wall_time_s:.2f}s")
        shares = sorted(event.timings.items(),
                        key=lambda kv: kv[1].get("share", 0.0), reverse=True)
        for name, stat in shares[:5]:
            self._print(f"[obs]   {name:<24} {100.0 * stat['share']:5.1f}% "
                        f"({stat['self_s']:.3f}s self, n={stat['count']})")
