"""Span-based request tracing: decompose one request's latency into stages.

Where :mod:`repro.obs.timers` aggregates wall-time *per phase name*, this
module keeps *per-request* causality: every unit of work is a **span** with a
``trace_id`` shared by everything done on behalf of one request (or one
training epoch), a unique ``span_id``, and a ``parent_id`` linking it into a
tree.  A slow ``POST /score`` can then be decomposed into HTTP handling →
queue wait → micro-batch forward, and a slow epoch into per-worker window
assembly — across threads.

Propagation has two modes, matching how work actually flows here:

* **Same-thread nesting** uses a :mod:`contextvars` variable, so
  ``with tracer.span("outer"):`` automatically parents any span opened
  inside the block (and is safe under thread pools — each thread sees its
  own context).
* **Queue boundaries** (the ScoringEngine request queue, the PrefetchLoader
  worker queues) cannot rely on ambient context: the thread that *finishes*
  the work is not the thread that *started* it.  Producers capture an
  explicit :class:`SpanContext` and hand it across the queue; consumers
  emit spans against it retroactively with :meth:`Tracer.record_span`,
  which accepts explicit start/end timestamps (``time.monotonic`` values).

Sampling is **head-based**: the keep/drop decision is made once, when a
trace is created (:meth:`Tracer.make_context` with no parent), and is
inherited by every child context — so a trace is always complete or absent,
never partial.  Unsampled contexts make every downstream call a no-op.

When no tracer is installed, the module-level :func:`span` helper returns a
shared no-op scope — the same pattern as :func:`repro.obs.timers.phase` — so
instrumentation can live permanently on serving and pipeline hot paths.

Span records share the JSONL run-trace file format (additive ``span`` event,
same ``schema_version``); ``repro inspect-run PATH --spans`` renders them.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "SpanContext", "Tracer", "SpanRecorder",
    "set_tracer", "get_tracer", "use_tracer", "current_span", "span",
]

#: ``event`` value of serialised span records (additive to the run-trace
#: schema: readers that fold over known events skip spans untouched).
SPAN_EVENT = "span"


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: everything a child needs to link up.

    Immutable and tiny by design — this is the object handed across queue
    boundaries (stored on engine requests, captured into worker closures).
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def child_of(self) -> str:
        return self.span_id


class SpanRecorder:
    """In-memory span sink (tests, ad-hoc inspection)."""

    def __init__(self):
        self.records: list[dict] = []

    def write_span(self, record: dict) -> None:
        self.records.append(record)

    def by_name(self, name: str) -> list[dict]:
        return [r for r in self.records if r["name"] == name]

    def by_trace(self, trace_id: str) -> list[dict]:
        return [r for r in self.records if r["trace_id"] == trace_id]


# Ambient parent for same-thread nesting.  ContextVar (not thread-local)
# so asyncio-style frameworks would also propagate correctly; for plain
# threads each thread starts with the default (None).
_CURRENT: ContextVar[SpanContext | None] = ContextVar("repro_active_span",
                                                      default=None)


def current_span() -> SpanContext | None:
    """The ambient span context of the calling thread/task, if any."""
    return _CURRENT.get()


class Tracer:
    """Creates span contexts, applies head sampling, and emits span records.

    ``sink`` needs one method, ``write_span(record: dict)`` — satisfied by
    :class:`SpanRecorder` and :class:`repro.obs.sinks.JsonlTraceWriter`.
    Record emission is serialised under an internal lock, so spans may be
    finished from any number of threads concurrently.

    Timestamps: spans are measured on the ``time.monotonic`` clock (the one
    the serving engine already uses).  Each record carries ``start_s`` — the
    monotonic start mapped onto the wall clock via a base captured at
    tracer construction — plus ``duration_ms``, so spans from different
    threads line up on one timeline.
    """

    def __init__(self, sink=None, sample_rate: float = 1.0, seed: int = 0):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], "
                             f"got {sample_rate}")
        self.sink = sink
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._next = 0
        self._wall0 = time.time()
        self._mono0 = time.monotonic()
        self.spans_emitted = 0
        self.traces_started = 0
        self.traces_sampled = 0

    # ------------------------------------------------------------------
    # Context creation (head sampling happens here)
    # ------------------------------------------------------------------
    def _new_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"{self._next:08x}"

    def make_context(self, parent: SpanContext | None = None) -> SpanContext:
        """Allocate the context for a new span.

        With no ``parent`` this starts a **new trace** and rolls the head
        sampling decision; with a parent the trace id and decision are
        inherited, so traces are kept or dropped whole.
        """
        span_id = self._new_id()
        if parent is not None:
            return SpanContext(trace_id=parent.trace_id, span_id=span_id,
                               sampled=parent.sampled)
        with self._lock:
            self.traces_started += 1
            sampled = (self.sample_rate >= 1.0
                       or self._rng.random() < self.sample_rate)
            if sampled:
                self.traces_sampled += 1
        return SpanContext(trace_id=f"t{span_id}", span_id=span_id,
                           sampled=sampled)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def to_wall(self, monotonic_ts: float) -> float:
        """Map a ``time.monotonic`` timestamp onto the wall clock."""
        return self._wall0 + (monotonic_ts - self._mono0)

    def record_span(self, name: str, context: SpanContext,
                    start: float, end: float, *,
                    parent_id: str | None = None,
                    span_id: str | None = None,
                    attrs: dict[str, Any] | None = None) -> None:
        """Emit one finished span against ``context`` (retroactive form).

        ``start``/``end`` are ``time.monotonic`` values captured by the
        caller — this is the queue-boundary API: the worker that finished
        the work emits spans for stages that began on another thread.
        By default the span is a **child** of ``context``; pass
        ``span_id=context.span_id`` to emit the record *for* the context's
        own span (its parent then comes from ``parent_id``).
        """
        if not context.sampled:
            return
        record = {
            "trace_id": context.trace_id,
            "span_id": span_id if span_id is not None else self._new_id(),
            "parent_id": (parent_id if span_id is not None
                          else context.span_id),
            "name": name,
            "start_s": self.to_wall(start),
            "duration_ms": max(end - start, 0.0) * 1000.0,
            "thread": threading.current_thread().name,
        }
        if attrs:
            record["attrs"] = attrs
        sink = self.sink
        with self._lock:
            self.spans_emitted += 1
            if sink is not None:
                sink.write_span(record)

    # ------------------------------------------------------------------
    # Inline scopes (same-thread nesting via contextvars)
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, parent: SpanContext | None = None,
             attrs: dict[str, Any] | None = None) -> Iterator[SpanContext]:
        """Time a scope as a span; nested scopes become children.

        ``parent`` overrides the ambient context (explicit handoff across a
        queue); otherwise the ambient :func:`current_span` is used, and a
        brand-new trace is started when there is none.
        """
        ambient = parent if parent is not None else _CURRENT.get()
        context = self.make_context(ambient)
        parent_id = ambient.span_id if ambient is not None else None
        token = _CURRENT.set(context)
        start = time.monotonic()
        try:
            yield context
        finally:
            end = time.monotonic()
            _CURRENT.reset(token)
            self.record_span(name, context, start, end,
                             span_id=context.span_id, parent_id=parent_id,
                             attrs=attrs)


class _NoopSpan:
    """Shared do-nothing scope for the tracer-less fast path.

    Mirrors ``repro.obs.timers._NoopPhase``: a slotted singleton so
    permanently-instrumented hot paths cost two empty method calls and zero
    allocations when tracing is off.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()

# The process-wide tracer used by the module-level span() helper.  A plain
# global (not a stack): at most one tracing configuration is active at a
# time, and hot paths must pay only one load + None check when it is off.
_TRACER: Tracer | None = None


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the process-wide tracer."""
    global _TRACER
    _TRACER = tracer


def get_tracer() -> Tracer | None:
    """The installed process-wide tracer, or ``None``."""
    return _TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def span(name: str, parent: SpanContext | None = None,
         attrs: dict[str, Any] | None = None):
    """Scope helper for library code: a real span under the installed
    tracer, a shared no-op otherwise."""
    tracer = _TRACER
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, parent=parent, attrs=attrs)
