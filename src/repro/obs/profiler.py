"""Sampling profiler: periodic all-thread stack capture, flamegraph output.

A background thread wakes every ``interval_s`` and snapshots the Python
stack of every *other* thread via ``sys._current_frames``.  Identical stacks
are folded into counts keyed by their collapsed form —
``thread;root_frame;...;leaf_frame`` — which is exactly the input format of
Brendan Gregg's ``flamegraph.pl`` and of speedscope's "collapsed stacks"
importer, so a profile written by :meth:`SamplingProfiler.write_collapsed`
renders into a flamegraph with zero post-processing.

Why sampling rather than tracing (``sys.setprofile``): the serving and
pipeline hot paths run thousands of tiny numpy calls per second; tracing
multiplies each by a callback, distorting the very timings being measured.
Sampling costs one stack walk per thread per tick regardless of call rate —
measured overhead at the default 5 ms interval is well under 2% of wall time
for the training loop (the run's share of samples spent inside the profiler
itself is reported by :attr:`overhead_fraction`), and exactly zero when no
profiler is running, which is the default everywhere.

Frames are identified as ``file.py:function`` without line numbers so a
loop body samples into one frame instead of smearing across its lines.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Periodic whole-process stack sampler with collapsed-stack output.

    Use as a context manager or via explicit :meth:`start`/:meth:`stop`.
    ``interval_s`` is the target sampling period (default 5 ms ≈ 200 Hz);
    ``max_depth`` bounds the stack walk so pathological recursion cannot
    make a sample unbounded.
    """

    def __init__(self, interval_s: float = 0.005, max_depth: int = 128):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.counts: Counter[str] = Counter()
        self.samples = 0            # sampling ticks taken
        self._stacks_seen = 0       # thread stacks captured across all ticks
        self._busy_s = 0.0          # time spent inside _sample
        self._wall_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        if self._started_at is not None:
            self._wall_s += time.monotonic() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.is_set():
            tick = time.perf_counter()
            self._sample(own_ident)
            self._busy_s += time.perf_counter() - tick
            self._stop.wait(self.interval_s)

    def _sample(self, own_ident: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        # sys._current_frames returns a private snapshot dict; frames may
        # keep executing while we walk them — acceptable skew for sampling.
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(f"{os.path.basename(code.co_filename)}:"
                             f"{code.co_name}")
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.append(names.get(ident, f"thread-{ident}"))
            # Root-first with the thread name as the base frame.
            self.counts[";".join(reversed(stack))] += 1
            self._stacks_seen += 1
        self.samples += 1

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def overhead_fraction(self) -> float:
        """Share of profiled wall time spent taking samples."""
        wall = self._wall_s
        if self._started_at is not None:
            wall += time.monotonic() - self._started_at
        return self._busy_s / wall if wall > 0 else 0.0

    def collapsed(self) -> list[str]:
        """``stack count`` lines, most frequent first (flamegraph input)."""
        return [f"{stack} {count}"
                for stack, count in self.counts.most_common()]

    def write_collapsed(self, path: str) -> int:
        """Write the collapsed profile to ``path``; returns lines written."""
        lines = self.collapsed()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def summary(self) -> str:
        """One-line human digest for CLI output."""
        return (f"{self.samples} samples ({self._stacks_seen} stacks) at "
                f"{self.interval_s * 1000:.1f}ms interval, "
                f"overhead {100.0 * self.overhead_fraction:.2f}%")
