"""Run-trace inspection: parse a JSONL trace and render a summary.

Backs the ``repro inspect-run PATH`` CLI command.  The summary reports where
wall-time went (per-phase self-time shares), how the Eq. 17 loss components
evolved per epoch, and the final metrics of every evaluation split seen.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .events import SCHEMA_VERSION

__all__ = ["TraceSummary", "read_trace", "summarize_trace", "render_summary",
           "SpanTree", "summarize_spans", "render_spans",
           "StreamSummary", "summarize_stream", "render_stream"]


@dataclass
class TraceSummary:
    """Digest of one JSONL run trace."""

    path: str
    schema_version: int
    model: str
    num_train: int
    num_validation: int
    config: dict[str, Any] = field(default_factory=dict)
    epochs: list[dict[str, Any]] = field(default_factory=list)
    final_evals: dict[str, dict[str, Any]] = field(default_factory=dict)
    timings: dict[str, dict[str, Any]] = field(default_factory=dict)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    best_epoch: int | None = None
    steps: int | None = None
    wall_time_s: float | None = None
    num_events: int = 0
    #: Number of ``run_start`` events seen; the summary reflects the last run
    #: (``compare --log-jsonl`` concatenates one run per model).
    num_runs: int = 0


def read_trace(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace into event dicts, validating each line."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})")
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(f"{path}:{lineno}: not a trace event")
            version = record.get("schema_version")
            if version != SCHEMA_VERSION:
                raise ValueError(f"{path}:{lineno}: schema_version {version!r} "
                                 f"unsupported (expected {SCHEMA_VERSION})")
            events.append(record)
    if not events:
        raise ValueError(f"{path}: empty trace")
    return events


def summarize_trace(path: str) -> TraceSummary:
    """Fold a trace's events into a :class:`TraceSummary`."""
    events = read_trace(path)
    summary = TraceSummary(path=path, schema_version=SCHEMA_VERSION,
                           model="?", num_train=0, num_validation=0,
                           num_events=len(events))
    for record in events:
        kind = record["event"]
        if kind == "run_start":
            # A new run: reset per-run state so concatenated traces
            # (e.g. from `compare`) summarise their final run.
            summary.num_runs += 1
            summary.model = record.get("model", "?")
            summary.num_train = record.get("num_train", 0)
            summary.num_validation = record.get("num_validation", 0)
            summary.config = record.get("config", {})
            summary.epochs = []
            summary.final_evals = {}
            summary.timings = {}
            summary.metrics = {}
            summary.best_epoch = None
            summary.steps = None
            summary.wall_time_s = None
        elif kind == "eval_end":
            row = {k: record.get(k) for k in ("epoch", "split", "auc",
                                              "logloss", "train_loss",
                                              "loss_components")}
            summary.final_evals[record.get("split", "?")] = row
            if record.get("split") == "validation":
                summary.epochs.append(row)
        elif kind == "run_end":
            summary.best_epoch = record.get("best_epoch")
            summary.steps = record.get("steps")
            summary.wall_time_s = record.get("wall_time_s")
            summary.timings = record.get("timings", {})
            summary.metrics = record.get("metrics", {})
    return summary


# ---------------------------------------------------------------------------
# Span timeline / critical path (``inspect-run PATH --spans``)
# ---------------------------------------------------------------------------
@dataclass
class SpanTree:
    """One trace's spans, parent-linked and chronologically ordered."""

    trace_id: str
    spans: list[dict[str, Any]]            # sorted by start_s
    children: dict[str | None, list[dict[str, Any]]]
    start_s: float
    end_s: float

    @property
    def duration_ms(self) -> float:
        return (self.end_s - self.start_s) * 1000.0

    def roots(self) -> list[dict[str, Any]]:
        """Spans whose parent is absent from the trace (usually one)."""
        ids = {s["span_id"] for s in self.spans}
        return [s for s in self.spans if s.get("parent_id") not in ids]

    def critical_path(self) -> list[dict[str, Any]]:
        """Root-to-leaf chain through the longest child at each level.

        For the serving trace shape (request → queue_wait / forward) this
        names the stage that dominates the request's latency.
        """
        roots = self.roots()
        if not roots:
            return []
        node = max(roots, key=lambda s: s["duration_ms"])
        path = [node]
        while True:
            kids = self.children.get(node["span_id"], [])
            if not kids:
                return path
            node = max(kids, key=lambda s: s["duration_ms"])
            path.append(node)


def summarize_spans(events: list[dict[str, Any]]) -> list[SpanTree]:
    """Group a trace file's ``span`` events into per-trace trees."""
    spans = [record for record in events if record.get("event") == "span"]
    if not spans:
        raise ValueError("trace contains no span events (record some with "
                         "serve/bench-serve --trace-jsonl)")
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for record in spans:
        by_trace.setdefault(record["trace_id"], []).append(record)
    trees = []
    for trace_id, members in by_trace.items():
        members.sort(key=lambda s: (s["start_s"], s["span_id"]))
        children: dict[str | None, list[dict[str, Any]]] = {}
        for record in members:
            children.setdefault(record.get("parent_id"), []).append(record)
        start = min(s["start_s"] for s in members)
        end = max(s["start_s"] + s["duration_ms"] / 1000.0 for s in members)
        trees.append(SpanTree(trace_id=trace_id, spans=members,
                              children=children, start_s=start, end_s=end))
    trees.sort(key=lambda t: t.start_s)
    return trees


def _span_depths(tree: SpanTree) -> dict[str, int]:
    depths: dict[str, int] = {}
    ids = {s["span_id"] for s in tree.spans}
    for record in tree.spans:  # chronological ⇒ parents precede children
        parent = record.get("parent_id")
        depths[record["span_id"]] = (depths.get(parent, -1) + 1
                                     if parent in ids else 0)
    return depths


def render_spans(trees: list[SpanTree], width: int = 40,
                 max_traces: int = 12) -> str:
    """Per-trace timeline bars plus the critical path and a name rollup."""
    lines = [f"Span traces: {len(trees)} trace(s), "
             f"{sum(len(t.spans) for t in trees)} span(s)"]
    shown = trees[:max_traces]
    for tree in shown:
        lines.append("")
        lines.append(f"trace {tree.trace_id}  "
                     f"({len(tree.spans)} spans, {tree.duration_ms:.2f}ms)")
        depths = _span_depths(tree)
        window_ms = max(tree.duration_ms, 1e-9)
        for record in tree.spans:
            offset_ms = (record["start_s"] - tree.start_s) * 1000.0
            lo = int(round(offset_ms / window_ms * width))
            hi = int(round((offset_ms + record["duration_ms"])
                           / window_ms * width))
            hi = min(max(hi, lo + 1), width)
            bar = " " * lo + "█" * (hi - lo) + " " * (width - hi)
            label = ("  " * depths[record["span_id"]]
                     + record["name"])[:30]
            lines.append(f"  {label:<30} |{bar}| "
                         f"{record['duration_ms']:>9.3f}ms "
                         f"[{record.get('thread', '?')}]")
        path = tree.critical_path()
        if path:
            covered = path[-1]["duration_ms"]
            share = 100.0 * covered / window_ms
            lines.append("  critical path: "
                         + " -> ".join(s["name"] for s in path)
                         + f"  (leaf {covered:.3f}ms, {share:.0f}% of trace)")
    if len(trees) > len(shown):
        lines.append("")
        lines.append(f"... {len(trees) - len(shown)} more trace(s) omitted")

    totals: dict[str, list[float]] = {}
    for tree in trees:
        for record in tree.spans:
            totals.setdefault(record["name"], []).append(
                record["duration_ms"])
    lines.append("")
    lines.append("Per-span-name rollup:")
    lines.append(f"  {'name':<26}{'count':>7}{'total_ms':>11}{'mean_ms':>10}"
                 f"{'max_ms':>10}")
    for name, values in sorted(totals.items(),
                               key=lambda kv: -sum(kv[1])):
        lines.append(f"  {name:<26}{len(values):>7}{sum(values):>11.3f}"
                     f"{sum(values) / len(values):>10.3f}"
                     f"{max(values):>10.3f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Streaming timeline (``inspect-run PATH --stream``)
# ---------------------------------------------------------------------------
@dataclass
class StreamSummary:
    """Digest of a streaming run's additive events in one trace."""

    windows: list[dict[str, Any]] = field(default_factory=list)
    drift: list[dict[str, Any]] = field(default_factory=list)
    promotions: list[dict[str, Any]] = field(default_factory=list)


def summarize_stream(events: list[dict[str, Any]]) -> StreamSummary:
    """Collect the ``stream_window``/``drift_detected``/``promotion`` events."""
    summary = StreamSummary()
    buckets = {"stream_window": summary.windows,
               "drift_detected": summary.drift,
               "promotion": summary.promotions}
    for record in events:
        bucket = buckets.get(record.get("event"))
        if bucket is not None:
            bucket.append(record)
    return summary


def render_stream(summary: StreamSummary, width: int = 24) -> str:
    """Prequential timeline: per-window AUC bars with drift and promotion
    markers, then the promotion/rollback history."""
    if not summary.windows:
        return ("no streaming events in this trace "
                "(record one via `repro stream-train --log-jsonl PATH`)")
    drift_by_window: dict[int, list[str]] = {}
    for record in summary.drift:
        drift_by_window.setdefault(record["window"], []).append(
            record["detector"])
    promo_by_window: dict[int, list[dict[str, Any]]] = {}
    for record in summary.promotions:
        promo_by_window.setdefault(record["window"], []).append(record)
    aucs = [w["production_auc"] for w in summary.windows]
    lo, hi = min(aucs), max(aucs)
    span = max(hi - lo, 1e-9)
    lines = [f"Streaming run: {len(summary.windows)} windows, "
             f"{len(summary.drift)} drift signal(s), "
             f"{len(summary.promotions)} promotion event(s)",
             "",
             f"  {'w':>4}{'version':>9}{'prod AUC':>10}{'learner':>9}"
             f"  {'':{width}}  events"]
    for record in summary.windows:
        window = record["window"]
        filled = int(round((record["production_auc"] - lo) / span * width))
        bar = "▇" * filled + "·" * (width - filled)
        marks = []
        for detector in drift_by_window.get(window, []):
            marks.append(f"DRIFT[{detector}]")
        for promo in promo_by_window.get(window, []):
            label = promo["action"].upper()
            if promo.get("version"):
                label += f" {promo['version']}"
            marks.append(label)
        lines.append(f"  {window:>4}{record['production_version']:>9}"
                     f"{record['production_auc']:>10.4f}"
                     f"{record['learner_auc']:>9.4f}  {bar}  "
                     + " ".join(marks))
    lines.append(f"  (bars span AUC [{lo:.3f}, {hi:.3f}])")
    if summary.promotions:
        lines.append("")
        lines.append("Promotion history:")
        for record in summary.promotions:
            reason = f" ({record['reason']})" if record.get("reason") else ""
            detail = ""
            if record.get("challenger_auc") is not None:
                detail = (f"  challenger={record['challenger_auc']:.4f}"
                          f" vs production={record['production_auc']:.4f}")
            lines.append(f"  w{record['window']:<4} "
                         f"{record['action']:<10} {record.get('version')}"
                         f"{reason}{detail}")
    return "\n".join(lines)


def _format_components(components: dict[str, Any] | None) -> str:
    if not components:
        return ""
    return "  ".join(f"{name}={value:.4f}"
                     for name, value in sorted(components.items()))


def render_summary(summary: TraceSummary) -> str:
    """Plain-text report of a :class:`TraceSummary`."""
    lines = [f"Run trace: {summary.path} "
             f"({summary.num_events} events, schema v{summary.schema_version})"]
    if summary.num_runs > 1:
        lines.append(f"Contains {summary.num_runs} runs; summarising the last.")
    lines.append(f"Model: {summary.model}  train={summary.num_train} "
                 f"validation={summary.num_validation}")
    if summary.best_epoch is not None:
        wall = (f"{summary.wall_time_s:.2f}s"
                if summary.wall_time_s is not None else "?")
        lines.append(f"Best epoch: {summary.best_epoch}  "
                     f"steps: {summary.steps}  wall time: {wall}")

    if summary.timings:
        lines.append("")
        lines.append("Phase time share (self time):")
        lines.append(f"  {'phase':<26}{'share':>8}{'self_s':>10}{'count':>8}")
        ordered = sorted(summary.timings.items(),
                         key=lambda kv: kv[1].get("share", 0.0), reverse=True)
        for name, stat in ordered:
            lines.append(f"  {name:<26}{100.0 * stat.get('share', 0.0):>7.1f}%"
                         f"{stat.get('self_s', 0.0):>10.3f}"
                         f"{stat.get('count', 0):>8}")

    if summary.epochs:
        lines.append("")
        lines.append("Validation per epoch:")
        lines.append(f"  {'epoch':>5}{'AUC':>9}{'Logloss':>10}"
                     f"{'train_loss':>12}  components")
        for row in summary.epochs:
            train_loss = row.get("train_loss")
            lines.append(
                f"  {row.get('epoch', '?'):>5}{row.get('auc', float('nan')):>9.4f}"
                f"{row.get('logloss', float('nan')):>10.4f}"
                + (f"{train_loss:>12.4f}" if train_loss is not None
                   else f"{'-':>12}")
                + f"  {_format_components(row.get('loss_components'))}")

    lines.append("")
    lines.append("Final metrics:")
    for split, row in summary.final_evals.items():
        lines.append(f"  {split:<12} AUC={row['auc']:.4f} "
                     f"Logloss={row['logloss']:.4f}")
    grad = summary.metrics.get("train.grad_norm")
    if grad:
        lines.append(f"  grad_norm    p50={grad.get('p50'):.3f} "
                     f"p95={grad.get('p95'):.3f} max={grad.get('max'):.3f}")
    return "\n".join(lines)
