"""Run-trace inspection: parse a JSONL trace and render a summary.

Backs the ``repro inspect-run PATH`` CLI command.  The summary reports where
wall-time went (per-phase self-time shares), how the Eq. 17 loss components
evolved per epoch, and the final metrics of every evaluation split seen.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .events import SCHEMA_VERSION

__all__ = ["TraceSummary", "read_trace", "summarize_trace", "render_summary"]


@dataclass
class TraceSummary:
    """Digest of one JSONL run trace."""

    path: str
    schema_version: int
    model: str
    num_train: int
    num_validation: int
    config: dict[str, Any] = field(default_factory=dict)
    epochs: list[dict[str, Any]] = field(default_factory=list)
    final_evals: dict[str, dict[str, Any]] = field(default_factory=dict)
    timings: dict[str, dict[str, Any]] = field(default_factory=dict)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    best_epoch: int | None = None
    steps: int | None = None
    wall_time_s: float | None = None
    num_events: int = 0
    #: Number of ``run_start`` events seen; the summary reflects the last run
    #: (``compare --log-jsonl`` concatenates one run per model).
    num_runs: int = 0


def read_trace(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace into event dicts, validating each line."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})")
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(f"{path}:{lineno}: not a trace event")
            version = record.get("schema_version")
            if version != SCHEMA_VERSION:
                raise ValueError(f"{path}:{lineno}: schema_version {version!r} "
                                 f"unsupported (expected {SCHEMA_VERSION})")
            events.append(record)
    if not events:
        raise ValueError(f"{path}: empty trace")
    return events


def summarize_trace(path: str) -> TraceSummary:
    """Fold a trace's events into a :class:`TraceSummary`."""
    events = read_trace(path)
    summary = TraceSummary(path=path, schema_version=SCHEMA_VERSION,
                           model="?", num_train=0, num_validation=0,
                           num_events=len(events))
    for record in events:
        kind = record["event"]
        if kind == "run_start":
            # A new run: reset per-run state so concatenated traces
            # (e.g. from `compare`) summarise their final run.
            summary.num_runs += 1
            summary.model = record.get("model", "?")
            summary.num_train = record.get("num_train", 0)
            summary.num_validation = record.get("num_validation", 0)
            summary.config = record.get("config", {})
            summary.epochs = []
            summary.final_evals = {}
            summary.timings = {}
            summary.metrics = {}
            summary.best_epoch = None
            summary.steps = None
            summary.wall_time_s = None
        elif kind == "eval_end":
            row = {k: record.get(k) for k in ("epoch", "split", "auc",
                                              "logloss", "train_loss",
                                              "loss_components")}
            summary.final_evals[record.get("split", "?")] = row
            if record.get("split") == "validation":
                summary.epochs.append(row)
        elif kind == "run_end":
            summary.best_epoch = record.get("best_epoch")
            summary.steps = record.get("steps")
            summary.wall_time_s = record.get("wall_time_s")
            summary.timings = record.get("timings", {})
            summary.metrics = record.get("metrics", {})
    return summary


def _format_components(components: dict[str, Any] | None) -> str:
    if not components:
        return ""
    return "  ".join(f"{name}={value:.4f}"
                     for name, value in sorted(components.items()))


def render_summary(summary: TraceSummary) -> str:
    """Plain-text report of a :class:`TraceSummary`."""
    lines = [f"Run trace: {summary.path} "
             f"({summary.num_events} events, schema v{summary.schema_version})"]
    if summary.num_runs > 1:
        lines.append(f"Contains {summary.num_runs} runs; summarising the last.")
    lines.append(f"Model: {summary.model}  train={summary.num_train} "
                 f"validation={summary.num_validation}")
    if summary.best_epoch is not None:
        wall = (f"{summary.wall_time_s:.2f}s"
                if summary.wall_time_s is not None else "?")
        lines.append(f"Best epoch: {summary.best_epoch}  "
                     f"steps: {summary.steps}  wall time: {wall}")

    if summary.timings:
        lines.append("")
        lines.append("Phase time share (self time):")
        lines.append(f"  {'phase':<26}{'share':>8}{'self_s':>10}{'count':>8}")
        ordered = sorted(summary.timings.items(),
                         key=lambda kv: kv[1].get("share", 0.0), reverse=True)
        for name, stat in ordered:
            lines.append(f"  {name:<26}{100.0 * stat.get('share', 0.0):>7.1f}%"
                         f"{stat.get('self_s', 0.0):>10.3f}"
                         f"{stat.get('count', 0):>8}")

    if summary.epochs:
        lines.append("")
        lines.append("Validation per epoch:")
        lines.append(f"  {'epoch':>5}{'AUC':>9}{'Logloss':>10}"
                     f"{'train_loss':>12}  components")
        for row in summary.epochs:
            train_loss = row.get("train_loss")
            lines.append(
                f"  {row.get('epoch', '?'):>5}{row.get('auc', float('nan')):>9.4f}"
                f"{row.get('logloss', float('nan')):>10.4f}"
                + (f"{train_loss:>12.4f}" if train_loss is not None
                   else f"{'-':>12}")
                + f"  {_format_components(row.get('loss_components'))}")

    lines.append("")
    lines.append("Final metrics:")
    for split, row in summary.final_evals.items():
        lines.append(f"  {split:<12} AUC={row['auc']:.4f} "
                     f"Logloss={row['logloss']:.4f}")
    grad = summary.metrics.get("train.grad_norm")
    if grad:
        lines.append(f"  grad_norm    p50={grad.get('p50'):.3f} "
                     f"p95={grad.get('p95'):.3f} max={grad.get('max'):.3f}")
    return "\n".join(lines)
