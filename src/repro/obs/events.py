"""Event bus for training telemetry: observer protocol and event payloads.

A training run is narrated as five lifecycle events — run start, epoch start,
batch end, eval end, run end — each carrying a structured payload.  Anything
that wants to watch a run (JSONL trace writers, console reporters, the
Figure-5 :class:`~repro.core.diagnostics.SimilarityTracker`) implements
:class:`RunObserver` and is handed to ``Trainer.fit(observers=[...])``.

Events keep live object references (``model``, ``batch``) for in-process
observers, but :meth:`payload` returns only the JSON-safe subset — that is
what sinks serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Iterable, Protocol, runtime_checkable

__all__ = [
    "SCHEMA_VERSION",
    "RunStartEvent", "EpochStartEvent", "BatchEndEvent", "EvalEndEvent",
    "RunEndEvent",
    "CheckpointWrittenEvent", "CheckpointRestoredEvent",
    "AnomalyDetectedEvent",
    "RequestReceivedEvent", "BatchFlushedEvent", "RequestCompletedEvent",
    "ModelSwappedEvent", "RequestShedEvent",
    "ShardLoadedEvent", "DistSyncEvent",
    "StreamWindowEvent", "DriftDetectedEvent", "PromotionEvent",
    "RunObserver", "BaseObserver", "ObserverList", "CallbackObserver",
]

#: Version stamped on every serialised event; bump on payload shape changes.
SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars (and nested containers) to plain Python types."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class RunStartEvent:
    """Emitted once before the first epoch."""

    kind: ClassVar[str] = "run_start"

    model: str
    num_train: int
    num_validation: int
    config: dict[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        return _jsonable({"model": self.model, "num_train": self.num_train,
                          "num_validation": self.num_validation,
                          "config": dict(self.config)})


@dataclass
class EpochStartEvent:
    """Emitted at the top of every epoch."""

    kind: ClassVar[str] = "epoch_start"

    epoch: int

    def payload(self) -> dict[str, Any]:
        return {"epoch": int(self.epoch)}


@dataclass
class BatchEndEvent:
    """Emitted after every optimiser step.

    ``model`` and ``batch`` are live references for in-process observers
    (e.g. the similarity tracker); they are never serialised.
    """

    kind: ClassVar[str] = "batch_end"

    epoch: int
    step: int
    loss: float
    grad_norm: float
    loss_components: dict[str, float] | None = None
    model: Any = None
    batch: Any = None

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"epoch": int(self.epoch), "step": int(self.step),
                               "loss": float(self.loss),
                               "grad_norm": float(self.grad_norm)}
        if self.loss_components is not None:
            out["loss_components"] = {k: float(v)
                                      for k, v in self.loss_components.items()}
        return out


@dataclass
class EvalEndEvent:
    """Emitted after an evaluation pass (validation each epoch, test at end)."""

    kind: ClassVar[str] = "eval_end"

    epoch: int
    split: str
    auc: float
    logloss: float
    train_loss: float | None = None
    loss_components: dict[str, float] | None = None

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"epoch": int(self.epoch), "split": self.split,
                               "auc": float(self.auc),
                               "logloss": float(self.logloss)}
        if self.train_loss is not None:
            out["train_loss"] = float(self.train_loss)
        if self.loss_components is not None:
            out["loss_components"] = {k: float(v)
                                      for k, v in self.loss_components.items()}
        return out


@dataclass
class RunEndEvent:
    """Emitted once after training finishes (post best-state restore)."""

    kind: ClassVar[str] = "run_end"

    best_epoch: int
    epochs_run: int
    steps: int
    wall_time_s: float
    timings: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        return _jsonable({"best_epoch": int(self.best_epoch),
                          "epochs_run": int(self.epochs_run),
                          "steps": int(self.steps),
                          "wall_time_s": float(self.wall_time_s),
                          "timings": self.timings, "metrics": self.metrics})


@dataclass
class CheckpointWrittenEvent:
    """Emitted after a durable run checkpoint is committed to disk (or, with
    no checkpoint directory, after an in-memory rollback snapshot is taken —
    then ``path`` is None)."""

    kind: ClassVar[str] = "checkpoint_written"

    step: int
    epoch: int
    path: str | None = None
    is_best: bool = False
    completed: bool = False

    def payload(self) -> dict[str, Any]:
        return {"step": int(self.step), "epoch": int(self.epoch),
                "path": self.path, "is_best": bool(self.is_best),
                "completed": bool(self.completed)}


@dataclass
class CheckpointRestoredEvent:
    """Emitted when training state is restored from a checkpoint.

    ``reason`` is ``"resume"`` (continuing a killed run) or ``"rollback"``
    (anomaly recovery); ``skipped`` lists newer checkpoints that failed
    checksum validation and were passed over.
    """

    kind: ClassVar[str] = "checkpoint_restored"

    step: int
    epoch: int
    reason: str
    path: str | None = None
    skipped: list[str] | None = None

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"step": int(self.step),
                               "epoch": int(self.epoch),
                               "reason": self.reason, "path": self.path}
        if self.skipped:
            out["skipped"] = list(self.skipped)
        return out


@dataclass
class AnomalyDetectedEvent:
    """Emitted when the anomaly guard flags a step (before any rollback)."""

    kind: ClassVar[str] = "anomaly_detected"

    step: int
    epoch: int
    anomaly: str          # non_finite_loss | non_finite_grad | loss_spike
    value: float
    lr: float
    retries: int
    retries_remaining: int

    def payload(self) -> dict[str, Any]:
        return {"step": int(self.step), "epoch": int(self.epoch),
                "anomaly": self.anomaly, "value": float(self.value),
                "lr": float(self.lr), "retries": int(self.retries),
                "retries_remaining": int(self.retries_remaining)}


@dataclass
class RequestReceivedEvent:
    """Emitted when the serving engine accepts a score request (pre-queue)."""

    kind: ClassVar[str] = "request_received"

    request_id: int
    cached: bool          # True when the LRU cache answered without queueing
    queue_depth: int
    trace_id: str | None = None   # set when tracing sampled this request

    def payload(self) -> dict[str, Any]:
        out = {"request_id": int(self.request_id), "cached": bool(self.cached),
               "queue_depth": int(self.queue_depth)}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


@dataclass
class BatchFlushedEvent:
    """Emitted after a micro-batch forward completes.

    ``wait_ms`` is how long the oldest request in the batch sat in the queue
    before the flush started; ``forward_ms`` is the model forward alone.
    """

    kind: ClassVar[str] = "batch_flushed"

    batch_size: int
    queue_depth: int
    wait_ms: float
    forward_ms: float
    trace_id: str | None = None   # trace of the oldest request in the batch

    def payload(self) -> dict[str, Any]:
        out = {"batch_size": int(self.batch_size),
               "queue_depth": int(self.queue_depth),
               "wait_ms": float(self.wait_ms),
               "forward_ms": float(self.forward_ms)}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


@dataclass
class RequestCompletedEvent:
    """Emitted when a request's response is resolved (served or failed)."""

    kind: ClassVar[str] = "request_completed"

    request_id: int
    latency_ms: float
    cached: bool
    batch_size: int       # 0 for cache hits (no forward ran)
    error: str | None = None
    trace_id: str | None = None   # set when tracing sampled this request

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"request_id": int(self.request_id),
                               "latency_ms": float(self.latency_ms),
                               "cached": bool(self.cached),
                               "batch_size": int(self.batch_size)}
        if self.error is not None:
            out["error"] = self.error
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


@dataclass
class ModelSwappedEvent:
    """Emitted after a hot-swap reload switched the production model.

    The swap is atomic from the request path's perspective: every request
    admitted to the old engine drained to completion before this event is
    emitted.
    """

    kind: ClassVar[str] = "model_swapped"

    old_version: str | None
    new_version: str
    digest: str           # artifact digest of the newly serving model
    swap_ms: float

    def payload(self) -> dict[str, Any]:
        return {"old_version": self.old_version,
                "new_version": self.new_version,
                "digest": self.digest,
                "swap_ms": float(self.swap_ms)}


@dataclass
class RequestShedEvent:
    """Emitted when admission control rejects a request unscored.

    ``reason`` names the gate that refused it: ``queue_full`` (bounded
    in-flight budget, HTTP 429) or ``breaker_open`` (circuit breaker
    fast-fail, HTTP 503).
    """

    kind: ClassVar[str] = "request_shed"

    reason: str
    queue_depth: int
    retry_after_s: float | None = None

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"reason": self.reason,
                               "queue_depth": int(self.queue_depth)}
        if self.retry_after_s is not None:
            out["retry_after_s"] = float(self.retry_after_s)
        return out


@dataclass
class ShardLoadedEvent:
    """Emitted when the sharded data pipeline reads a shard from disk.

    Only actual disk loads are narrated (cache hits are counted, not
    evented); ``load_ms`` covers read + checksum + decompress.  May be
    emitted from prefetch worker threads — the emitting dataset serialises
    the fan-out, so sinks never see interleaved records.
    """

    kind: ClassVar[str] = "shard_loaded"

    shard: int
    rows: int
    load_ms: float
    source: str

    def payload(self) -> dict[str, Any]:
        return {"shard": int(self.shard), "rows": int(self.rows),
                "load_ms": float(self.load_ms), "source": self.source}


@dataclass
class DistSyncEvent:
    """Emitted by a data-parallel worker after each allreduce step.

    ``wait_ms`` is the time the rank spent blocked on the gradient barrier
    (straggler diagnosis: a rank with near-zero wait is the straggler);
    ``loss`` is the *reduced* mean loss every rank agreed on for the step.
    Each rank writes its own trace file, so records never interleave.
    """

    kind: ClassVar[str] = "dist_sync"

    rank: int
    world_size: int
    step: int
    epoch: int
    wait_ms: float
    loss: float

    def payload(self) -> dict[str, Any]:
        return {"rank": int(self.rank), "world_size": int(self.world_size),
                "step": int(self.step), "epoch": int(self.epoch),
                "wait_ms": float(self.wait_ms), "loss": float(self.loss)}


@dataclass
class StreamWindowEvent:
    """Emitted once per processed stream window (online-learning loop).

    ``production_auc``/``production_logloss`` are the prequential metrics of
    the *serving* model on the window (scored through the live router before
    the learner trained on it); ``learner_auc``/``learner_logloss`` are the
    incremental learner's own prequential metrics.
    """

    kind: ClassVar[str] = "stream_window"

    window: int
    timestamp: float
    rows: int
    production_version: str
    production_auc: float
    production_logloss: float
    learner_auc: float
    learner_logloss: float
    train_loss: float | None = None
    new_users: int = 0

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "window": int(self.window), "timestamp": float(self.timestamp),
            "rows": int(self.rows),
            "production_version": self.production_version,
            "production_auc": float(self.production_auc),
            "production_logloss": float(self.production_logloss),
            "learner_auc": float(self.learner_auc),
            "learner_logloss": float(self.learner_logloss),
            "new_users": int(self.new_users)}
        if self.train_loss is not None:
            out["train_loss"] = float(self.train_loss)
        return out


@dataclass
class DriftDetectedEvent:
    """Emitted when a drift detector fires on a served window.

    ``detector`` names the test (``score_psi`` | ``label_kl`` |
    ``logloss_shift``); ``value`` is its statistic, ``threshold`` the level
    it exceeded.
    """

    kind: ClassVar[str] = "drift_detected"

    window: int
    detector: str
    value: float
    threshold: float

    def payload(self) -> dict[str, Any]:
        return {"window": int(self.window), "detector": self.detector,
                "value": float(self.value),
                "threshold": float(self.threshold)}


@dataclass
class PromotionEvent:
    """Emitted on every promotion-controller state change.

    ``action`` is one of ``published`` (candidate entered the registry and
    shadow), ``promoted`` (challenger became production), ``rejected``
    (guardrails blocked it) or ``rollback`` (post-promotion regression
    reverted production to the previous version).
    """

    kind: ClassVar[str] = "promotion"

    window: int
    action: str
    version: str
    reason: str | None = None
    previous_version: str | None = None
    challenger_auc: float | None = None
    production_auc: float | None = None

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"window": int(self.window),
                               "action": self.action,
                               "version": self.version}
        if self.reason is not None:
            out["reason"] = self.reason
        if self.previous_version is not None:
            out["previous_version"] = self.previous_version
        if self.challenger_auc is not None:
            out["challenger_auc"] = float(self.challenger_auc)
        if self.production_auc is not None:
            out["production_auc"] = float(self.production_auc)
        return out


@runtime_checkable
class RunObserver(Protocol):
    """The observer protocol; implement any subset of the five hooks."""

    def on_run_start(self, event: RunStartEvent) -> None: ...
    def on_epoch_start(self, event: EpochStartEvent) -> None: ...
    def on_batch_end(self, event: BatchEndEvent) -> None: ...
    def on_eval_end(self, event: EvalEndEvent) -> None: ...
    def on_run_end(self, event: RunEndEvent) -> None: ...


class BaseObserver:
    """No-op implementation of :class:`RunObserver`; subclass and override."""

    def on_run_start(self, event: RunStartEvent) -> None:
        pass

    def on_epoch_start(self, event: EpochStartEvent) -> None:
        pass

    def on_batch_end(self, event: BatchEndEvent) -> None:
        pass

    def on_eval_end(self, event: EvalEndEvent) -> None:
        pass

    def on_run_end(self, event: RunEndEvent) -> None:
        pass

    def on_checkpoint_written(self, event: CheckpointWrittenEvent) -> None:
        pass

    def on_checkpoint_restored(self, event: CheckpointRestoredEvent) -> None:
        pass

    def on_anomaly_detected(self, event: AnomalyDetectedEvent) -> None:
        pass

    def on_request_received(self, event: RequestReceivedEvent) -> None:
        pass

    def on_batch_flushed(self, event: BatchFlushedEvent) -> None:
        pass

    def on_request_completed(self, event: RequestCompletedEvent) -> None:
        pass

    def on_model_swapped(self, event: ModelSwappedEvent) -> None:
        pass

    def on_request_shed(self, event: RequestShedEvent) -> None:
        pass

    def on_shard_loaded(self, event: ShardLoadedEvent) -> None:
        pass

    def on_dist_sync(self, event: DistSyncEvent) -> None:
        pass

    def on_stream_window(self, event: StreamWindowEvent) -> None:
        pass

    def on_drift_detected(self, event: DriftDetectedEvent) -> None:
        pass

    def on_promotion(self, event: PromotionEvent) -> None:
        pass


class CallbackObserver(BaseObserver):
    """Back-compat shim: adapts an ``on_batch_end(model, batch, step)``
    callable — the trainer's historical hook — to the observer protocol."""

    def __init__(self, callback: Callable[[Any, Any, int], None]):
        self.callback = callback

    def on_batch_end(self, event: BatchEndEvent) -> None:
        self.callback(event.model, event.batch, event.step)


class ObserverList(BaseObserver):
    """Composite observer that fans events out to its children in order."""

    def __init__(self, observers: Iterable[RunObserver] = ()):
        self.observers: list[RunObserver] = list(observers)

    @classmethod
    def build(cls, observers: "RunObserver | Iterable[RunObserver] | None",
              on_batch_end: Callable[[Any, Any, int], None] | None = None
              ) -> "ObserverList":
        """Normalise the trainer's ``observers``/``on_batch_end`` arguments."""
        if observers is None:
            children: list[RunObserver] = []
        elif isinstance(observers, ObserverList):
            children = list(observers.observers)
        elif isinstance(observers, (list, tuple)):
            children = list(observers)
        else:
            children = [observers]
        if on_batch_end is not None:
            children.append(CallbackObserver(on_batch_end))
        return cls(children)

    def append(self, observer: RunObserver) -> None:
        self.observers.append(observer)

    def __len__(self) -> int:
        return len(self.observers)

    def __bool__(self) -> bool:
        return bool(self.observers)

    def on_run_start(self, event: RunStartEvent) -> None:
        for obs in self.observers:
            obs.on_run_start(event)

    def on_epoch_start(self, event: EpochStartEvent) -> None:
        for obs in self.observers:
            obs.on_epoch_start(event)

    def on_batch_end(self, event: BatchEndEvent) -> None:
        for obs in self.observers:
            obs.on_batch_end(event)

    def on_eval_end(self, event: EvalEndEvent) -> None:
        for obs in self.observers:
            obs.on_eval_end(event)

    def on_run_end(self, event: RunEndEvent) -> None:
        for obs in self.observers:
            obs.on_run_end(event)

    # The resilience hooks fan out via getattr so that pre-existing
    # duck-typed observers implementing only the original five hooks keep
    # working unchanged.
    def on_checkpoint_written(self, event: CheckpointWrittenEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_checkpoint_written", None)
            if hook is not None:
                hook(event)

    def on_checkpoint_restored(self, event: CheckpointRestoredEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_checkpoint_restored", None)
            if hook is not None:
                hook(event)

    def on_anomaly_detected(self, event: AnomalyDetectedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_anomaly_detected", None)
            if hook is not None:
                hook(event)

    # Serving hooks (additive, schema v1): same getattr fan-out so training
    # observers that predate the serving subsystem keep working unchanged.
    def on_request_received(self, event: RequestReceivedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_request_received", None)
            if hook is not None:
                hook(event)

    def on_batch_flushed(self, event: BatchFlushedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_batch_flushed", None)
            if hook is not None:
                hook(event)

    def on_request_completed(self, event: RequestCompletedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_request_completed", None)
            if hook is not None:
                hook(event)

    def on_model_swapped(self, event: ModelSwappedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_model_swapped", None)
            if hook is not None:
                hook(event)

    def on_request_shed(self, event: RequestShedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_request_shed", None)
            if hook is not None:
                hook(event)

    # Data-pipeline hook (additive, schema v1): same getattr fan-out.
    def on_shard_loaded(self, event: ShardLoadedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_shard_loaded", None)
            if hook is not None:
                hook(event)

    # Distributed-training hook (additive, schema v1).
    def on_dist_sync(self, event: DistSyncEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_dist_sync", None)
            if hook is not None:
                hook(event)

    # Streaming / online-learning hooks (additive, schema v1).
    def on_stream_window(self, event: StreamWindowEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_stream_window", None)
            if hook is not None:
                hook(event)

    def on_drift_detected(self, event: DriftDetectedEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_drift_detected", None)
            if hook is not None:
                hook(event)

    def on_promotion(self, event: PromotionEvent) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_promotion", None)
            if hook is not None:
                hook(event)
