"""Observability: event bus, metric registry, phase timers, and trace sinks.

The training stack emits structured lifecycle events (``run_start`` →
``epoch_start`` → ``batch_end``* → ``eval_end`` → ... → ``run_end``) to any
:class:`RunObserver`; hot paths are wrapped in :func:`phase` scopes that cost
nothing unless a collector is active.  See DESIGN.md §"Observability".
"""

from .events import (
    SCHEMA_VERSION,
    AnomalyDetectedEvent,
    BaseObserver,
    BatchEndEvent,
    BatchFlushedEvent,
    CallbackObserver,
    CheckpointRestoredEvent,
    CheckpointWrittenEvent,
    DriftDetectedEvent,
    EpochStartEvent,
    EvalEndEvent,
    ModelSwappedEvent,
    ObserverList,
    PromotionEvent,
    RequestCompletedEvent,
    RequestReceivedEvent,
    RequestShedEvent,
    RunEndEvent,
    RunObserver,
    RunStartEvent,
    DistSyncEvent,
    ShardLoadedEvent,
    StreamWindowEvent,
)
from .inspect import (
    SpanTree,
    StreamSummary,
    TraceSummary,
    read_trace,
    render_stream,
    render_summary,
    render_spans,
    summarize_spans,
    summarize_stream,
    summarize_trace,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    EMAMeter,
    FixedBucketHistogram,
    Gauge,
    MetricRegistry,
    StreamingHistogram,
)
from .profiler import SamplingProfiler
from .sinks import ConsoleReporter, JsonlTraceWriter
from .timers import PhaseStat, PhaseTimings, active_timings, collect, phase, timed
from .trace import (
    SpanContext,
    SpanRecorder,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    "SCHEMA_VERSION",
    "RunObserver", "BaseObserver", "ObserverList", "CallbackObserver",
    "RunStartEvent", "EpochStartEvent", "BatchEndEvent", "EvalEndEvent",
    "RunEndEvent",
    "CheckpointWrittenEvent", "CheckpointRestoredEvent",
    "AnomalyDetectedEvent",
    "RequestReceivedEvent", "BatchFlushedEvent", "RequestCompletedEvent",
    "ModelSwappedEvent", "RequestShedEvent",
    "ShardLoadedEvent", "DistSyncEvent",
    "StreamWindowEvent", "DriftDetectedEvent", "PromotionEvent",
    "Counter", "Gauge", "EMAMeter", "StreamingHistogram",
    "FixedBucketHistogram", "MetricRegistry", "DEFAULT_LATENCY_BUCKETS_S",
    "PhaseStat", "PhaseTimings", "collect", "phase", "timed", "active_timings",
    "JsonlTraceWriter", "ConsoleReporter",
    "TraceSummary", "read_trace", "summarize_trace", "render_summary",
    "SpanTree", "summarize_spans", "render_spans",
    "StreamSummary", "summarize_stream", "render_stream",
    "SpanContext", "SpanRecorder", "Tracer", "current_span", "get_tracer",
    "set_tracer", "span", "use_tracer",
    "SamplingProfiler",
]
