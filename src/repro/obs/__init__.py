"""Observability: event bus, metric registry, phase timers, and trace sinks.

The training stack emits structured lifecycle events (``run_start`` →
``epoch_start`` → ``batch_end``* → ``eval_end`` → ... → ``run_end``) to any
:class:`RunObserver`; hot paths are wrapped in :func:`phase` scopes that cost
nothing unless a collector is active.  See DESIGN.md §"Observability".
"""

from .events import (
    SCHEMA_VERSION,
    AnomalyDetectedEvent,
    BaseObserver,
    BatchEndEvent,
    BatchFlushedEvent,
    CallbackObserver,
    CheckpointRestoredEvent,
    CheckpointWrittenEvent,
    EpochStartEvent,
    EvalEndEvent,
    ObserverList,
    RequestCompletedEvent,
    RequestReceivedEvent,
    RunEndEvent,
    RunObserver,
    RunStartEvent,
    ShardLoadedEvent,
)
from .inspect import TraceSummary, read_trace, render_summary, summarize_trace
from .metrics import Counter, EMAMeter, Gauge, MetricRegistry, StreamingHistogram
from .sinks import ConsoleReporter, JsonlTraceWriter
from .timers import PhaseStat, PhaseTimings, active_timings, collect, phase, timed

__all__ = [
    "SCHEMA_VERSION",
    "RunObserver", "BaseObserver", "ObserverList", "CallbackObserver",
    "RunStartEvent", "EpochStartEvent", "BatchEndEvent", "EvalEndEvent",
    "RunEndEvent",
    "CheckpointWrittenEvent", "CheckpointRestoredEvent",
    "AnomalyDetectedEvent",
    "RequestReceivedEvent", "BatchFlushedEvent", "RequestCompletedEvent",
    "ShardLoadedEvent",
    "Counter", "Gauge", "EMAMeter", "StreamingHistogram", "MetricRegistry",
    "PhaseStat", "PhaseTimings", "collect", "phase", "timed", "active_timings",
    "JsonlTraceWriter", "ConsoleReporter",
    "TraceSummary", "read_trace", "summarize_trace", "render_summary",
]
