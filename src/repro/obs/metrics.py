"""Metric registry: counters, gauges, EMA meters, and histograms.

Metrics are keyed by dotted names (``train.loss.logloss``, ``train.grad_norm``,
``data.batch_ms``) and created on first use via the typed accessors of
:class:`MetricRegistry`.  ``snapshot()`` renders the whole registry as a
JSON-safe dict, which is what the run-trace sink embeds in the ``run_end``
event; :meth:`MetricRegistry.render_prometheus` renders it in the Prometheus
text exposition format for ``GET /metrics`` scrapes.

Two histogram flavours coexist deliberately:

* :class:`StreamingHistogram` — a reservoir quantile sketch, good for
  offline run summaries where the interesting quantile is unknown upfront.
* :class:`FixedBucketHistogram` — fixed upper bounds with cumulative
  counts, the shape Prometheus expects so fleet-level latency quantiles can
  be aggregated across replicas (reservoir quantiles cannot be merged).

All mutators are thread-safe: serving updates these from HTTP handler
threads and engine workers concurrently.
"""

from __future__ import annotations

import hashlib
import re
import threading
from bisect import bisect_left

import numpy as np

__all__ = ["Counter", "Gauge", "EMAMeter", "StreamingHistogram",
           "FixedBucketHistogram", "MetricRegistry",
           "DEFAULT_LATENCY_BUCKETS_S"]

_NAME_RE = re.compile(r"^[A-Za-z0-9_\-]+(\.[A-Za-z0-9_\-]+)*$")

#: Default latency buckets (seconds) for serving-path fixed histograms:
#: sub-millisecond cache hits through multi-second stalls.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _stable_seed(name: str) -> int:
    """Deterministic per-name RNG seed, stable across processes.

    ``hash(str)`` is salted per interpreter (PYTHONHASHSEED), which would
    make reservoir contents differ between identically-seeded runs; a
    digest keeps the "deterministic replacement stream" promise honest.
    """
    return int.from_bytes(
        hashlib.blake2s(name.encode("utf-8"), digest_size=4).digest(), "big")


class Counter:
    """Monotonically increasing count (e.g. optimiser steps)."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (e.g. current learning rate)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class EMAMeter:
    """Bias-corrected exponential moving average of a stream of values.

    ``value`` equals ``raw / (1 - beta**count)`` so early readings are not
    dragged toward zero (Adam-style correction).
    """

    kind = "ema"

    def __init__(self, name: str, beta: float = 0.9):
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.name = name
        self.beta = beta
        self.count = 0
        self._raw = 0.0
        self.last: float | None = None
        self._lock = threading.Lock()

    def update(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self._raw = self.beta * self._raw + (1.0 - self.beta) * value
            self.last = value

    @property
    def value(self) -> float | None:
        if self.count == 0:
            return None
        return self._raw / (1.0 - self.beta ** self.count)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "last": self.last,
                "count": self.count}


class StreamingHistogram:
    """Quantile sketch via Vitter's Algorithm R reservoir sampling.

    Exact until ``reservoir_size`` observations; after that, observation
    ``i`` enters the reservoir with probability ``reservoir_size / i``
    (replacing a uniformly chosen slot), so the reservoir stays a uniform
    sample of the whole stream — late values under heavy load are as
    likely to be represented as early ones.  ``count``/``sum`` are exact
    totals over every observation, independent of the sketch.
    """

    kind = "histogram"

    def __init__(self, name: str, reservoir_size: int = 2048):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir: list[float] = []
        # Deterministic replacement stream keeps runs reproducible (seeded
        # from a digest of the name — stable across processes, unlike
        # salted str hash()).
        self._rng = np.random.default_rng(_stable_seed(name))
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if self.count <= self.reservoir_size:
                self._reservoir.append(value)
                return
            # Algorithm R: observation i (1-based) replaces a reservoir
            # slot with probability k/i, uniformly over slots.
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def sum(self) -> float:
        """Exact sum of every recorded value (not just the reservoir)."""
        return self.total

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._reservoir:
                return None
            sample = np.asarray(self._reservoir)
        return float(np.quantile(sample, q))

    @property
    def p50(self) -> float | None:
        return self.quantile(0.5)

    @property
    def p95(self) -> float | None:
        return self.quantile(0.95)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count, "sum": self.total,
                "mean": self.mean, "min": self.min, "max": self.max,
                "p50": self.p50, "p95": self.p95}


class FixedBucketHistogram:
    """Histogram with fixed upper bounds and Prometheus bucket semantics.

    ``buckets`` are inclusive upper bounds (``le``) in strictly increasing
    order; an implicit ``+Inf`` bucket catches everything above the last
    bound.  ``cumulative()`` returns the running totals Prometheus expects.
    Unlike the reservoir sketch, fixed buckets from many replicas can be
    summed server-side, which is what makes fleet-level p99 possible.
    """

    kind = "fixed_histogram"

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self.count = 0
        self.total = 0.0
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            # First bound >= value; values above every bound land in +Inf.
            self._counts[bisect_left(self.buckets, value)] += 1

    @property
    def sum(self) -> float:
        return self.total

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for bound, count in zip(self.buckets + (float("inf"),), counts):
            running += count
            out.append((bound, running))
        return out

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count, "sum": self.total,
                "buckets": {("+Inf" if bound == float("inf") else repr(bound)):
                            cum for bound, cum in self.cumulative()}}


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Sanitise a dotted metric name into a legal Prometheus identifier."""
    sanitised = _PROM_INVALID.sub("_", name)
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


class MetricRegistry:
    """Create-on-first-use store of named metrics.

    Re-requesting a name returns the existing instance; requesting it with a
    different type is an error (one dotted name, one meaning).
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._create_lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise TypeError(f"metric {name!r} already registered as "
                                f"{existing.kind}, requested {kind}")
            return existing
        with self._create_lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise TypeError(f"metric {name!r} already registered as "
                                    f"{existing.kind}, requested {kind}")
                return existing
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}; use dotted "
                                 "segments of [A-Za-z0-9_-]")
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def ema(self, name: str, beta: float = 0.9) -> EMAMeter:
        return self._get_or_create(name, lambda: EMAMeter(name, beta), "ema")

    def histogram(self, name: str, reservoir_size: int = 2048
                  ) -> StreamingHistogram:
        return self._get_or_create(
            name, lambda: StreamingHistogram(name, reservoir_size), "histogram")

    def fixed_histogram(
        self, name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> FixedBucketHistogram:
        return self._get_or_create(
            name, lambda: FixedBucketHistogram(name, buckets),
            "fixed_histogram")

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-safe dump of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format v0.0.4.

        Mapping: counters gain the conventional ``_total`` suffix; gauges
        and EMA meters render as gauges (unset ones are omitted — Prometheus
        has no null); reservoir histograms render as summaries (quantiles +
        ``_sum``/``_count``); fixed-bucket histograms render as histograms
        with cumulative ``le`` buckets.
        """
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            pname = prometheus_name(name)
            kind = metric.kind
            if kind == "counter":
                lines.append(f"# TYPE {pname}_total counter")
                lines.append(f"{pname}_total {_fmt(metric.value)}")
            elif kind in ("gauge", "ema"):
                value = metric.value
                if value is None:
                    continue
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_fmt(value)}")
            elif kind == "histogram":
                lines.append(f"# TYPE {pname} summary")
                for q in (0.5, 0.9, 0.95, 0.99):
                    value = metric.quantile(q)
                    if value is not None:
                        lines.append(f'{pname}{{quantile="{q}"}} '
                                     f"{_fmt(value)}")
                lines.append(f"{pname}_sum {_fmt(metric.sum)}")
                lines.append(f"{pname}_count {metric.count}")
            elif kind == "fixed_histogram":
                lines.append(f"# TYPE {pname} histogram")
                for bound, cum in metric.cumulative():
                    lines.append(f'{pname}_bucket{{le="{_fmt(bound)}"}} '
                                 f"{cum}")
                lines.append(f"{pname}_sum {_fmt(metric.sum)}")
                lines.append(f"{pname}_count {metric.count}")
        return "\n".join(lines) + "\n"
