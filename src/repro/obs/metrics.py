"""Metric registry: counters, gauges, EMA meters, and streaming histograms.

Metrics are keyed by dotted names (``train.loss.logloss``, ``train.grad_norm``,
``data.batch_ms``) and created on first use via the typed accessors of
:class:`MetricRegistry`.  ``snapshot()`` renders the whole registry as a
JSON-safe dict, which is what the run-trace sink embeds in the ``run_end``
event.
"""

from __future__ import annotations

import re

import numpy as np

__all__ = ["Counter", "Gauge", "EMAMeter", "StreamingHistogram",
           "MetricRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9_\-]+(\.[A-Za-z0-9_\-]+)*$")


class Counter:
    """Monotonically increasing count (e.g. optimiser steps)."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (e.g. current learning rate)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class EMAMeter:
    """Bias-corrected exponential moving average of a stream of values.

    ``value`` equals ``raw / (1 - beta**count)`` so early readings are not
    dragged toward zero (Adam-style correction).
    """

    kind = "ema"

    def __init__(self, name: str, beta: float = 0.9):
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.name = name
        self.beta = beta
        self.count = 0
        self._raw = 0.0
        self.last: float | None = None

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._raw = self.beta * self._raw + (1.0 - self.beta) * value
        self.last = value

    @property
    def value(self) -> float | None:
        if self.count == 0:
            return None
        return self._raw / (1.0 - self.beta ** self.count)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "last": self.last,
                "count": self.count}


class StreamingHistogram:
    """Quantile sketch over a value stream via deterministic reservoir
    sampling: exact until ``reservoir_size`` observations, unbiased after."""

    kind = "histogram"

    def __init__(self, name: str, reservoir_size: int = 2048):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir: list[float] = []
        # Deterministic replacement stream keeps runs reproducible.
        self._rng = np.random.default_rng(abs(hash(name)) % (2 ** 32))

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return None
        return float(np.quantile(np.asarray(self._reservoir), q))

    @property
    def p50(self) -> float | None:
        return self.quantile(0.5)

    @property
    def p95(self) -> float | None:
        return self.quantile(0.95)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count, "mean": self.mean,
                "min": self.min, "max": self.max, "p50": self.p50,
                "p95": self.p95}


class MetricRegistry:
    """Create-on-first-use store of named metrics.

    Re-requesting a name returns the existing instance; requesting it with a
    different type is an error (one dotted name, one meaning).
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise TypeError(f"metric {name!r} already registered as "
                                f"{existing.kind}, requested {kind}")
            return existing
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}; use dotted "
                             "segments of [A-Za-z0-9_-]")
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def ema(self, name: str, beta: float = 0.9) -> EMAMeter:
        return self._get_or_create(name, lambda: EMAMeter(name, beta), "ema")

    def histogram(self, name: str, reservoir_size: int = 2048
                  ) -> StreamingHistogram:
        return self._get_or_create(
            name, lambda: StreamingHistogram(name, reservoir_size), "histogram")

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-safe dump of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}
