"""Parallel data pipeline: sharded storage, prefetching, processing cache.

Three independent pieces that compose on the training input path (see
DESIGN.md §11):

* :mod:`~repro.data.pipeline.shards` — checksummed npz shard format
  (``write_shards`` / ``ShardedCTRDataset``);
* :mod:`~repro.data.pipeline.loader` — ``PrefetchLoader``, background-thread
  batch assembly with a deterministic epoch order contract;
* :mod:`~repro.data.pipeline.cache` — on-disk ``build_ctr_data`` cache keyed
  by (raw data, world config, processing config) digests.
"""

from .cache import (
    PROCESSING_VERSION,
    cache_key,
    cached_build_ctr_data,
    config_digest,
    processing_digest,
    schema_digest,
    world_digest,
)
from .loader import PrefetchLoader
from .shards import (
    SHARD_FORMAT_VERSION,
    ShardCorruptError,
    ShardedCTRDataset,
    ShardPartitionView,
    partition_shards,
    write_shards,
)

__all__ = [
    "PROCESSING_VERSION",
    "cache_key",
    "cached_build_ctr_data",
    "config_digest",
    "processing_digest",
    "schema_digest",
    "world_digest",
    "PrefetchLoader",
    "SHARD_FORMAT_VERSION",
    "ShardCorruptError",
    "ShardedCTRDataset",
    "ShardPartitionView",
    "partition_shards",
    "write_shards",
]
