"""On-disk preprocessing cache: run ``build_ctr_data`` once per dataset.

The §VI-A2 processing pipeline (frequency filter, leave-last-3 split,
negative sampling) is pure Python per user and dominates start-up time on
large worlds.  Its output is a pure function of three ingredients, so a
cache entry is keyed by the SHA-256 of their digests concatenated:

* **raw-data digest** — the simulated world's behaviour arrays (per-user
  histories plus the item→category/seller tables);
* **world-config digest** — the full ``InterestWorldConfig``, covering every
  knob that shapes the derived schema (field list, vocab sizes, thresholds);
* **processing-config digest** — ``max_seq_len``, the sampling ``seed``, and
  ``PROCESSING_VERSION`` (bumped whenever ``build_ctr_data`` semantics
  change, invalidating all prior entries).

Entries follow the resilience conventions: arrays in one ``.npz`` plus a
``cache.json`` manifest carrying per-array SHA-256 digests and the result's
schema digest, both published atomically with the manifest written last.  A
corrupt or tampered entry fails digest verification and is treated as a
miss — the pipeline rebuilds and rewrites it rather than erroring.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from ...resilience.atomic import atomic_write_json, atomic_write_npz
from ...resilience.checkpoint import array_digest
from ..batching import CTRDataset
from ..processing import ProcessedData, build_ctr_data
from ..schema import DatasetSchema

__all__ = [
    "PROCESSING_VERSION",
    "CACHE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "world_digest",
    "config_digest",
    "processing_digest",
    "schema_digest",
    "cache_key",
    "cached_build_ctr_data",
]

#: Bump when ``build_ctr_data`` changes semantics; invalidates old entries.
PROCESSING_VERSION = 1

CACHE_FORMAT_VERSION = 1
MANIFEST_NAME = "cache.json"
ARRAYS_NAME = "arrays.npz"

_SPLITS = ("train", "validation", "test")
_ARRAY_KEYS = ("categorical", "sequences", "mask", "labels")


def _hexdigest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def world_digest(world) -> str:
    """SHA-256 over the raw behaviour data the processing pipeline consumes."""
    h = hashlib.sha256()

    def update(array: np.ndarray) -> None:
        h.update(np.ascontiguousarray(array).tobytes())

    update(world.item_category)
    if world.item_seller is not None:
        update(world.item_seller)
    for user in world.users:
        h.update(int(user.user_id).to_bytes(8, "little", signed=True))
        update(user.items)
        update(user.topics)
    return h.hexdigest()


def config_digest(config) -> str:
    """SHA-256 over the full world configuration (canonical JSON)."""
    payload = dataclasses.asdict(config)
    return _hexdigest(json.dumps(payload, sort_keys=True))


def processing_digest(max_seq_len: int, seed: int) -> str:
    """SHA-256 over the processing knobs plus ``PROCESSING_VERSION``."""
    payload = {
        "max_seq_len": int(max_seq_len),
        "seed": int(seed),
        "processing_version": PROCESSING_VERSION,
    }
    return _hexdigest(json.dumps(payload, sort_keys=True))


def schema_digest(schema: DatasetSchema) -> str:
    """SHA-256 over a schema's canonical dict form (stored for verification)."""
    return _hexdigest(json.dumps(schema.to_dict(), sort_keys=True))


def cache_key(world, max_seq_len: int, seed: int) -> str:
    """Entry key: digest over (raw data, world config, processing config)."""
    parts = "\n".join(
        [
            world_digest(world),
            config_digest(world.config),
            processing_digest(max_seq_len, seed),
        ]
    )
    return _hexdigest(parts)


def _entry_dir(cache_dir: str | Path, key: str) -> Path:
    return Path(cache_dir) / key[:32]


def _array_name(split: str, field: str) -> str:
    return f"{split}_{field}"


def _store(entry: Path, data: ProcessedData, key: str, raw: str) -> None:
    arrays = {}
    for split in _SPLITS:
        dataset = data.splits[split]
        for field in _ARRAY_KEYS:
            arrays[_array_name(split, field)] = getattr(dataset, field)
    atomic_write_npz(entry / ARRAYS_NAME, arrays, compressed=False)
    manifest = {
        "format_version": CACHE_FORMAT_VERSION,
        "key": key,
        "raw_digest": raw,
        "schema": data.schema.to_dict(),
        "schema_digest": schema_digest(data.schema),
        "item_map": {str(k): int(v) for k, v in data.item_map.items()},
        "user_map": {str(k): int(v) for k, v in data.user_map.items()},
        "arrays": {
            name: {"sha256": array_digest(arr), "dtype": str(arr.dtype)}
            for name, arr in arrays.items()
        },
    }
    atomic_write_json(entry / MANIFEST_NAME, manifest)


def _load(entry: Path, key: str) -> ProcessedData | None:
    """Read and verify one entry; any mismatch or IO error is a miss."""
    try:
        manifest = json.loads((entry / MANIFEST_NAME).read_text(encoding="utf-8"))
        if manifest.get("format_version") != CACHE_FORMAT_VERSION:
            return None
        if manifest.get("key") != key:
            return None
        schema = DatasetSchema.from_dict(manifest["schema"])
        if schema_digest(schema) != manifest["schema_digest"]:
            return None
        with np.load(entry / ARRAYS_NAME, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in manifest["arrays"]}
        for name, meta in manifest["arrays"].items():
            if array_digest(arrays[name]) != meta["sha256"]:
                return None
        splits = {}
        for split in _SPLITS:
            splits[split] = CTRDataset(
                schema=schema,
                categorical=arrays[_array_name(split, "categorical")],
                sequences=arrays[_array_name(split, "sequences")],
                mask=arrays[_array_name(split, "mask")],
                labels=arrays[_array_name(split, "labels")],
            )
        return ProcessedData(
            schema=schema,
            train=splits["train"],
            validation=splits["validation"],
            test=splits["test"],
            item_map={int(k): v for k, v in manifest["item_map"].items()},
            user_map={int(k): v for k, v in manifest["user_map"].items()},
        )
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        # json.JSONDecodeError is a ValueError; a flipped byte inside the
        # npz surfaces as BadZipFile before the digest check even runs.
        return None


def _count(registry, name: str) -> None:
    if registry is not None:
        registry.counter(name).inc()


def cached_build_ctr_data(
    world,
    max_seq_len: int = 20,
    seed: int = 0,
    cache_dir: str | Path | None = None,
    registry=None,
) -> ProcessedData:
    """``build_ctr_data`` with an on-disk cache in front.

    With ``cache_dir=None`` this is exactly ``build_ctr_data``.  Otherwise
    the entry keyed by :func:`cache_key` is verified and returned on hit;
    on miss (including a corrupt entry) the pipeline runs and the entry is
    (re)written.  Hits and misses tick ``pipeline.cache.hit`` /
    ``pipeline.cache.miss`` on ``registry`` when one is supplied.
    """
    if cache_dir is None:
        return build_ctr_data(world, max_seq_len=max_seq_len, seed=seed)
    key = cache_key(world, max_seq_len, seed)
    entry = _entry_dir(cache_dir, key)
    cached = _load(entry, key)
    if cached is not None:
        _count(registry, "pipeline.cache.hit")
        return cached
    _count(registry, "pipeline.cache.miss")
    data = build_ctr_data(world, max_seq_len=max_seq_len, seed=seed)
    _store(entry, data, key, world_digest(world))
    return data
