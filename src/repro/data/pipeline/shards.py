"""Sharded on-disk dataset format: npz shards plus a checksummed JSON index.

``write_shards`` splits a :class:`~repro.data.batching.CTRDataset` into
fixed-size row ranges, writes each as an (optionally compressed) ``.npz``
archive, and commits a JSON index last — mirroring the write protocol of
:mod:`repro.resilience.checkpoint`: every byte on disk is covered by a
SHA-256 digest, every file is published via atomic temp+fsync+rename, and
the index is the commit record (shards without an index are an unfinished
write).  The index additionally carries a digest over its own canonical
payload, so a tampered or truncated index is as loud as a tampered shard.

``ShardedCTRDataset`` is the read side: random access by global row index
through a bounded LRU shard cache, shard-grouped gathers that load each
needed shard at most once per call, and a ``gather_batches`` window gather
used by the prefetch loader to assemble several batches per shard visit.
All reads verify the recorded digest before any array is trusted.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ...obs.events import ShardLoadedEvent
from ...resilience.atomic import atomic_write_bytes, atomic_write_json
from ..batching import Batch, CTRDataset
from ..schema import DatasetSchema

__all__ = [
    "SHARD_FORMAT_VERSION",
    "INDEX_NAME",
    "ShardCorruptError",
    "write_shards",
    "ShardedCTRDataset",
    "ShardPartitionView",
    "partition_shards",
]

SHARD_FORMAT_VERSION = 1
INDEX_NAME = "index.json"

#: Row arrays stored per shard, in a fixed order.
_ARRAY_KEYS = ("categorical", "sequences", "mask", "labels")


class ShardCorruptError(ValueError):
    """A shard or index on disk failed checksum/structure validation."""


def _index_digest(index: dict) -> str:
    """SHA-256 over the canonical JSON of the index minus its own digest."""
    payload = {k: v for k, v in index.items() if k != "index_digest"}
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def _shard_name(i: int) -> str:
    return f"shard-{i:05d}.npz"


def write_shards(
    dataset: CTRDataset,
    directory: str | Path,
    shard_size: int = 2048,
    compressed: bool = True,
) -> Path:
    """Write ``dataset`` as npz shards plus a checksummed index; return dir.

    Shards are written first, the index last: a crash mid-write leaves no
    readable dataset rather than a silently short one.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n = len(dataset)
    if n == 0:
        raise ValueError("refusing to shard an empty dataset")
    savez = np.savez_compressed if compressed else np.savez
    shards = []
    for i, start in enumerate(range(0, n, shard_size)):
        rows = slice(start, min(start + shard_size, n))
        arrays = {
            "categorical": dataset.categorical[rows],
            "sequences": dataset.sequences[rows],
            "mask": dataset.mask[rows],
            "labels": dataset.labels[rows],
        }
        buffer = io.BytesIO()
        savez(buffer, **arrays)
        payload = buffer.getvalue()
        name = _shard_name(i)
        atomic_write_bytes(directory / name, payload)
        meta = {
            "name": name,
            "offset": int(start),
            "rows": int(arrays["labels"].shape[0]),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        shards.append(meta)
    index = {
        "format_version": SHARD_FORMAT_VERSION,
        "schema": dataset.schema.to_dict(),
        "num_samples": int(n),
        "shard_size": int(shard_size),
        "compressed": bool(compressed),
        "dtypes": {k: str(getattr(dataset, k).dtype) for k in _ARRAY_KEYS},
        "shards": shards,
    }
    index["index_digest"] = _index_digest(index)
    atomic_write_json(directory / INDEX_NAME, index)
    return directory


class ShardedCTRDataset:
    """Random-access view over a shard directory written by ``write_shards``.

    Exposes the subset of the :class:`CTRDataset` surface the training loop
    uses — ``__len__``, ``schema``, and ``batch(indices)`` — so both
    :class:`~repro.data.batching.DataLoader` and the prefetch loader can
    iterate it unchanged.  ``cache_shards`` bounds how many decompressed
    shards stay resident (``None`` keeps everything; training-scale shard
    sets rarely fit, which is the point of the format).

    Thread safety: the cache map is lock-protected; disk loads run outside
    the lock, so concurrent prefetch workers overlap IO and decompression.
    Two workers racing on the same cold shard may both load it — wasted
    work, never wrong results.
    """

    def __init__(self, directory: str | Path, cache_shards: int | None = None):
        if cache_shards is not None and cache_shards < 1:
            raise ValueError("cache_shards must be >= 1 (or None for unbounded)")
        self.directory = Path(directory)
        self.cache_shards = cache_shards
        index_path = self.directory / INDEX_NAME
        try:
            index = json.loads(index_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ShardCorruptError(f"no shard index at {index_path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardCorruptError(f"unreadable shard index {index_path}: {exc}")
        if not isinstance(index, dict) or "index_digest" not in index:
            raise ShardCorruptError(f"{index_path} is not a shard index")
        if index.get("format_version") != SHARD_FORMAT_VERSION:
            raise ShardCorruptError(
                f"{index_path}: format_version "
                f"{index.get('format_version')!r} unsupported "
                f"(expected {SHARD_FORMAT_VERSION})"
            )
        if _index_digest(index) != index["index_digest"]:
            raise ShardCorruptError(f"{index_path}: index digest mismatch")
        self._index = index
        self.schema = DatasetSchema.from_dict(index["schema"])
        self.num_samples = int(index["num_samples"])
        self._shards = index["shards"]
        self._offsets = np.array(
            [s["offset"] for s in self._shards] + [self.num_samples],
            dtype=np.int64,
        )
        self._dtypes = {k: np.dtype(v) for k, v in index["dtypes"].items()}
        self._cache: OrderedDict[int, dict[str, np.ndarray]] = OrderedDict()
        self._lock = threading.Lock()
        self._telemetry_lock = threading.Lock()
        self._registry = None
        self._observers = None

    def __len__(self) -> int:
        return self.num_samples

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def bind_telemetry(self, registry=None, observers=None) -> None:
        """Attach a metric registry (shard-cache hit/miss counters) and an
        observer list (``shard_loaded`` events).  Either may be ``None``."""
        self._registry = registry
        self._observers = observers

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def load_shard(self, i: int) -> dict[str, np.ndarray]:
        """Read, checksum-verify, and decode shard ``i`` (no caching)."""
        meta = self._shards[i]
        path = self.directory / meta["name"]
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise ShardCorruptError(f"missing shard file {path}") from None
        digest = hashlib.sha256(payload).hexdigest()
        if digest != meta["sha256"]:
            raise ShardCorruptError(
                f"{path}: SHA-256 mismatch (expected {meta['sha256'][:12]}, "
                f"got {digest[:12]})"
            )
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in _ARRAY_KEYS}
        if arrays["labels"].shape[0] != meta["rows"]:
            raise ShardCorruptError(
                f"{path}: expected {meta['rows']} rows, "
                f"found {arrays['labels'].shape[0]}"
            )
        return arrays

    def _shard(self, i: int) -> dict[str, np.ndarray]:
        """Cached shard access; counts hits/misses, events actual loads."""
        with self._lock:
            cached = self._cache.get(i)
            if cached is not None:
                self._cache.move_to_end(i)
        if cached is not None:
            self._count("pipeline.shard_cache.hit")
            return cached
        self._count("pipeline.shard_cache.miss")
        start = time.perf_counter()
        arrays = self.load_shard(i)
        load_ms = (time.perf_counter() - start) * 1000.0
        with self._lock:
            self._cache[i] = arrays
            self._cache.move_to_end(i)
            limit = self.cache_shards
            while limit is not None and len(self._cache) > limit:
                self._cache.popitem(last=False)
        self._event(i, int(meta_rows(self._shards[i])), load_ms)
        return arrays

    def _count(self, name: str) -> None:
        if self._registry is not None:
            with self._telemetry_lock:
                self._registry.counter(name).inc()

    def _event(self, shard: int, rows: int, load_ms: float) -> None:
        if self._observers is None:
            return
        event = ShardLoadedEvent(
            shard=shard,
            rows=rows,
            load_ms=load_ms,
            source=str(self.directory),
        )
        # Serialised: prefetch workers may emit concurrently and sinks
        # (e.g. the JSONL trace writer) are not thread-safe.
        with self._telemetry_lock:
            self._observers.on_shard_loaded(event)

    # ------------------------------------------------------------------
    # Row gather
    # ------------------------------------------------------------------
    def _locate(self, indices: np.ndarray) -> np.ndarray:
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= self.num_samples:
            raise IndexError(f"row index out of range (n={self.num_samples})")
        return np.searchsorted(self._offsets, indices, side="right") - 1

    def _alloc(self, total: int) -> dict[str, np.ndarray]:
        schema = self.schema
        return {
            "categorical": np.empty(
                (total, schema.num_categorical),
                dtype=self._dtypes["categorical"],
            ),
            "sequences": np.empty(
                (total, schema.num_sequential, schema.max_seq_len),
                dtype=self._dtypes["sequences"],
            ),
            "mask": np.empty((total, schema.max_seq_len), dtype=self._dtypes["mask"]),
            "labels": np.empty(total, dtype=self._dtypes["labels"]),
        }

    def _gather_into(
        self,
        out: dict[str, np.ndarray],
        positions: np.ndarray,
        indices: np.ndarray,
    ) -> None:
        """Fill ``out[positions]`` with rows ``indices``, one shard at a time."""
        if indices.size == 0:
            return
        shard_ids = self._locate(indices)
        order = np.argsort(shard_ids, kind="stable")
        sorted_ids = shard_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        for group in np.split(order, boundaries):
            shard = int(shard_ids[group[0]])
            arrays = self._shard(shard)
            local = indices[group] - int(self._offsets[shard])
            dest = positions[group]
            for key in _ARRAY_KEYS:
                out[key][dest] = arrays[key][local]

    def batch(self, indices: np.ndarray) -> Batch:
        """Assemble one mini-batch; loads each touched shard at most once."""
        indices = np.asarray(indices, dtype=np.int64)
        out = self._alloc(indices.shape[0])
        self._gather_into(out, np.arange(indices.shape[0]), indices)
        return Batch(**out)

    def gather_batches(self, index_arrays: list[np.ndarray]) -> list[Batch]:
        """Assemble a *window* of batches with one pass over the shards.

        Each shard needed anywhere in the window is loaded at most once —
        this is the prefetch loader's main lever against cache thrashing
        under shuffled access, where per-batch gathers reload nearly every
        shard for every batch.
        """
        if not index_arrays:
            return []
        chunks = [np.asarray(ix, dtype=np.int64) for ix in index_arrays]
        lengths = [c.shape[0] for c in chunks]
        flat = np.concatenate(chunks)
        out = self._alloc(int(flat.shape[0]))
        self._gather_into(out, np.arange(flat.shape[0]), flat)
        splits = np.cumsum(lengths)[:-1]
        parts = {key: np.split(out[key], splits) for key in _ARRAY_KEYS}
        return [
            Batch(**{key: parts[key][b] for key in _ARRAY_KEYS})
            for b in range(len(chunks))
        ]

    def materialize(self) -> CTRDataset:
        """Load every shard (in order) back into one in-memory dataset."""
        arrays = [self.load_shard(i) for i in range(self.num_shards)]
        return CTRDataset(
            schema=self.schema,
            categorical=np.concatenate([a["categorical"] for a in arrays]),
            sequences=np.concatenate([a["sequences"] for a in arrays]),
            mask=np.concatenate([a["mask"] for a in arrays]),
            labels=np.concatenate([a["labels"] for a in arrays]),
        )

    def shard_rows(self) -> list[int]:
        """Row count of every shard, from the index (no shard reads)."""
        return [meta_rows(meta) for meta in self._shards]


def meta_rows(meta: dict) -> int:
    """Row count recorded for one shard in the index."""
    return int(meta["rows"])


def partition_shards(num_shards: int, world_size: int) -> list[list[int]]:
    """Round-robin assignment of shard indices to ``world_size`` ranks.

    The shard index is the partition key: rank ``r`` owns shards
    ``r, r + world_size, r + 2*world_size, ...``.  The result is a disjoint
    exact cover of ``range(num_shards)`` — every shard belongs to exactly one
    rank — which is what makes data-parallel training over a shared shard
    directory safe without any cross-process coordination.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if world_size > num_shards:
        raise ValueError(
            f"world_size {world_size} exceeds num_shards {num_shards}: "
            f"some ranks would own no data; reshard with a smaller "
            f"shard_size or use fewer processes")
    return [list(range(rank, num_shards, world_size))
            for rank in range(world_size)]


class ShardPartitionView:
    """One rank's slice of a :class:`ShardedCTRDataset`: a subset of shards.

    Exposes the same duck-typed surface the training loaders need —
    ``__len__``, ``schema``, ``batch(indices)``, ``gather_batches`` — with
    row indices local to the partition (``0 .. len(view)``), mapped to the
    base dataset's global rows shard by shard.  The base dataset's LRU shard
    cache is shared, so a process holding one partition only ever caches its
    own shards.
    """

    def __init__(self, base: ShardedCTRDataset, shard_ids):
        shard_ids = [int(i) for i in shard_ids]
        if not shard_ids:
            raise ValueError("a shard partition must hold at least one shard")
        for i in shard_ids:
            if not 0 <= i < base.num_shards:
                raise ValueError(
                    f"shard id {i} out of range (num_shards="
                    f"{base.num_shards})")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids in partition: {shard_ids}")
        self.base = base
        self.shard_ids = shard_ids
        self.schema = base.schema
        rows = base.shard_rows()
        # Local row -> global row, in partition order (shard by shard).
        self._rows = np.concatenate([
            np.arange(rows[i], dtype=np.int64) + int(base._offsets[i])
            for i in shard_ids
        ])

    def __len__(self) -> int:
        return int(self._rows.shape[0])

    @property
    def num_shards(self) -> int:
        return len(self.shard_ids)

    def bind_telemetry(self, registry=None, observers=None) -> None:
        self.base.bind_telemetry(registry=registry, observers=observers)

    def batch(self, indices: np.ndarray) -> Batch:
        indices = np.asarray(indices, dtype=np.int64)
        return self.base.batch(self._rows[indices])

    def gather_batches(self, index_arrays: list[np.ndarray]) -> list[Batch]:
        return self.base.gather_batches(
            [self._rows[np.asarray(ix, dtype=np.int64)]
             for ix in index_arrays])
