"""Prefetching mini-batch loader with deterministic parallel epoch order.

``PrefetchLoader`` is a drop-in replacement for
:class:`~repro.data.batching.DataLoader` that assembles batches in background
worker threads while the training loop computes.  The determinism contract —
the foundation for bit-identical checkpoint resume — is:

* The per-epoch permutation is drawn **exactly once** from the loader RNG at
  the start of ``iter_batches``, before any worker thread exists.  The RNG
  stream is therefore identical to the sequential loader's, for every
  ``num_workers``.
* The epoch is split into *windows* of ``prefetch_depth`` consecutive batch
  indices, assigned round-robin to workers (worker ``w`` handles windows
  ``w``, ``w + num_workers``, ...).  Batch *contents* depend only on the
  permutation and the batch index, never on thread timing; threads only
  change *when* a batch is assembled, not *what* it contains.
* Each worker posts finished batches, in order, to its own bounded queue
  (``maxsize=prefetch_depth``); the consumer pops from the queue owning the
  next global batch index.  The owner of batch ``k`` is
  ``((k - skip) // prefetch_depth) % num_workers``, so delivery order equals
  sequential order and the consumer never waits on a queue whose head is not
  the batch it needs — bounded memory with no circular wait.

``num_workers=0`` bypasses threading entirely and matches ``DataLoader``
batch-for-batch, which doubles as the baseline in ``bench-pipeline``.

Windowing also powers the throughput win on sharded datasets: a worker hands
its whole window to :meth:`ShardedCTRDataset.gather_batches`, which loads
each needed shard once per window instead of once per batch — under shuffled
access this removes most decompression work regardless of core count.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterator

import numpy as np

from ...obs.timers import phase
from ...obs.trace import get_tracer
from ..batching import Batch

__all__ = ["PrefetchLoader"]

_JOIN_TIMEOUT_S = 5.0
_PUT_POLL_S = 0.1


class PrefetchLoader:
    """Deterministic prefetching loader over any ``__len__``/``batch`` dataset.

    Accepts both :class:`~repro.data.batching.CTRDataset` and
    :class:`~repro.data.pipeline.shards.ShardedCTRDataset`; the latter's
    ``gather_batches`` window gather is used automatically when present.
    """

    def __init__(
        self,
        dataset,
        batch_size: int = 128,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        num_workers: int = 0,
        prefetch_depth: int = 2,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.num_workers = num_workers
        self.prefetch_depth = prefetch_depth
        self._rng = rng or np.random.default_rng(0)
        self._registry = None
        self._observers = None

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        yield from self.iter_batches()

    def bind_telemetry(self, registry=None, observers=None) -> None:
        """Attach metrics/observers; forwarded to the dataset when supported.

        Enables the ``pipeline.prefetch_queue_depth`` gauge here and, on a
        sharded dataset, shard-cache counters and ``shard_loaded`` events.
        """
        self._registry = registry
        self._observers = observers
        bind = getattr(self.dataset, "bind_telemetry", None)
        if bind is not None:
            bind(registry=registry, observers=observers)

    def iter_batches(self, skip: int = 0) -> Iterator[Batch]:
        """Iterate the epoch, optionally skipping the first ``skip`` batches.

        Exactly one ``rng.permutation`` is consumed per call (when shuffling),
        matching ``DataLoader.iter_batches`` — restoring the RNG to its
        epoch-start state and passing the completed-batch count as ``skip``
        replays a partial epoch bit-identically at any worker count.
        """
        if skip < 0:
            raise ValueError("skip must be >= 0")
        n = len(self.dataset)
        if self.shuffle:
            order = self._rng.permutation(n)
        else:
            order = np.arange(n)
        num_batches = len(self)
        if skip >= num_batches:
            return
        if self.num_workers == 0:
            yield from self._iter_sequential(order, num_batches, skip)
        else:
            yield from self._iter_prefetch(order, num_batches, skip)

    # ------------------------------------------------------------------
    # Sequential path (num_workers=0): matches DataLoader batch-for-batch.
    # ------------------------------------------------------------------
    def _chunk(self, order: np.ndarray, index: int) -> np.ndarray:
        lo = index * self.batch_size
        hi = lo + self.batch_size
        return order[lo:hi]

    def _iter_sequential(
        self,
        order: np.ndarray,
        num_batches: int,
        skip: int,
    ) -> Iterator[Batch]:
        for index in range(skip, num_batches):
            chunk = self._chunk(order, index)
            with phase("data.batch"):
                batch = self.dataset.batch(chunk)
            yield batch

    # ------------------------------------------------------------------
    # Threaded path
    # ------------------------------------------------------------------
    def _iter_prefetch(
        self,
        order: np.ndarray,
        num_batches: int,
        skip: int,
    ) -> Iterator[Batch]:
        depth = self.prefetch_depth
        workers = self.num_workers
        windows = []
        for j, wstart in enumerate(range(skip, num_batches, depth)):
            windows.append((j % workers, wstart, min(wstart + depth, num_batches)))
        queues = [queue.Queue(maxsize=depth) for _ in range(workers)]
        stop = threading.Event()
        # Trace context is captured here, on the consumer thread, and handed
        # to workers explicitly — contextvars do not cross thread spawns.
        tracer = get_tracer()
        epoch_ctx = tracer.make_context() if tracer is not None else None
        epoch_start = time.monotonic()

        def post(q: queue.Queue, item) -> bool:
            while not stop.is_set():
                try:
                    q.put(item, timeout=_PUT_POLL_S)
                    return True
                except queue.Full:
                    continue
            return False

        def run(worker_id: int) -> None:
            q = queues[worker_id]
            try:
                for owner, wstart, wend in windows:
                    if owner != worker_id:
                        continue
                    chunks = [self._chunk(order, k) for k in range(wstart, wend)]
                    window_start = time.monotonic()
                    gather = getattr(self.dataset, "gather_batches", None)
                    if gather is not None:
                        batches = gather(chunks)
                    else:
                        batches = [self.dataset.batch(c) for c in chunks]
                    if tracer is not None:
                        tracer.record_span(
                            "pipeline.window", epoch_ctx, window_start,
                            time.monotonic(),
                            attrs={"worker": worker_id,
                                   "batches": wend - wstart})
                    for batch in batches:
                        if not post(q, ("batch", batch)):
                            return
            except Exception as exc:
                post(q, ("error", exc))

        threads = [
            threading.Thread(target=run, args=(w,), daemon=True)
            for w in range(workers)
        ]
        for t in threads:
            t.start()
        try:
            for k in range(skip, num_batches):
                q = queues[((k - skip) // depth) % workers]
                with phase("data.prefetch_wait"):
                    item = q.get()
                if item[0] == "error":
                    raise item[1]
                self._record_queue_depth(queues)
                yield item[1]
        finally:
            stop.set()
            for q in queues:
                while True:
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        break
            for t in threads:
                t.join(timeout=_JOIN_TIMEOUT_S)
            if tracer is not None:
                tracer.record_span(
                    "pipeline.epoch", epoch_ctx, epoch_start,
                    time.monotonic(), span_id=epoch_ctx.span_id,
                    attrs={"num_workers": workers,
                           "batches": num_batches - skip})

    def _record_queue_depth(self, queues) -> None:
        if self._registry is None:
            return
        total = sum(q.qsize() for q in queues)
        self._registry.gauge("pipeline.prefetch_queue_depth").set(total)
