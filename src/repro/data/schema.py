"""Feature schema shared by the data pipeline and every CTR model.

A sample follows Eq. (1) of the paper: ``x = [f_1..f_I, s_1..s_J]`` with
``I`` categorical features (user id, candidate item id, candidate category,
context fields) and ``J`` sequential features (item-id history, category
history, and on Alipay the seller history), all padded to a common length
``L``.  The paper's "#Fields" column counts ``I + J``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FieldSpec", "DatasetSchema"]


@dataclass(frozen=True)
class FieldSpec:
    """One feature field.

    Attributes:
        name: Human-readable field name (e.g. ``"item"`` or ``"item_seq"``).
        kind: Either ``"categorical"`` or ``"sequential"``.
        vocab_size: Number of distinct ids including the padding id 0.
    """

    name: str
    kind: str
    vocab_size: int

    def __post_init__(self):
        if self.kind not in ("categorical", "sequential"):
            raise ValueError(f"unknown field kind: {self.kind!r}")
        if self.vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {self.vocab_size}")

    def to_dict(self) -> dict:
        """JSON-safe form (used by exported serving artifacts)."""
        return {"name": self.name, "kind": self.kind,
                "vocab_size": int(self.vocab_size)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FieldSpec":
        return cls(name=payload["name"], kind=payload["kind"],
                   vocab_size=int(payload["vocab_size"]))


@dataclass(frozen=True)
class DatasetSchema:
    """Layout of one dataset's samples.

    Attributes:
        name: Dataset name (e.g. ``"amazon-cds"``).
        categorical: The ``I`` categorical fields, in sample order.
        sequential: The ``J`` sequential fields, in sample order.  Each
            sequential field pairs with the categorical field that describes
            the candidate in the same id space (``paired_with``).
        max_seq_len: The padded history length ``L``.
        paired_with: For each sequential field, the index into ``categorical``
            of the candidate-side field sharing its embedding table (item-id
            history pairs with the candidate item id, and so on).  Sharing
            embedding tables between history and candidate is what lets the
            SSL signal on sequence embeddings transfer to CTR prediction.
    """

    name: str
    categorical: tuple[FieldSpec, ...]
    sequential: tuple[FieldSpec, ...]
    max_seq_len: int
    paired_with: tuple[int, ...] = field(default=())

    def __post_init__(self):
        if self.max_seq_len < 1:
            raise ValueError("max_seq_len must be >= 1")
        if self.paired_with and len(self.paired_with) != len(self.sequential):
            raise ValueError("paired_with must align with sequential fields")
        for idx in self.paired_with:
            if not 0 <= idx < len(self.categorical):
                raise IndexError(f"paired_with index {idx} out of range")

    @property
    def num_categorical(self) -> int:
        """The paper's ``I``."""
        return len(self.categorical)

    @property
    def num_sequential(self) -> int:
        """The paper's ``J``."""
        return len(self.sequential)

    @property
    def num_fields(self) -> int:
        """The paper's "#Fields" (I + J)."""
        return self.num_categorical + self.num_sequential

    @property
    def num_features(self) -> int:
        """The paper's "#Features": total vocabulary across categorical
        fields (sequential fields share their paired categorical vocab)."""
        return sum(f.vocab_size for f in self.categorical)

    def to_dict(self) -> dict:
        """JSON-safe form; round-trips through :meth:`from_dict`.

        Serving artifacts embed this in their manifest so a scoring process
        can validate request rows without access to the training pipeline.
        """
        return {
            "name": self.name,
            "categorical": [f.to_dict() for f in self.categorical],
            "sequential": [f.to_dict() for f in self.sequential],
            "max_seq_len": int(self.max_seq_len),
            "paired_with": [int(i) for i in self.paired_with],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetSchema":
        return cls(
            name=payload["name"],
            categorical=tuple(FieldSpec.from_dict(f)
                              for f in payload["categorical"]),
            sequential=tuple(FieldSpec.from_dict(f)
                             for f in payload["sequential"]),
            max_seq_len=int(payload["max_seq_len"]),
            paired_with=tuple(int(i) for i in payload["paired_with"]),
        )

    def categorical_index(self, name: str) -> int:
        for i, spec in enumerate(self.categorical):
            if spec.name == name:
                return i
        raise KeyError(f"no categorical field named {name!r}")

    def sequential_index(self, name: str) -> int:
        for j, spec in enumerate(self.sequential):
            if spec.name == name:
                return j
        raise KeyError(f"no sequential field named {name!r}")
