"""Dataset containers and mini-batch iteration."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.timers import phase
from .schema import DatasetSchema

__all__ = ["CTRDataset", "Batch", "DataLoader"]


@dataclass
class Batch:
    """One mini-batch of CTR samples.

    Attributes:
        categorical: ``(B, I)`` int64 ids, one column per categorical field.
        sequences: ``(B, J, L)`` int64 ids, 0-padded at the front.
        mask: ``(B, L)`` bool validity mask shared by all J sequences.
        labels: ``(B,)`` float click labels in {0, 1}.
    """

    categorical: np.ndarray
    sequences: np.ndarray
    mask: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return self.labels.shape[0]


@dataclass
class CTRDataset:
    """A full split (train/validation/test) in array form."""

    schema: DatasetSchema
    categorical: np.ndarray
    sequences: np.ndarray
    mask: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        n = self.labels.shape[0]
        if self.categorical.shape != (n, self.schema.num_categorical):
            raise ValueError(f"categorical shape {self.categorical.shape} "
                             f"inconsistent with {n} samples")
        expected_seq = (n, self.schema.num_sequential, self.schema.max_seq_len)
        if self.sequences.shape != expected_seq:
            raise ValueError(f"sequences shape {self.sequences.shape} != {expected_seq}")
        if self.mask.shape != (n, self.schema.max_seq_len):
            raise ValueError(f"mask shape {self.mask.shape} inconsistent")

    def __len__(self) -> int:
        return self.labels.shape[0]

    def subset(self, indices: np.ndarray) -> "CTRDataset":
        """A new dataset restricted to ``indices`` (used for down-sampling)."""
        return CTRDataset(
            schema=self.schema,
            categorical=self.categorical[indices],
            sequences=self.sequences[indices],
            mask=self.mask[indices],
            labels=self.labels[indices],
        )

    def batch(self, indices: np.ndarray) -> Batch:
        return Batch(
            categorical=self.categorical[indices],
            sequences=self.sequences[indices],
            mask=self.mask[indices],
            labels=self.labels[indices],
        )

    def as_single_batch(self) -> Batch:
        return self.batch(np.arange(len(self)))


class DataLoader:
    """Shuffling mini-batch iterator over a :class:`CTRDataset`.

    The paper fixes batch size 128; the loader keeps the final short batch so
    every sample is seen each epoch.
    """

    def __init__(self, dataset: CTRDataset, batch_size: int = 128,
                 shuffle: bool = True, rng: np.random.Generator | None = None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        yield from self.iter_batches()

    def iter_batches(self, skip: int = 0):
        """Iterate the epoch, optionally skipping the first ``skip`` batches.

        The permutation is drawn exactly as a full epoch would draw it, and
        skipped batches are never materialised — this is how a resumed run
        replays a partially completed epoch bit-identically: restore the
        loader RNG to its epoch-start state and skip the batches already
        trained on.
        """
        if skip < 0:
            raise ValueError("skip must be >= 0")
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        # Jump straight to the first unskipped batch instead of re-slicing
        # (and discarding) every skipped chunk: resume cost is O(1) in the
        # skip count, and skip >= len(self) cleanly yields nothing.  With
        # drop_last the final short chunk is excluded by len(self) itself.
        for index in range(skip, len(self)):
            start = index * self.batch_size
            chunk = order[start:start + self.batch_size]
            with phase("data.batch"):
                batch = self.dataset.batch(chunk)
            yield batch
