"""Dataset statistics in the format of the paper's Table III."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .processing import ProcessedData

__all__ = ["DatasetStats", "compute_stats"]


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table III.

    ``num_instances`` follows the paper's convention of one positive plus one
    sampled negative per user and split (#Instances = 2 × #Users).
    """

    name: str
    num_users: int
    num_items: int
    num_instances: int
    num_features: int
    num_fields: int

    def as_row(self) -> tuple:
        return (self.name, self.num_users, self.num_items, self.num_instances,
                self.num_features, self.num_fields)


def compute_stats(data: ProcessedData) -> DatasetStats:
    """Compute Table III statistics from a processed dataset."""
    num_users = len(data.user_map)
    num_items = len(data.item_map)
    per_split = {name: len(split) for name, split in data.splits.items()}
    if len(set(per_split.values())) != 1:
        raise AssertionError(f"splits have unequal sizes: {per_split}")
    if per_split["train"] != 2 * num_users:
        raise AssertionError(
            "expected one positive and one negative per user per split")
    positives = int(np.sum(data.train.labels))
    if positives != num_users:
        raise AssertionError("expected exactly one positive per user")
    return DatasetStats(
        name=data.schema.name,
        num_users=num_users,
        num_items=num_items,
        num_instances=per_split["train"],
        num_features=data.schema.num_features,
        num_fields=data.schema.num_fields,
    )
