"""Training-set corruptions for the case studies of §VI-E.

* :func:`downsample` — the label-sparsity study (Table X): keep a random
  ``rate`` fraction of training samples, validation/test untouched.
* :func:`flip_labels` — the label-noise study (Table XI): randomly swap the
  labels of a ``rate`` fraction of training samples.
"""

from __future__ import annotations

import numpy as np

from .batching import CTRDataset

__all__ = ["downsample", "flip_labels"]


def downsample(dataset: CTRDataset, rate: float, seed: int = 0) -> CTRDataset:
    """Keep a uniformly random ``rate`` fraction of samples.

    ``rate=1.0`` returns the dataset unchanged (the paper's SR=100% row).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return dataset
    rng = np.random.default_rng(seed)
    n = len(dataset)
    keep = max(1, int(round(n * rate)))
    indices = rng.choice(n, size=keep, replace=False)
    indices.sort()
    return dataset.subset(indices)


def flip_labels(dataset: CTRDataset, rate: float, seed: int = 0) -> CTRDataset:
    """Swap labels on a random ``rate`` fraction of samples (0 keeps all)."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"noise rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return dataset
    rng = np.random.default_rng(seed)
    n = len(dataset)
    flip = rng.random(n) < rate
    labels = dataset.labels.copy()
    labels[flip] = 1.0 - labels[flip]
    return CTRDataset(
        schema=dataset.schema,
        categorical=dataset.categorical,
        sequences=dataset.sequences,
        mask=dataset.mask,
        labels=labels,
    )
