"""Training-set corruptions for the case studies of §VI-E, offline and
streaming.

Offline (Table X/XI — whole-split, stateful RNG):

* :func:`downsample` — the label-sparsity study (Table X): keep a random
  ``rate`` fraction of training samples, validation/test untouched.
* :func:`flip_labels` — the label-noise study (Table XI): randomly swap the
  labels of a ``rate`` fraction of training samples.

Streaming (window-invariant, stateless): the online-learning loop applies
corruption window by window as micro-batches arrive, and reproducibility
demands that the result not depend on how the stream was windowed.  The
``*_stream`` variants therefore derive each row's decision from a counter-mode
hash of ``(seed, global row index)`` instead of a sequential RNG stream:
corrupting windows ``[0, k)``, ``[k, n)`` separately is bit-identical to
corrupting ``[0, n)`` at once, for every cut point ``k``.
"""

from __future__ import annotations

import numpy as np

from .batching import CTRDataset

__all__ = ["downsample", "flip_labels",
           "row_uniform", "flip_labels_stream", "downsample_stream"]


def downsample(dataset: CTRDataset, rate: float, seed: int = 0) -> CTRDataset:
    """Keep a uniformly random ``rate`` fraction of samples.

    ``rate=1.0`` returns the dataset unchanged (the paper's SR=100% row).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return dataset
    rng = np.random.default_rng(seed)
    n = len(dataset)
    keep = max(1, int(round(n * rate)))
    indices = rng.choice(n, size=keep, replace=False)
    indices.sort()
    return dataset.subset(indices)


def flip_labels(dataset: CTRDataset, rate: float, seed: int = 0) -> CTRDataset:
    """Swap labels on a random ``rate`` fraction of samples (0 keeps all)."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"noise rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return dataset
    rng = np.random.default_rng(seed)
    n = len(dataset)
    flip = rng.random(n) < rate
    labels = dataset.labels.copy()
    labels[flip] = 1.0 - labels[flip]
    return CTRDataset(
        schema=dataset.schema,
        categorical=dataset.categorical,
        sequences=dataset.sequences,
        mask=dataset.mask,
        labels=labels,
    )


# ---------------------------------------------------------------------------
# Streaming (window-invariant) corruption
# ---------------------------------------------------------------------------
def row_uniform(seed: int, indices: np.ndarray) -> np.ndarray:
    """Deterministic uniform in [0, 1) per global row index, vectorised.

    Counter-mode construction: each value is a function of ``(seed, index)``
    alone — no sequential RNG state — so any windowing of an index range
    produces exactly the values the full range would.  The mixer is the
    SplitMix64 finaliser, whose avalanche behaviour makes consecutive indices
    statistically independent.
    """
    seed_mix = ((int(seed) * 0x9E3779B97F4A7C15) + 0x9E3779B97F4A7C15) \
        & 0xFFFFFFFFFFFFFFFF
    x = np.asarray(indices, dtype=np.uint64) + np.uint64(seed_mix)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    # Top 53 bits → float64 in [0, 1) with full mantissa resolution.
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def flip_labels_stream(dataset: CTRDataset, rate: float, seed: int = 0,
                       offset: int = 0) -> CTRDataset:
    """Window-invariant label noise: flip rows whose hash falls under ``rate``.

    ``offset`` is the global index of the window's first row in the stream.
    Applying this to consecutive windows (with their offsets) is bit-identical
    to applying it once to the concatenated stream.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"noise rate must be in [0, 1], got {rate}")
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if rate == 0.0:
        return dataset
    indices = np.arange(offset, offset + len(dataset), dtype=np.uint64)
    flip = row_uniform(seed, indices) < rate
    labels = dataset.labels.copy()
    labels[flip] = 1.0 - labels[flip]
    return CTRDataset(
        schema=dataset.schema,
        categorical=dataset.categorical,
        sequences=dataset.sequences,
        mask=dataset.mask,
        labels=labels,
    )


def downsample_stream(dataset: CTRDataset, rate: float, seed: int = 0,
                      offset: int = 0) -> CTRDataset:
    """Window-invariant down-sampling: keep rows whose hash falls under
    ``rate`` (expected — not exact — ``rate`` fraction, unlike the offline
    :func:`downsample`, because each row decides independently)."""
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if rate == 1.0:
        return dataset
    indices = np.arange(offset, offset + len(dataset), dtype=np.uint64)
    keep = np.flatnonzero(row_uniform(seed, indices) < rate)
    return dataset.subset(keep)
