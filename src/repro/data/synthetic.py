"""InterestWorld: a latent multi-interest behaviour simulator.

The public Amazon/Alipay datasets are unreachable offline, so this module
implements the closest synthetic equivalent whose generative process contains
exactly the structure MISS exploits (see DESIGN.md §2):

* **Latent interest topics.** The item universe is partitioned into topics;
  each item carries a category (a noisy indicator of its topic), a price band,
  and — in the Alipay preset — a seller.
* **Multi-interest users.** Every user samples 2–6 topics with Dirichlet
  affinities; long-time-span presets (Amazon) draw more topics per user than
  the short-span preset (Alipay), mirroring the paper's §VI-B observation that
  more diverse interests amplify MISS's advantage.
* **Closeness assumption.** Behaviours are emitted in interest *sessions*
  (geometric length), so same-interest behaviours tend to be adjacent on the
  time line yet different interests interleave — precisely the structure the
  horizontal convolutions and the distance-h augmentation rely on.
* **Label noise.** A configurable fraction of behaviours are miss-clicks on
  random items, and labels come from a noisy affinity threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InterestWorldConfig", "UserHistory", "InterestWorld"]


@dataclass(frozen=True)
class InterestWorldConfig:
    """Knobs of the generative process.

    The defaults are the Amazon-like regime; :mod:`repro.data.catalogs`
    derives the three named presets from this.
    """

    name: str = "interest-world"
    num_users: int = 800
    num_items: int = 600
    num_topics: int = 24
    num_categories: int = 12
    num_sellers: int = 0            # > 0 enables the seller field (Alipay)
    interests_per_user: tuple[int, int] = (2, 6)
    history_length: tuple[int, int] = (12, 36)
    session_mean_length: float = 3.0
    # Interest interleaving (paper Fig. 2): at a session boundary the user
    # returns to the previous-but-one interest with ``interleave_prob``
    # (A B A B ... patterns → long-range same-interest dependencies), stays
    # on the same interest with ``continue_prob``, and otherwise samples a
    # fresh interest by affinity.
    interleave_prob: float = 0.4
    continue_prob: float = 0.15
    missclick_rate: float = 0.05
    popularity_exponent: float = 1.0  # Zipf exponent of within-topic popularity
    category_noise: float = 0.1     # prob. an item's category is off-topic
    min_interactions: int = 5       # paper's frequency filter threshold
    seed: int = 0

    def __post_init__(self):
        if self.num_topics > self.num_items:
            raise ValueError("need at least one item per topic")
        if self.num_categories > self.num_topics:
            raise ValueError("categories are coarser than topics by design")
        lo, hi = self.interests_per_user
        if not 1 <= lo <= hi <= self.num_topics:
            raise ValueError(f"invalid interests_per_user range ({lo}, {hi})")
        lo, hi = self.history_length
        if not 4 <= lo <= hi:
            raise ValueError("history_length must allow the leave-last-3 split")


@dataclass
class UserHistory:
    """One user's chronologically ordered interactions.

    Attributes:
        user_id: Raw user id (0-based, before vocabulary remapping).
        items: Interacted item ids, oldest first.
        topics: The latent topic that generated each behaviour (diagnostics
            only — models never see this).
        interest_topics: The user's sampled interest set.
        affinities: Dirichlet weights over ``interest_topics``.
    """

    user_id: int
    items: np.ndarray
    topics: np.ndarray
    interest_topics: np.ndarray
    affinities: np.ndarray


class InterestWorld:
    """A sampled world: item catalogue + per-user behaviour histories."""

    def __init__(self, config: InterestWorldConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._rng = rng
        self._build_catalogue(rng)
        self._build_users(rng)

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def _build_catalogue(self, rng: np.random.Generator) -> None:
        cfg = self.config
        # Partition items across topics, then give each topic a Zipf
        # popularity profile so that frequency filtering has bite.
        self.item_topic = rng.integers(0, cfg.num_topics, size=cfg.num_items)
        # Guarantee every topic owns at least one item.
        for topic in range(cfg.num_topics):
            if not np.any(self.item_topic == topic):
                self.item_topic[rng.integers(cfg.num_items)] = topic
        # Topic -> category mapping is many-to-one (categories are coarse).
        topic_category = rng.integers(0, cfg.num_categories, size=cfg.num_topics)
        self.item_category = topic_category[self.item_topic].copy()
        noisy = rng.random(cfg.num_items) < cfg.category_noise
        self.item_category[noisy] = rng.integers(0, cfg.num_categories, size=noisy.sum())
        if cfg.num_sellers > 0:
            # Sellers specialise: each seller leans toward one topic.
            seller_topic = rng.integers(0, cfg.num_topics, size=cfg.num_sellers)
            self.item_seller = np.empty(cfg.num_items, dtype=np.int64)
            for i in range(cfg.num_items):
                matching = np.flatnonzero(seller_topic == self.item_topic[i])
                if matching.size and rng.random() < 0.8:
                    self.item_seller[i] = rng.choice(matching)
                else:
                    self.item_seller[i] = rng.integers(cfg.num_sellers)
        else:
            self.item_seller = None
        # Per-topic item lists with within-topic popularity weights.
        self.topic_items: list[np.ndarray] = []
        self.topic_weights: list[np.ndarray] = []
        for topic in range(cfg.num_topics):
            items = np.flatnonzero(self.item_topic == topic)
            ranks = np.arange(1, items.size + 1, dtype=np.float64)
            weights = ranks ** -cfg.popularity_exponent  # Zipf popularity
            self.topic_items.append(items)
            self.topic_weights.append(weights / weights.sum())

    # ------------------------------------------------------------------
    # Users
    # ------------------------------------------------------------------
    def _sample_history(self, rng: np.random.Generator, length: int,
                        interest_topics: np.ndarray, affinities: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        items = np.empty(length, dtype=np.int64)
        topics = np.empty(length, dtype=np.int64)
        position = 0
        previous_topic: int | None = None
        older_topic: int | None = None
        while position < length:
            draw = rng.random()
            if older_topic is not None and draw < cfg.interleave_prob:
                topic = older_topic  # return to the interleaved interest
            elif previous_topic is not None and draw < (cfg.interleave_prob
                                                        + cfg.continue_prob):
                topic = previous_topic
            else:
                topic = rng.choice(interest_topics, p=affinities)
            if topic != previous_topic:
                older_topic = previous_topic
            previous_topic = topic
            session = 1 + rng.geometric(1.0 / cfg.session_mean_length)
            session = min(session, length - position)
            pool = self.topic_items[topic]
            weights = self.topic_weights[topic]
            for _ in range(session):
                if rng.random() < cfg.missclick_rate:
                    items[position] = rng.integers(cfg.num_items)
                    topics[position] = -1  # noise marker
                else:
                    items[position] = rng.choice(pool, p=weights)
                    topics[position] = topic
                position += 1
        return items, topics

    def _build_users(self, rng: np.random.Generator) -> None:
        cfg = self.config
        lo, hi = cfg.interests_per_user
        len_lo, len_hi = cfg.history_length
        self.users: list[UserHistory] = []
        for user_id in range(cfg.num_users):
            k = int(rng.integers(lo, hi + 1))
            interest_topics = rng.choice(cfg.num_topics, size=k, replace=False)
            affinities = rng.dirichlet(np.full(k, 2.0))
            length = int(rng.integers(len_lo, len_hi + 1))
            items, topics = self._sample_history(rng, length, interest_topics, affinities)
            self.users.append(UserHistory(
                user_id=user_id, items=items, topics=topics,
                interest_topics=interest_topics, affinities=affinities))

    # ------------------------------------------------------------------
    # Negative sampling support
    # ------------------------------------------------------------------
    def sample_negative(self, rng: np.random.Generator, user: UserHistory) -> int:
        """A random item the user never interacted with (paper §VI-A2)."""
        interacted = set(user.items.tolist())
        for _ in range(100):
            candidate = int(rng.integers(self.config.num_items))
            if candidate not in interacted:
                return candidate
        raise RuntimeError("could not sample a non-interacted item; "
                           "item universe too small for this user")

    def affinity(self, user: UserHistory, item: int) -> float:
        """The user's latent affinity for an item's topic (diagnostics)."""
        topic = self.item_topic[item]
        matches = user.interest_topics == topic
        return float(user.affinities[matches].sum()) if matches.any() else 0.0
