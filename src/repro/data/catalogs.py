"""Named dataset presets mirroring the paper's three benchmarks (Table III).

The real datasets are offline-unreachable; each preset configures the
InterestWorld simulator so the *relative* properties the paper attributes to
each dataset survive the substitution:

* **amazon-cds** — smallest; long time span, so users accumulate many
  distinct interests; 5 fields; frequency threshold 5.
* **amazon-books** — same regime, roughly twice the size; threshold 10.
* **alipay** — largest; six-month span, so fewer interests per user (the
  paper observes smaller MISS gains here); 7 fields (adds seller id and a
  seller history); threshold 10.

``scale`` multiplies the user/item counts so tests run on tiny worlds while
examples and benchmarks can use larger ones.
"""

from __future__ import annotations

from .processing import ProcessedData, build_ctr_data
from .synthetic import InterestWorld, InterestWorldConfig

__all__ = ["DATASET_NAMES", "make_config", "load_dataset"]

DATASET_NAMES = ("amazon-cds", "amazon-books", "alipay")


def make_config(name: str, scale: float = 1.0, seed: int = 0) -> InterestWorldConfig:
    """Build the InterestWorld configuration for a named preset."""
    if scale <= 0:
        raise ValueError("scale must be positive")

    def scaled(base: int, minimum: int) -> int:
        return max(minimum, int(round(base * scale)))

    if name == "amazon-cds":
        return InterestWorldConfig(
            name=name,
            num_users=scaled(750, 40),
            num_items=scaled(1400, 80),
            num_topics=24,
            num_categories=8,
            num_sellers=0,
            interests_per_user=(3, 6),
            history_length=(14, 40),
            session_mean_length=3.0,
            missclick_rate=0.05,
            popularity_exponent=1.2,
            category_noise=0.25,
            min_interactions=5,
            seed=seed,
        )
    if name == "amazon-books":
        return InterestWorldConfig(
            name=name,
            num_users=scaled(1580, 60),
            num_items=scaled(1400, 120),
            num_topics=32,
            num_categories=10,
            num_sellers=0,
            interests_per_user=(3, 6),
            history_length=(14, 40),
            session_mean_length=3.0,
            missclick_rate=0.05,
            popularity_exponent=1.2,
            category_noise=0.25,
            min_interactions=10,
            seed=seed,
        )
    if name == "alipay":
        return InterestWorldConfig(
            name=name,
            num_users=scaled(3260, 80),
            num_items=scaled(1800, 120),
            num_topics=40,
            num_categories=12,
            num_sellers=30,
            interests_per_user=(1, 3),
            history_length=(12, 28),
            session_mean_length=4.0,
            missclick_rate=0.05,
            popularity_exponent=1.2,
            category_noise=0.25,
            min_interactions=10,
            seed=seed,
        )
    raise KeyError(f"unknown dataset preset {name!r}; choose from {DATASET_NAMES}")


def load_dataset(name: str, scale: float = 1.0, seed: int = 0,
                 max_seq_len: int = 20, cache_dir=None,
                 registry=None) -> ProcessedData:
    """Generate a preset world and run the full processing pipeline.

    With ``cache_dir`` set, the processed splits are served from the on-disk
    preprocessing cache (see :mod:`repro.data.pipeline.cache`) keyed by the
    raw-world/config/processing digests, so repeated runs skip the per-user
    Python pipeline.  ``registry`` (a :class:`~repro.obs.MetricRegistry`)
    receives ``pipeline.cache.hit``/``.miss`` counters when provided.
    """
    config = make_config(name, scale=scale, seed=seed)
    world = InterestWorld(config)
    if cache_dir is None:
        return build_ctr_data(world, max_seq_len=max_seq_len, seed=seed + 1)
    from .pipeline.cache import cached_build_ctr_data

    return cached_build_ctr_data(world, max_seq_len=max_seq_len,
                                 seed=seed + 1, cache_dir=cache_dir,
                                 registry=registry)
