"""Diagnostics for simulated worlds: the structure MISS relies on, measured.

These utilities quantify the properties DESIGN.md claims the simulator has —
temporal closeness of same-interest behaviours, interest interleaving and
recurrence, item-frequency sparsity — so a downstream user can verify (or
re-tune) a world before running experiments on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .synthetic import InterestWorld

__all__ = ["WorldDiagnostics", "diagnose_world", "topic_adjacency_curve"]


@dataclass(frozen=True)
class WorldDiagnostics:
    """Summary statistics of one sampled InterestWorld.

    Attributes:
        closeness: P(same latent topic | adjacent behaviours) — the paper's
            closeness assumption; should be far above ``1/topics_per_user``.
        recurrence: P(a new session's topic appeared within the previous 8
            behaviours) — the long-range dependency exploited by distance-h
            augmentation.
        mean_history_length: Average behaviours per user.
        mean_interests: Average latent interests per user.
        missclick_rate: Fraction of behaviours marked as noise.
        item_frequency_median: Median occurrences per interacted item (label
            sparsity: the paper's datasets sit in the single digits).
        item_frequency_p90: 90th percentile of the same distribution.
    """

    closeness: float
    recurrence: float
    mean_history_length: float
    mean_interests: float
    missclick_rate: float
    item_frequency_median: float
    item_frequency_p90: float


def topic_adjacency_curve(world: InterestWorld, max_lag: int = 6) -> np.ndarray:
    """P(same topic at distance h) for h = 1..max_lag.

    This is the empirical footprint of the closeness assumption as a function
    of the augmentation distance: MISS's ``H`` should be chosen where this
    curve is still clearly above the chance level.
    """
    if max_lag < 1:
        raise ValueError("max_lag must be >= 1")
    hits = np.zeros(max_lag)
    totals = np.zeros(max_lag)
    for user in world.users:
        topics = user.topics
        real = topics >= 0
        for lag in range(1, max_lag + 1):
            if topics.size <= lag:
                continue
            valid = real[lag:] & real[:-lag]
            hits[lag - 1] += int((topics[lag:] == topics[:-lag])[valid].sum())
            totals[lag - 1] += int(valid.sum())
    return hits / np.maximum(totals, 1)


def diagnose_world(world: InterestWorld, recurrence_window: int = 8
                   ) -> WorldDiagnostics:
    """Compute :class:`WorldDiagnostics` for a sampled world."""
    same = total = 0
    recur = switches = 0
    noise = behaviours = 0
    counts = np.zeros(world.config.num_items, dtype=np.int64)
    lengths, interests = [], []

    for user in world.users:
        topics = user.topics
        lengths.append(topics.size)
        interests.append(user.interest_topics.size)
        np.add.at(counts, user.items, 1)
        noise += int((topics == -1).sum())
        behaviours += topics.size
        real = topics >= 0
        valid_adjacent = real[1:] & real[:-1]
        same += int((topics[1:] == topics[:-1])[valid_adjacent].sum())
        total += int(valid_adjacent.sum())
        for i in range(1, topics.size):
            if real[i] and real[i - 1] and topics[i] != topics[i - 1]:
                switches += 1
                window = topics[max(0, i - recurrence_window):i - 1]
                if topics[i] in window:
                    recur += 1

    interacted = counts[counts > 0]
    return WorldDiagnostics(
        closeness=same / max(total, 1),
        recurrence=recur / max(switches, 1),
        mean_history_length=float(np.mean(lengths)),
        mean_interests=float(np.mean(interests)),
        missclick_rate=noise / max(behaviours, 1),
        item_frequency_median=float(np.median(interacted)),
        item_frequency_p90=float(np.percentile(interacted, 90)),
    )
