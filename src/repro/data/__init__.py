"""Data substrate: synthetic multi-interest worlds and the CTR pipeline."""

from .analysis import WorldDiagnostics, diagnose_world, topic_adjacency_curve
from .batching import Batch, CTRDataset, DataLoader
from .catalogs import DATASET_NAMES, load_dataset, make_config
from .corruption import downsample, flip_labels
from .pipeline import (
    PrefetchLoader,
    ShardCorruptError,
    ShardedCTRDataset,
    cached_build_ctr_data,
    write_shards,
)
from .processing import ProcessedData, build_ctr_data
from .schema import DatasetSchema, FieldSpec
from .stats import DatasetStats, compute_stats
from .synthetic import InterestWorld, InterestWorldConfig, UserHistory

__all__ = [
    "Batch", "CTRDataset", "DataLoader",
    "WorldDiagnostics", "diagnose_world", "topic_adjacency_curve",
    "DATASET_NAMES", "load_dataset", "make_config",
    "downsample", "flip_labels",
    "PrefetchLoader", "ShardCorruptError", "ShardedCTRDataset",
    "cached_build_ctr_data", "write_shards",
    "ProcessedData", "build_ctr_data",
    "DatasetSchema", "FieldSpec",
    "DatasetStats", "compute_stats",
    "InterestWorld", "InterestWorldConfig", "UserHistory",
]
