"""From raw InterestWorld histories to model-ready CTR splits.

Implements the paper's §VI-A2 pipeline:

1. frequency filtering — drop behaviours on items with fewer than
   ``min_interactions`` occurrences, then drop users whose filtered history
   is too short for the leave-last-3 split;
2. chronological ordering (the simulator already emits time order);
3. leave-last-3 splitting — history ``[1, L-3]`` predicts the ``(L-2)``-th
   item (train), ``[1, L-2]`` predicts the ``(L-1)``-th (validation), and
   ``[1, L-1]`` predicts the ``L``-th (test);
4. per-positive random negative sampling of a non-interacted item.

Ids are remapped to dense vocabularies with 0 reserved for padding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .batching import CTRDataset
from .schema import DatasetSchema, FieldSpec
from .synthetic import InterestWorld, UserHistory

__all__ = ["ProcessedData", "build_ctr_data"]


@dataclass
class ProcessedData:
    """The three splits plus the shared schema and id maps."""

    schema: DatasetSchema
    train: CTRDataset
    validation: CTRDataset
    test: CTRDataset
    item_map: dict[int, int]
    user_map: dict[int, int]

    @property
    def splits(self) -> dict[str, CTRDataset]:
        return {"train": self.train, "validation": self.validation, "test": self.test}


def _filter_world(world: InterestWorld) -> list[UserHistory]:
    """Apply the paper's frequency filter; keep users with >= 4 behaviours."""
    threshold = world.config.min_interactions
    counts = np.zeros(world.config.num_items, dtype=np.int64)
    for user in world.users:
        np.add.at(counts, user.items, 1)
    keep_item = counts >= threshold

    kept: list[UserHistory] = []
    for user in world.users:
        mask = keep_item[user.items]
        items = user.items[mask]
        topics = user.topics[mask]
        if items.size >= 4:  # room for history + train/val/test targets
            kept.append(UserHistory(
                user_id=user.user_id, items=items, topics=topics,
                interest_topics=user.interest_topics, affinities=user.affinities))
    return kept


def _remap(values: np.ndarray) -> dict[int, int]:
    """Dense id map starting at 1 (0 is padding)."""
    unique = np.unique(values)
    return {int(v): i + 1 for i, v in enumerate(unique)}


def build_ctr_data(world: InterestWorld, max_seq_len: int = 20,
                   seed: int = 0) -> ProcessedData:
    """Run the full pipeline and return train/validation/test datasets."""
    cfg = world.config
    rng = np.random.default_rng(seed)
    users = _filter_world(world)
    if not users:
        raise ValueError("frequency filtering removed every user; "
                         "lower min_interactions or grow the world")

    all_items = np.concatenate([u.items for u in users])
    item_map = _remap(all_items)
    user_map = {u.user_id: i + 1 for i, u in enumerate(users)}

    categories = np.unique(world.item_category[list(item_map)])
    category_map = {int(c): i + 1 for i, c in enumerate(categories)}
    has_seller = world.item_seller is not None
    if has_seller:
        sellers = np.unique(world.item_seller[list(item_map)])
        seller_map = {int(s): i + 1 for i, s in enumerate(sellers)}

    def item_id(raw: int) -> int:
        return item_map[raw]

    def cate_id(raw_item: int) -> int:
        return category_map[int(world.item_category[raw_item])]

    def seller_id(raw_item: int) -> int:
        return seller_map[int(world.item_seller[raw_item])]

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    num_items = len(item_map) + 1
    num_categories = len(category_map) + 1
    categorical = [
        FieldSpec("user", "categorical", len(user_map) + 1),
        FieldSpec("item", "categorical", num_items),
        FieldSpec("category", "categorical", num_categories),
    ]
    sequential = [
        FieldSpec("item_seq", "sequential", num_items),
        FieldSpec("cate_seq", "sequential", num_categories),
    ]
    paired = [1, 2]
    if has_seller:
        categorical.append(FieldSpec("seller", "categorical", len(seller_map) + 1))
        sequential.append(FieldSpec("seller_seq", "sequential", len(seller_map) + 1))
        paired.append(3)
    schema = DatasetSchema(
        name=cfg.name,
        categorical=tuple(categorical),
        sequential=tuple(sequential),
        max_seq_len=max_seq_len,
        paired_with=tuple(paired),
    )

    # ------------------------------------------------------------------
    # Sample construction
    # ------------------------------------------------------------------
    def encode_history(raw_items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pad/truncate to L; newest behaviours keep the rightmost slots."""
        raw_items = raw_items[-max_seq_len:]
        length = raw_items.size
        seqs = np.zeros((schema.num_sequential, max_seq_len), dtype=np.int64)
        mask = np.zeros(max_seq_len, dtype=bool)
        offset = max_seq_len - length
        for pos, raw in enumerate(raw_items):
            col = offset + pos
            seqs[0, col] = item_id(int(raw))
            seqs[1, col] = cate_id(int(raw))
            if has_seller:
                seqs[2, col] = seller_id(int(raw))
            mask[col] = True
        return seqs, mask

    def candidate_row(user: UserHistory, raw_item: int) -> list[int]:
        row = [user_map[user.user_id], item_id(raw_item), cate_id(raw_item)]
        if has_seller:
            row.append(seller_id(raw_item))
        return row

    interacted_raw = {u.user_id: set(u.items.tolist()) for u in users}
    valid_raw_items = list(item_map)

    def sample_negative(user: UserHistory) -> int:
        seen = interacted_raw[user.user_id]
        for _ in range(200):
            raw = valid_raw_items[int(rng.integers(len(valid_raw_items)))]
            if raw not in seen:
                return raw
        raise RuntimeError("negative sampling failed: user interacted with "
                           "almost the whole catalogue")

    split_rows: dict[str, dict[str, list]] = {
        name: {"cat": [], "seq": [], "mask": [], "label": []}
        for name in ("train", "validation", "test")
    }

    for user in users:
        history = user.items
        # (split_name, history cut, positive target index)
        cuts = (("train", history[:-3], int(history[-3])),
                ("validation", history[:-2], int(history[-2])),
                ("test", history[:-1], int(history[-1])))
        for split_name, hist, positive in cuts:
            seqs, mask = encode_history(hist)
            negative = sample_negative(user)
            for raw_candidate, label in ((positive, 1.0), (negative, 0.0)):
                rows = split_rows[split_name]
                rows["cat"].append(candidate_row(user, raw_candidate))
                rows["seq"].append(seqs)
                rows["mask"].append(mask)
                rows["label"].append(label)

    def finalize(rows: dict[str, list]) -> CTRDataset:
        return CTRDataset(
            schema=schema,
            categorical=np.asarray(rows["cat"], dtype=np.int64),
            sequences=np.stack(rows["seq"]).astype(np.int64),
            mask=np.stack(rows["mask"]),
            labels=np.asarray(rows["label"], dtype=np.float64),
        )

    return ProcessedData(
        schema=schema,
        train=finalize(split_rows["train"]),
        validation=finalize(split_rows["validation"]),
        test=finalize(split_rows["test"]),
        item_map=item_map,
        user_map=user_map,
    )
