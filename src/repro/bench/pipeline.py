"""Data-pipeline benchmark: sequential vs. prefetching batch assembly.

Times one full shuffled epoch over a sharded on-disk training set, for the
sequential loader (``num_workers=0`` — per-batch gather through a small LRU
shard cache, exactly what ``DataLoader`` does over a ``ShardedCTRDataset``)
and for ``PrefetchLoader`` at several worker counts.  The prefetch
configurations win by *doing less work*, not just overlapping it: a worker
gathers a whole window of ``prefetch_depth`` batches per shard visit, so
each shard is decompressed once per window instead of once per batch —
under shuffled access the sequential loader's LRU thrashes and reloads
nearly every shard for every batch.

The train split of a simulated dataset is tiled up to ``rows`` rows so the
shard set decisively exceeds any cache; rows/sec numbers are therefore
about batch *assembly*, deliberately excluding model compute.  The report
is written to ``BENCH_pipeline.json`` (same conventions as
``BENCH_ops.json``: best-of-N timing, atomic JSON publish).
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from ..data.batching import CTRDataset, DataLoader
from ..data.catalogs import load_dataset
from ..data.pipeline import PrefetchLoader, ShardedCTRDataset, write_shards
from ..resilience.atomic import atomic_write_json

__all__ = ["run_pipeline_bench", "render_pipeline_report"]

#: LRU capacity (in shards) used for every timed configuration.
CACHE_SHARDS = 4


def _tile_dataset(dataset: CTRDataset, rows: int) -> CTRDataset:
    """Repeat ``dataset`` whole until it holds at least ``rows`` rows."""
    reps = max(1, -(-rows // len(dataset)))
    if reps == 1:
        return dataset
    return CTRDataset(
        schema=dataset.schema,
        categorical=np.tile(dataset.categorical, (reps, 1)),
        sequences=np.tile(dataset.sequences, (reps, 1, 1)),
        mask=np.tile(dataset.mask, (reps, 1)),
        labels=np.tile(dataset.labels, reps),
    )


def _time_epoch(make_loader, seed: int, repeats: int) -> float:
    """Best-of-``repeats`` wall time (s) for one full epoch of batches."""
    best = float("inf")
    for rep in range(repeats):
        loader = make_loader(np.random.default_rng(seed + rep))
        start = time.perf_counter()
        consumed = 0
        for batch in loader.iter_batches():
            consumed += len(batch)
        elapsed = time.perf_counter() - start
        if consumed != len(loader.dataset):
            raise RuntimeError(
                f"epoch consumed {consumed} rows, expected "
                f"{len(loader.dataset)}"
            )
        best = min(best, elapsed)
    return best


def run_pipeline_bench(
    dataset: str = "amazon-cds",
    scale: float = 0.4,
    seed: int = 0,
    rows: int = 16384,
    batch_size: int = 256,
    shard_size: int = 512,
    prefetch_depth: int = 8,
    worker_counts: tuple = (1, 2, 4),
    repeats: int = 3,
    out_path: str | None = "BENCH_pipeline.json",
) -> dict:
    """Run the benchmark and return (and optionally write) the report."""
    data = load_dataset(dataset, scale=scale, seed=seed)
    train = _tile_dataset(data.train, rows)
    with tempfile.TemporaryDirectory(prefix="bench-pipeline-") as tmp:
        write_shards(train, tmp, shard_size=shard_size, compressed=True)
        sharded = ShardedCTRDataset(tmp, cache_shards=CACHE_SHARDS)

        def sequential(rng):
            return DataLoader(
                sharded,
                batch_size=batch_size,
                shuffle=True,
                rng=rng,
            )

        def prefetch(workers):
            def make(rng):
                return PrefetchLoader(
                    sharded,
                    batch_size=batch_size,
                    shuffle=True,
                    rng=rng,
                    num_workers=workers,
                    prefetch_depth=prefetch_depth,
                )

            return make

        def in_memory(rng):
            return DataLoader(
                train,
                batch_size=batch_size,
                shuffle=True,
                rng=rng,
            )

        results = []
        n = len(train)
        seq_s = _time_epoch(sequential, seed, repeats)
        results.append(
            {
                "mode": "sequential",
                "num_workers": 0,
                "epoch_s": seq_s,
                "rows_per_s": n / seq_s,
                "speedup_vs_sequential": 1.0,
            }
        )
        for workers in worker_counts:
            epoch_s = _time_epoch(prefetch(workers), seed, repeats)
            results.append(
                {
                    "mode": "prefetch",
                    "num_workers": int(workers),
                    "epoch_s": epoch_s,
                    "rows_per_s": n / epoch_s,
                    "speedup_vs_sequential": seq_s / epoch_s,
                }
            )
        mem_s = _time_epoch(in_memory, seed, repeats)
        results.append(
            {
                "mode": "in_memory_reference",
                "num_workers": 0,
                "epoch_s": mem_s,
                "rows_per_s": n / mem_s,
                "speedup_vs_sequential": seq_s / mem_s,
            }
        )
        payload = {
            "benchmark": "pipeline",
            "config": {
                "dataset": dataset,
                "scale": scale,
                "seed": seed,
                "rows": n,
                "batch_size": batch_size,
                "shard_size": shard_size,
                "num_shards": sharded.num_shards,
                "prefetch_depth": prefetch_depth,
                "cache_shards": CACHE_SHARDS,
                "repeats": repeats,
            },
            "results": results,
        }
    if out_path:
        atomic_write_json(out_path, payload)
    return payload


def render_pipeline_report(payload: dict) -> str:
    """Console table for a ``run_pipeline_bench`` payload."""
    cfg = payload["config"]
    lines = [
        f"pipeline bench: {cfg['rows']} rows, "
        f"{cfg['num_shards']} shards x {cfg['shard_size']}, "
        f"batch {cfg['batch_size']}, depth {cfg['prefetch_depth']}",
        f"{'mode':<22}{'workers':>8}{'epoch_s':>10}"
        f"{'rows/s':>12}{'speedup':>9}",
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['mode']:<22}{row['num_workers']:>8}"
            f"{row['epoch_s']:>10.3f}{row['rows_per_s']:>12.0f}"
            f"{row['speedup_vs_sequential']:>8.2f}x"
        )
    return "\n".join(lines)
