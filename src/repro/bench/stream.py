"""Streaming-loop benchmark: throughput plus drift-detection latency.

Runs the full online-learning loop (``repro.streaming``) against three
scripted non-stationarity scenarios and reports, per scenario:

* **throughput** — windows/sec and rows/sec for the whole loop (serve
  through the live router + drift detection + incremental training +
  promotion control).  Hardware-dependent; reported, never regression-gated.
* **detection latency** — windows from the scenario's onset to the first
  drift alarm (``windows_to_detect``), which detector raised it, and how
  many alarms fired *before* onset (``false_alarms``).  Fully deterministic
  for a fixed seed, so ``scripts/check_bench.py`` can band it tightly.

Scenarios
---------
``interest_drift``
    A large fraction of users resample their interest topics at the onset
    window; the associations the offline model learned stop predicting.
``label_burst``
    The label flip rate jumps from the base 2% to 40% for a six-window
    burst (window-invariant corruption, so detection cannot key on framing).
``cold_users``
    Half the user vocabulary is held out and then arrives rapidly with
    near-empty histories from the onset window on.

One offline model is trained once and published once; each scenario
re-warm-starts the incremental trainer from that artifact and gets a fresh
registry + router, so scenarios are independent and order-insensitive.
The report is written to ``BENCH_stream.json`` (same conventions as the
other bench reports: deterministic seeds, atomic JSON publish).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from ..data.processing import build_ctr_data
from ..data.synthetic import InterestWorld, InterestWorldConfig
from ..models import create_model
from ..resilience.atomic import atomic_write_json
from ..serving.artifact import export_artifact
from ..serving.batcher import ScoringEngine
from ..serving.registry import ModelRegistry
from ..serving.router import ModelRouter
from ..serving.session import InferenceSession
from ..streaming import (
    DriftMonitor,
    IncrementalConfig,
    IncrementalTrainer,
    OnlineLoop,
    PromotionConfig,
    PromotionController,
    StreamConfig,
    ClickStream,
)
from ..training.trainer import TrainConfig, Trainer

__all__ = ["run_stream_bench", "render_stream_report", "SCENARIOS"]

#: Window at which every scenario's disturbance begins.
ONSET_WINDOW = 10

#: Scenario name -> StreamConfig overrides (beyond the shared shape).
SCENARIOS: dict[str, dict] = {
    "interest_drift": {
        "drift_window": ONSET_WINDOW, "drift_fraction": 0.9,
        "noise_rate": 0.02,
    },
    "label_burst": {
        "noise_rate": 0.02, "noise_burst": (ONSET_WINDOW, ONSET_WINDOW + 6),
        "noise_burst_rate": 0.4,
    },
    "cold_users": {
        "cold_fraction": 0.5, "cold_start_window": ONSET_WINDOW,
        "cold_users_per_window": 12, "cold_bootstrap_len": 1,
        "cold_activity": 4.0, "noise_rate": 0.02,
    },
}


def _offline_bootstrap(tmp: Path, seed: int, epochs: int):
    """Train the offline model once; returns (world, processed, artifact)."""
    world = InterestWorld(InterestWorldConfig(
        num_users=120, num_items=160, num_topics=8, num_categories=4,
        min_interactions=3, seed=seed + 3))
    processed = build_ctr_data(world, max_seq_len=10, seed=seed + 4)
    model = create_model("DIN", processed.schema, seed=seed + 1)
    trainer = Trainer(TrainConfig(epochs=epochs, batch_size=128,
                                  seed=seed + 1))
    result = trainer.fit(model, processed.train, processed.validation)
    artifact = tmp / "artifact"
    export_artifact(model, artifact, model_name="DIN",
                    metadata={"dataset": processed.schema.name,
                              "val_auc": result.validation.auc})
    return world, processed, artifact


def _detection(result, start_window: int) -> dict:
    """Latency of the first alarm at/after onset; alarms before it are
    false positives, not negative latency."""
    first = None
    false_alarms = 0
    for signal_ in result.drift_signals:
        if signal_["window"] < start_window:
            false_alarms += 1
        elif first is None:
            first = signal_
    return {
        "detected": first is not None,
        "detection_window": first["window"] if first else None,
        "detector": first["detector"] if first else None,
        "windows_to_detect": (first["window"] - start_window
                              if first else None),
        "false_alarms": false_alarms,
    }


def _run_scenario(name: str, overrides: dict, world, processed, artifact,
                  tmp: Path, seed: int, windows: int, impressions: int
                  ) -> dict:
    stream_config = StreamConfig(
        num_windows=windows, impressions_per_window=impressions,
        seed=seed + 11, **overrides)
    stream = ClickStream(world, processed, stream_config)
    registry = ModelRegistry(tmp / name / "registry")
    version = registry.publish(artifact, promote=True)

    def factory(session):
        return ScoringEngine(session, max_batch_size=64, max_wait_ms=0.5,
                             num_workers=1, cache_size=0)

    router = ModelRouter(factory)
    router.deploy_primary(InferenceSession.load(registry.path(version)),
                          version)
    trainer = IncrementalTrainer.from_artifact(
        artifact, IncrementalConfig(learning_rate=5e-3, seed=seed),
        checkpoint_dir=tmp / name / "ckpt")
    controller = PromotionController(
        registry, router,
        PromotionConfig(export_every=0, recovery_windows=3,
                        shadow_windows=3, rollback_windows=3),
        export_dir=tmp / name / "exports", model_name="DIN")
    loop = OnlineLoop(stream, trainer, router, controller, DriftMonitor())
    start = time.perf_counter()
    try:
        result = loop.run()
    finally:
        router.close()
    elapsed = time.perf_counter() - start
    summary = result.summary()
    return {
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in overrides.items()},
        "start_window": ONSET_WINDOW,
        **_detection(result, ONSET_WINDOW),
        "windows": summary["windows"],
        "rows": summary["rows"],
        "elapsed_s": elapsed,
        "windows_per_s": summary["windows"] / elapsed,
        "rows_per_s": summary["rows"] / elapsed,
        "drift_signals": summary["drift_signals"],
        "promotions": summary["promotions"],
        "rollbacks": summary["rollbacks"],
        "dropped": summary["dropped"],
        "production_auc_mean": summary["production_auc_mean"],
        "final_production": summary["final_production"],
    }


def run_stream_bench(
    scenarios: tuple = tuple(SCENARIOS),
    seed: int = 0,
    windows: int = 26,
    impressions: int = 100,
    epochs: int = 10,
    out_path: str | None = "BENCH_stream.json",
) -> dict:
    """Run every scenario and return (and optionally write) the report."""
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; "
                         f"have {sorted(SCENARIOS)}")
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as raw_tmp:
        tmp = Path(raw_tmp)
        world, processed, artifact = _offline_bootstrap(tmp, seed, epochs)
        results = {
            name: _run_scenario(name, SCENARIOS[name], world, processed,
                                artifact, tmp, seed, windows, impressions)
            for name in scenarios
        }
    payload = {
        "benchmark": "stream",
        "config": {
            "seed": seed,
            "windows": windows,
            "impressions_per_window": impressions,
            "offline_epochs": epochs,
            "onset_window": ONSET_WINDOW,
        },
        "scenarios": results,
    }
    if out_path is not None:
        atomic_write_json(out_path, payload)
    return payload


def render_stream_report(payload: dict) -> str:
    lines = [f"{'scenario':<16}{'detect?':>8}{'latency':>9}"
             f"{'detector':>15}{'FP':>4}{'promo':>6}{'drop':>6}"
             f"{'win/s':>8}{'rows/s':>9}"]
    for name, row in payload["scenarios"].items():
        latency = (f"{row['windows_to_detect']}w"
                   if row["windows_to_detect"] is not None else "-")
        lines.append(
            f"{name:<16}{'yes' if row['detected'] else 'NO':>8}"
            f"{latency:>9}{row['detector'] or '-':>15}"
            f"{row['false_alarms']:>4}{row['promotions']:>6}"
            f"{row['dropped']:>6}{row['windows_per_s']:>8.2f}"
            f"{row['rows_per_s']:>9.0f}")
    lines.append(f"(onset at window {payload['config']['onset_window']}; "
                 f"latency = windows from onset to first alarm)")
    return "\n".join(lines)
