"""Benchmark harness: configs, cached cell runner, and table rendering."""

from .configs import (
    BENCH_EPOCHS,
    BENCH_SCALE,
    BENCH_SEEDS,
    DATASET_SCALES,
    bench_dataset,
    bench_miss_config,
    bench_seeds,
    bench_train_config,
)
from .distributed import render_distributed_report, run_distributed_bench
from .micro import KERNEL_NAMES, render_report, run_micro
from .pipeline import render_pipeline_report, run_pipeline_bench
from .runner import (
    CellResult,
    baseline_factory,
    miss_model_factory,
    run_cell,
    ssl_factory,
)
from .tables import render_metric_table, render_series

__all__ = [
    "BENCH_SCALE", "BENCH_SEEDS", "BENCH_EPOCHS", "DATASET_SCALES",
    "bench_dataset", "bench_miss_config", "bench_seeds", "bench_train_config",
    "CellResult", "run_cell", "baseline_factory", "miss_model_factory",
    "ssl_factory", "render_metric_table", "render_series",
    "KERNEL_NAMES", "run_micro", "render_report",
    "run_pipeline_bench", "render_pipeline_report",
    "run_distributed_bench", "render_distributed_report",
]
