"""Distributed-training benchmark: rows/sec scaling plus the bit-identity gate.

Times the full per-step protocol (forward/backward on every rank, gradient
pack, barrier, rank-0 fold/clip/step, parameter broadcast) at several
worker counts over an identical sharded training set, then runs the
determinism check the subsystem is named for: a 2-process run and its
single-process emulation must produce bitwise-identical step losses and
final weights (``max_param_divergence`` is required to be exactly 0.0 —
see ``scripts/check_bench.py``).

Where the speedup comes from — and does not.  This box (and CI) is a
single CPU core, so ranks timeshare: there is no parallel FLOP budget to
win.  The scaling lever is *partition cache locality*, the same lever the
pipeline bench measures: every process gets the same fixed LRU budget of
``cache_shards`` shards.  A single worker scanning all ``num_shards``
shards shuffled thrashes that LRU and pays a decompression per shard per
batch; two workers each own half the shards, the partitions fit their
caches, and decompression drops to one load per shard per run.  That is an
honest single-core throughput win (it is how the committed baseline was
produced), and on a multi-core machine the same harness additionally
overlaps rank compute.  The per-rank batch size is fixed, so worker counts
are weak scaling: the global batch is ``batch_size × num_procs``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from ..data.catalogs import load_dataset
from ..distributed import DistSpec, prepare_dist_data, run_distributed
from ..nn.backend import get_backend
from ..resilience.atomic import atomic_write_json
from .pipeline import _tile_dataset

__all__ = ["run_distributed_bench", "render_distributed_report"]

#: Per-process LRU budget (in shards) for every timed configuration — the
#: same fixed-budget rule the pipeline bench uses (its ``CACHE_SHARDS``).
CACHE_SHARDS = 4


def run_distributed_bench(
    dataset: str = "amazon-cds",
    scale: float = 0.4,
    seed: int = 0,
    rows: int = 8192,
    num_shards: int = 8,
    batch_size: int = 64,
    epochs: int = 2,
    proc_counts: tuple = (1, 2, 4),
    out_path: str | None = "BENCH_distributed.json",
) -> dict:
    """Run the benchmark and return (and optionally write) the report."""
    if 1 not in proc_counts:
        raise ValueError("proc_counts must include 1 (the scaling baseline)")
    data = load_dataset(dataset, scale=scale, seed=seed)
    train = _tile_dataset(data.train, rows)
    shard_size = -(-len(train) // num_shards)
    with tempfile.TemporaryDirectory(prefix="bench-dist-") as tmp:
        train_dir, val_dir = prepare_dist_data(
            train, data.validation, Path(tmp), shard_size=shard_size)

        def spec(world: int) -> DistSpec:
            return DistSpec(
                model_name="DIN", miss=None, model_seed=seed + 1,
                backend=get_backend().name,
                train_dir=str(train_dir), val_dir=str(val_dir),
                config=dict(epochs=epochs, batch_size=batch_size,
                            eval_batch_size=512, learning_rate=1e-2,
                            weight_decay=1e-5, patience=max(3, epochs),
                            grad_clip=10.0, seed=seed),
                world_size=world, cache_shards=CACHE_SHARDS,
                checkpoint_dir=None, checkpoint_every=None)

        results = []
        single_rows_per_s = None
        two_proc = None
        for world in proc_counts:
            outcome = run_distributed(spec(world))
            if world == 2:
                two_proc = outcome
            # Epoch wall time covers the step loop only (eval excluded);
            # best-of-epochs, so warm-cache steady state is what's scored.
            epoch_s = min(outcome.epoch_seconds)
            rows_per_epoch = outcome.steps_per_epoch * batch_size * world
            rows_per_s = rows_per_epoch / epoch_s
            if world == 1:
                single_rows_per_s = rows_per_s
            results.append({
                "num_procs": int(world),
                "epoch_s": epoch_s,
                "rows_per_epoch": int(rows_per_epoch),
                "rows_per_s": rows_per_s,
                "speedup_vs_single": rows_per_s / single_rows_per_s,
                "steps_per_epoch": outcome.steps_per_epoch,
                "failed_ranks": 0,
            })

        # The gate this subsystem exists for: the 2-process run must equal
        # its single-process emulation bit for bit — same fold tree, same
        # per-rank RNG streams, same optimizer — at the same global batch.
        if two_proc is None:
            two_proc = run_distributed(spec(2))
        emulated = run_distributed(spec(2), emulate=True)
        identical = emulated.step_losses == two_proc.step_losses
        divergence = max(
            float(np.max(np.abs(emulated.final_state[k]
                                - two_proc.final_state[k])))
            for k in emulated.final_state)
        payload = {
            "benchmark": "distributed",
            "config": {
                "dataset": dataset, "scale": scale, "seed": seed,
                "rows": len(train), "num_shards": num_shards,
                "shard_size": shard_size, "batch_size": batch_size,
                "epochs": epochs, "cache_shards": CACHE_SHARDS,
                "backend": get_backend().name,
            },
            "results": results,
            "bit_identity": {
                "world_size": 2,
                "steps": two_proc.steps,
                "loss_trajectory_identical": bool(identical),
                "max_param_divergence": divergence,
            },
        }
    if out_path:
        atomic_write_json(out_path, payload)
    return payload


def render_distributed_report(payload: dict) -> str:
    """Console table for a ``run_distributed_bench`` payload."""
    cfg = payload["config"]
    bit = payload["bit_identity"]
    lines = [
        f"distributed bench: {cfg['rows']} rows, "
        f"{cfg['num_shards']} shards x {cfg['shard_size']}, "
        f"batch {cfg['batch_size']}/rank, cache {cfg['cache_shards']} shards",
        f"{'procs':>6}{'epoch_s':>10}{'rows/s':>12}{'speedup':>9}"
        f"{'steps':>7}",
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['num_procs']:>6}{row['epoch_s']:>10.3f}"
            f"{row['rows_per_s']:>12.0f}"
            f"{row['speedup_vs_single']:>8.2f}x"
            f"{row['steps_per_epoch']:>7}")
    lines.append(
        f"bit-identity (2 procs vs emulation, {bit['steps']} steps): "
        f"losses {'identical' if bit['loss_trajectory_identical'] else 'DIVERGED'}, "
        f"max param divergence {bit['max_param_divergence']:g}")
    return "\n".join(lines)
