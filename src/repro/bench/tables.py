"""Plain-text table rendering in the layout of the paper's result tables."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_metric_table", "render_series"]


def render_metric_table(title: str, datasets: Sequence[str],
                        rows: Sequence[tuple[str, dict[str, tuple[float, float]]]],
                        highlight_best: bool = True) -> str:
    """Render rows of (model, {dataset: (AUC, Logloss)}) like Table IV.

    The best AUC per dataset column is marked with ``*`` when
    ``highlight_best`` is set (mirroring the paper's bold/star convention).
    """
    best_auc = {}
    if highlight_best:
        for dataset in datasets:
            best_auc[dataset] = max(metrics[dataset][0] for _, metrics in rows
                                    if dataset in metrics)

    name_width = max(len("Model"), max(len(name) for name, _ in rows))
    header_cells = [f"{'Model':<{name_width}}"]
    for dataset in datasets:
        header_cells.append(f"{dataset + ' AUC':>16}")
        header_cells.append(f"{dataset + ' Logloss':>20}")
    lines = [title, "=" * len(title), " | ".join(header_cells)]
    lines.append("-" * len(lines[-1]))

    for name, metrics in rows:
        cells = [f"{name:<{name_width}}"]
        for dataset in datasets:
            if dataset not in metrics:
                cells.append(f"{'-':>16}")
                cells.append(f"{'-':>20}")
                continue
            auc, logloss = metrics[dataset]
            star = "*" if highlight_best and auc == best_auc[dataset] else " "
            cells.append(f"{auc:>15.4f}{star}")
            cells.append(f"{logloss:>20.4f}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: dict[str, Sequence[float]], fmt: str = "{:.4f}"
                  ) -> str:
    """Render a figure's data as an aligned text table (one row per x)."""
    names = list(series)
    width = max(12, max(len(n) for n in names) + 2)
    lines = [title, "=" * len(title)]
    header = f"{x_label:<12}" + "".join(f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{str(x):<12}"
        for name in names:
            row += f"{fmt.format(series[name][i]):>{width}}"
        lines.append(row)
    return "\n".join(lines)
