"""Benchmark-harness configuration.

The paper's datasets have 10^5-10^6 users; the benchmark worlds are scaled to
laptop size while keeping the *relative* comparisons (who wins, by roughly
what factor).  Environment knobs:

* ``REPRO_BENCH_SCALE``  — multiplies every preset's user/item counts
  (default 1.0; 0.2 gives a <2-minute smoke run of the whole suite).
* ``REPRO_BENCH_SEEDS``  — repetitions per cell (default 2; the paper uses 5).
* ``REPRO_BENCH_EPOCHS`` — training epochs per run (default 20).
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..core.config import MISSConfig
from ..data.catalogs import load_dataset
from ..data.processing import ProcessedData
from ..training.trainer import TrainConfig

__all__ = [
    "BENCH_SCALE", "BENCH_SEEDS", "BENCH_EPOCHS", "DATASET_SCALES",
    "bench_seeds", "bench_train_config", "bench_miss_config", "bench_dataset",
]

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "2"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "12"))

# Per-dataset down-scaling on top of BENCH_SCALE: Alipay is the largest
# dataset in the paper; running it at 60% keeps the suite's wall-clock
# tractable while preserving its rank as the biggest world.
DATASET_SCALES = {"amazon-cds": 0.5, "amazon-books": 0.4, "alipay": 0.25}


def bench_seeds() -> list[int]:
    """The repetition seeds used for every cell of every table."""
    return list(range(BENCH_SEEDS))


def bench_train_config(seed: int) -> TrainConfig:
    """The shared training protocol (paper §VI-A5, adapted to world size)."""
    return TrainConfig(
        epochs=BENCH_EPOCHS,
        batch_size=128,
        learning_rate=1e-2,
        weight_decay=1e-5,
        patience=4,
        seed=seed,
    )


def bench_miss_config(seed: int, **overrides) -> MISSConfig:
    """The tuned MISS configuration used throughout the benchmarks.

    α1 = α2 = 0.5 sits inside the paper's search grid {0.05, 0.1, 0.5, 1, 5};
    M=3, N=2, H=3, τ=0.1 are the paper's tuned values.
    """
    defaults = dict(alpha_interest=0.5, alpha_feature=0.5, seed=seed + 101)
    defaults.update(overrides)
    return MISSConfig(**defaults)


@lru_cache(maxsize=32)
def bench_dataset(name: str, seed: int) -> ProcessedData:
    """Generate (and cache) one benchmark world per (dataset, seed)."""
    scale = BENCH_SCALE * DATASET_SCALES[name]
    return load_dataset(name, scale=scale, seed=seed)
