"""Benchmark cell runner with a persistent on-disk result cache.

Several tables share cells (Table V reuses the DIN/IPNN/FiGNN rows of
Table IV; Tables X and XI reuse the DIN and DIN-MISS baselines), so results
are cached under ``.bench_cache/`` keyed by the cell description plus the
harness settings.  Delete the directory (or set ``REPRO_BENCH_CACHE=0``) to
force re-runs; bump ``CACHE_VERSION`` when a change invalidates old numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.plugin import attach_miss
from ..data.processing import ProcessedData
from ..models.base import CTRModel
from ..models.registry import create_model
from ..ssl_baselines import attach_ssl_baseline
from ..training.experiment import run_experiment
from .configs import (
    BENCH_EPOCHS,
    BENCH_SCALE,
    BENCH_SEEDS,
    bench_dataset,
    bench_miss_config,
    bench_seeds,
    bench_train_config,
)

__all__ = ["CellResult", "run_cell", "miss_model_factory", "baseline_factory",
           "ssl_factory"]

CACHE_VERSION = 7
_CACHE_DIR = Path(__file__).resolve().parents[3] / ".bench_cache"
_CACHE_ENABLED = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"

ModelFactory = Callable[[ProcessedData, int], CTRModel]


@dataclass(frozen=True)
class CellResult:
    """Mean AUC/Logloss of one (model, dataset) cell over the bench seeds."""

    model_name: str
    dataset_name: str
    auc: float
    logloss: float
    auc_std: float
    num_seeds: int

    def row(self) -> tuple[str, float, float]:
        return self.model_name, self.auc, self.logloss


def _cache_path(key: str) -> Path:
    digest = hashlib.sha256(key.encode()).hexdigest()[:24]
    return _CACHE_DIR / f"{digest}.json"


def _cache_key(model_key: str, dataset: str, extra: str = "") -> str:
    return json.dumps({
        "version": CACHE_VERSION,
        "model": model_key,
        "dataset": dataset,
        "scale": BENCH_SCALE,
        "seeds": BENCH_SEEDS,
        "epochs": BENCH_EPOCHS,
        "extra": extra,
    }, sort_keys=True)


def baseline_factory(name: str, **kwargs) -> ModelFactory:
    """Factory for a plain baseline from the model registry."""
    def make(data: ProcessedData, seed: int) -> CTRModel:
        return create_model(name, data.schema, seed=seed + 1, **kwargs)
    return make


def miss_model_factory(backbone: str = "DIN",
                       config_overrides: dict | None = None) -> ModelFactory:
    """Factory for ``<backbone>-MISS`` with the tuned bench MISS config."""
    def make(data: ProcessedData, seed: int) -> CTRModel:
        base = create_model(backbone, data.schema, seed=seed + 1)
        return attach_miss(base, bench_miss_config(seed, **(config_overrides or {})))
    return make


def ssl_factory(method: str, backbone: str = "DIN", alpha: float = 0.5
                ) -> ModelFactory:
    """Factory for ``<backbone>-<ssl method>`` (Table VI)."""
    def make(data: ProcessedData, seed: int) -> CTRModel:
        base = create_model(backbone, data.schema, seed=seed + 1)
        return attach_ssl_baseline(method, base, alpha=alpha, seed=seed + 101)
    return make


def run_cell(model_key: str, factory: ModelFactory, dataset_name: str,
             train_transform=None, extra_key: str = "",
             dataset_override: ProcessedData | None = None) -> CellResult:
    """Run one cell averaged over the bench seeds, with disk caching.

    ``train_transform(train_split, seed)`` lets the corruption studies
    down-sample or label-flip the training split while leaving
    validation/test untouched.
    """
    key = _cache_key(model_key, dataset_name, extra_key)
    path = _cache_path(key)
    if _CACHE_ENABLED and path.exists():
        payload = json.loads(path.read_text())
        return CellResult(**payload)

    aucs, loglosses = [], []
    for seed in bench_seeds():
        data = dataset_override or bench_dataset(dataset_name, seed)
        train = data.train
        if train_transform is not None:
            train = train_transform(train, seed)
        model = factory(data, seed)
        result = run_experiment(model, data, bench_train_config(seed),
                                model_name=model_key, train=train)
        aucs.append(result.test.auc)
        loglosses.append(result.test.logloss)

    cell = CellResult(
        model_name=model_key,
        dataset_name=dataset_name,
        auc=float(np.mean(aucs)),
        logloss=float(np.mean(loglosses)),
        auc_std=float(np.std(aucs)),
        num_seeds=len(aucs),
    )
    if _CACHE_ENABLED:
        _CACHE_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(cell.__dict__))
    return cell
