"""Microbenchmarks for the fused ops backend (``repro bench-ops``).

Times each fused kernel family — forward *and* backward — under the
``reference`` and ``fused`` backends on shapes representative of the MISS
benchmark configurations, and reports per-kernel speedups.  The payload is
written as ``BENCH_ops.json`` so CI can archive the numbers next to the
serving load benchmark.

Timings use best-of-N wall time (best, not mean: the minimum is the least
noisy estimator of the achievable time on a shared machine).
"""

from __future__ import annotations

import platform
import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..nn import MLP, Tensor, kernels, use_backend
from ..nn import functional as F
from ..resilience.atomic import atomic_write_json

__all__ = ["KERNEL_NAMES", "run_micro", "render_report"]

#: Kernel benchmarks, in report order.
KERNEL_NAMES = ("mie_mimfe_conv", "embedding_backward", "fused_mlp",
                "l2_normalize")


def _best_ms(fn: Callable[[], None], repeats: int) -> float:
    """Best wall-clock milliseconds for one call of ``fn`` over ``repeats``."""
    fn()  # warm up allocators, BLAS thread pools, and the buffer pool
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _bench_conv(rng: np.random.Generator) -> tuple[Callable[[], None], str]:
    # MIE shape at benchmark scale: (B, J, L, K) with the widest kernel the
    # extractor uses; backward included.
    batch, fields, seq_len, dim, width = 256, 3, 30, 10, 4
    x = Tensor(rng.normal(size=(batch, fields, seq_len, dim)),
               requires_grad=True)
    w = Tensor(rng.normal(size=width), requires_grad=True)
    out_shape = (batch, fields, seq_len - width + 1, dim)
    seed_grad = np.ones(out_shape)

    def run() -> None:
        x.grad = None
        w.grad = None
        out = kernels.conv_window(x, w, axis=2)
        out.backward(seed_grad)

    return run, f"x=({batch},{fields},{seq_len},{dim}) width={width} fwd+bwd"


def _bench_embedding(rng: np.random.Generator
                     ) -> tuple[Callable[[], None], str]:
    # One batch worth of sequential-field lookups: B·J·L gathered rows
    # scattered back into a (V, K) table.
    vocab, dim = 5000, 10
    batch, fields, seq_len = 256, 3, 30
    table = Tensor(rng.normal(size=(vocab, dim)), requires_grad=True)
    indices = rng.integers(0, vocab, size=(batch, fields, seq_len))
    seed_grad = np.ones((batch, fields, seq_len, dim))

    def run() -> None:
        table.grad = None
        out = kernels.embedding_lookup(table, indices)
        out.backward(seed_grad)

    return run, (f"table=({vocab},{dim}) "
                 f"indices=({batch},{fields},{seq_len}) fwd+bwd")


def _bench_mlp(rng: np.random.Generator) -> tuple[Callable[[], None], str]:
    # The SSL view-encoder shape: small layers, large effective batch (all
    # pair views of a batch) — per-node overhead dominates the GEMMs here,
    # which is exactly what the fused linear removes.
    batch, in_features, sizes = 4096, 30, [20, 20]
    mlp = MLP(in_features, sizes, rng, activation="relu",
              output_activation=None)
    x = Tensor(rng.normal(size=(batch, in_features)), requires_grad=True)
    seed_grad = np.ones((batch, sizes[-1]))

    def run() -> None:
        mlp.zero_grad()
        x.grad = None
        out = mlp(x)
        out.backward(seed_grad)

    return run, f"x=({batch},{in_features}) layers={sizes} relu fwd+bwd"


def _bench_l2norm(rng: np.random.Generator) -> tuple[Callable[[], None], str]:
    # InfoNCE normalisation of a full view batch.
    batch, dim = 4096, 20
    x = Tensor(rng.normal(size=(batch, dim)), requires_grad=True)
    seed_grad = np.ones((batch, dim))

    def run() -> None:
        x.grad = None
        out = F.l2_normalize(x, axis=-1)
        out.backward(seed_grad)

    return run, f"x=({batch},{dim}) fwd+bwd"


_BENCH_BUILDERS = {
    "mie_mimfe_conv": _bench_conv,
    "embedding_backward": _bench_embedding,
    "fused_mlp": _bench_mlp,
    "l2_normalize": _bench_l2norm,
}


def run_micro(repeats: int = 20, seed: int = 0,
              out_path: str | Path | None = None) -> dict:
    """Run every kernel microbenchmark under both backends.

    Returns the JSON-safe payload (and writes it atomically to ``out_path``
    when given).  Each kernel entry records per-backend best-of-``repeats``
    milliseconds and the reference/fused speedup.
    """
    kernels_report: dict[str, dict] = {}
    for name in KERNEL_NAMES:
        entry: dict = {}
        for backend in ("reference", "fused"):
            # Fresh arrays per backend so neither run warms the other's
            # caches; same seed so both time identical values.
            run, shape = _BENCH_BUILDERS[name](np.random.default_rng(seed))
            entry["shape"] = shape
            with use_backend(backend):
                entry[f"{backend}_ms"] = _best_ms(run, repeats)
        entry["speedup"] = entry["reference_ms"] / entry["fused_ms"]
        kernels_report[name] = entry

    payload = {
        "schema_version": 1,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": kernels_report,
    }
    if out_path is not None:
        atomic_write_json(Path(out_path), payload)
    return payload


def render_report(payload: dict) -> str:
    """Fixed-width table of the ``run_micro`` payload."""
    lines = [f"{'Kernel':<20}{'reference':>12}{'fused':>12}{'speedup':>10}"]
    for name, entry in payload["kernels"].items():
        lines.append(f"{name:<20}{entry['reference_ms']:>10.3f}ms"
                     f"{entry['fused_ms']:>10.3f}ms"
                     f"{entry['speedup']:>9.2f}x")
    return "\n".join(lines)
