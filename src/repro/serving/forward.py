"""Deterministic blocked inference forward shared by evaluation and serving.

BLAS gemm picks different kernels (and therefore different floating-point
summation orders) depending on the batch dimension ``M``: a 3-row batch and a
512-row batch of the *same* samples can produce logits that differ in the
last ulp.  That would break the serving contract that online scores are
bit-identical to the offline ``evaluate`` forward regardless of how requests
happen to coalesce into micro-batches.

:func:`forward_logits` removes the shape degree of freedom: every forward
pass — offline eval, the scoring engine's micro-batches, single-row
``predict`` calls — is computed in fixed-size blocks of :data:`PARITY_BLOCK`
rows, padding the final partial block by repeating its last row (padded rows
are computed and discarded; per-row results are independent of other rows'
values, and row position within a fixed shape does not change gemm rounding).
With every gemm seeing the same ``M``, logits for a given sample are
bit-identical no matter which batch split or cache state produced them.
"""

from __future__ import annotations

import numpy as np

import contextlib

from ..data.batching import Batch
from ..models.base import CTRModel
from ..nn import no_grad, use_backend

__all__ = ["PARITY_BLOCK", "forward_logits", "forward_probabilities",
           "sigmoid"]

#: Canonical row count of every inference-time gemm.  Changing this value
#: changes low-order logit bits, so it is recorded in exported artifact
#: manifests and checked on load.
PARITY_BLOCK = 32


def _pad_rows(array: np.ndarray, count: int) -> np.ndarray:
    """Append ``count`` copies of the last row (values are discarded)."""
    return np.concatenate([array, np.repeat(array[-1:], count, axis=0)],
                          axis=0)


def forward_logits(model: CTRModel, batch: Batch,
                   block_size: int = PARITY_BLOCK,
                   backend: str | None = None) -> np.ndarray:
    """Logits of ``batch`` under ``no_grad``, computed in fixed-size blocks.

    The result is bit-identical for a given sample regardless of batch
    composition, which is what lets the serving engine's dynamically-sized
    micro-batches reproduce offline evaluation exactly.  ``model`` is run in
    whatever train/eval mode it is currently in; inference callers put the
    model in eval mode once at load time.

    ``backend`` pins the array backend for this forward (thread-locally) —
    the serving session passes the backend recorded in the artifact manifest
    so scores stay bit-identical to the exporting run even if the process
    default differs.  ``None`` keeps the caller's active backend.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n = len(batch)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    pin = (use_backend(backend) if backend is not None
           else contextlib.nullcontext())
    outputs = []
    with pin, no_grad():
        for start in range(0, n, block_size):
            cat = batch.categorical[start:start + block_size]
            seq = batch.sequences[start:start + block_size]
            mask = batch.mask[start:start + block_size]
            labels = batch.labels[start:start + block_size]
            rows = cat.shape[0]
            if rows < block_size:
                pad = block_size - rows
                cat, seq, mask, labels = (
                    _pad_rows(a, pad) for a in (cat, seq, mask, labels))
            block = Batch(categorical=cat, sequences=seq, mask=mask,
                          labels=labels)
            outputs.append(np.asarray(model.predict_logits(block).data,
                                      dtype=np.float64)[:rows])
    return np.concatenate(outputs)


def sigmoid(logits: np.ndarray) -> np.ndarray:
    """Elementwise click probability; same clipped form as ``Tensor.sigmoid``."""
    return 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))


def forward_probabilities(model: CTRModel, batch: Batch,
                          block_size: int = PARITY_BLOCK,
                          backend: str | None = None) -> np.ndarray:
    """Click probabilities via :func:`forward_logits` (elementwise sigmoid
    is shape-independent, so probabilities inherit the parity guarantee)."""
    return sigmoid(forward_logits(model, batch, block_size=block_size,
                                  backend=backend))
