"""Model router: one serving front door, a fleet of model deployments.

The router owns up to three live deployments, each a (version, session,
engine) triple built by an injected ``engine_factory``:

``primary``
    Scores the critical path.  :meth:`deploy_primary` hot-swaps it with
    zero dropped requests: the replacement engine is built and warmed
    first, the pointer switch happens under the submit lock (so no request
    can observe a half-swapped router), and only then is the old engine
    drained — every request it had already accepted still resolves.
``shadow``
    Receives a fire-and-forget copy of every primary-routed request.
    Shadow results are discarded and shadow failures are swallowed (and
    counted) — a broken challenger can never hurt production traffic.
``challenger``
    Percentage A/B: a deterministic hash of the feature row sends
    ``challenger_fraction`` of requests to the challenger *instead of*
    production.  Hash-based routing means a given row always sees the same
    model, so repeated requests stay cache-coherent and comparable.

Per-model traffic is counted as ``serve.model.<version>.requests`` /
``.errors`` in the shared metric registry, alongside role counters
(``serve.shadow.requests``, ``serve.ab.challenger_requests``), so operators
can watch a challenger's error rate before promoting it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable

import numpy as np

from ..obs import MetricRegistry
from ..obs.trace import SpanContext
from .batcher import ScoringEngine, row_key

__all__ = ["ModelRouter", "Deployment"]


class Deployment:
    """One live model: a version label, its session, and its engine."""

    __slots__ = ("version", "session", "engine")

    def __init__(self, version: str, session, engine: ScoringEngine):
        self.version = version
        self.session = session
        self.engine = engine


def _route_bucket(categorical: np.ndarray, sequences: np.ndarray,
                  mask: np.ndarray) -> int:
    """Deterministic bucket in [0, 10000) from the full feature row."""
    digest = row_key(categorical, sequences, mask)
    return int.from_bytes(digest[:8], "big") % 10_000


class ModelRouter:
    """Route score requests across primary / shadow / challenger engines."""

    def __init__(self, engine_factory: Callable[[Any], ScoringEngine], *,
                 metrics: MetricRegistry | None = None):
        self._factory = engine_factory
        self.metrics = metrics if metrics is not None else MetricRegistry()
        # Guards the deployment pointers AND spans each submit_row call, so
        # a swap can never close an engine between a request picking it and
        # enqueueing into it — the zero-drop invariant.
        self._lock = threading.Lock()
        self._primary: Deployment | None = None
        self._shadow: Deployment | None = None
        self._challenger: Deployment | None = None
        self._fraction = 0.0
        self._swaps = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Deployment management
    # ------------------------------------------------------------------
    def deploy_primary(self, session, version: str) -> dict[str, Any]:
        """Install (or hot-swap) the production model; returns swap info.

        The new engine exists and accepts work *before* the old one stops;
        requests admitted to the old engine drain to completion, requests
        arriving during the swap land on whichever engine the pointer
        names — both of which score.  Nothing is dropped.
        """
        start = time.monotonic()
        engine = self._factory(session)
        with self._lock:
            if self._closed:
                engine.close(drain=False)
                raise RuntimeError("router is closed")
            old = self._primary
            self._primary = Deployment(version, session, engine)
            self._swaps += 1
        drained = 0
        if old is not None:
            drained = old.engine.queue_depth()
            old.engine.close(drain=True)
        swap_ms = (time.monotonic() - start) * 1000.0
        self.metrics.counter("serve.model.swaps").inc()
        return {"old_version": old.version if old is not None else None,
                "new_version": version, "swap_ms": swap_ms,
                "drained_queue_depth": drained}

    def set_shadow(self, session, version: str | None) -> None:
        """Attach (or detach, with ``version=None``) the shadow model."""
        new = None
        if version is not None:
            new = Deployment(version, session, self._factory(session))
        with self._lock:
            old, self._shadow = self._shadow, new
        if old is not None:
            old.engine.close(drain=True)

    def set_challenger(self, session, version: str | None,
                       fraction: float = 0.0) -> None:
        """Attach (or detach) the A/B challenger taking ``fraction``."""
        new = None
        if version is not None:
            if not 0.0 < fraction <= 1.0:
                raise ValueError("fraction must be in (0, 1]")
            new = Deployment(version, session, self._factory(session))
        else:
            fraction = 0.0
        with self._lock:
            old, self._challenger = self._challenger, new
            self._fraction = fraction
        if old is not None:
            old.engine.close(drain=True)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Deployment:
        with self._lock:
            if self._primary is None:
                raise RuntimeError("router has no primary deployment")
            return self._primary

    @property
    def primary_session(self):
        return self.primary.session

    @property
    def primary_engine(self) -> ScoringEngine:
        return self.primary.engine

    def submit(self, categorical: np.ndarray, sequences: np.ndarray,
               mask: np.ndarray, *,
               trace_parent: SpanContext | None = None,
               deadline: float | None = None) -> tuple[Future, str]:
        """Route one row; returns (future, version-that-scores-it).

        The hash split is evaluated per row, the shadow copy (if any) is
        dispatched fire-and-forget, and the row is enqueued while the
        router lock is held so a concurrent hot-swap cannot close the
        chosen engine out from under it.
        """
        with self._lock:
            if self._primary is None:
                raise RuntimeError("router has no primary deployment")
            target = self._primary
            if self._challenger is not None and \
                    _route_bucket(categorical, sequences, mask) < \
                    int(self._fraction * 10_000):
                target = self._challenger
                self.metrics.counter("serve.ab.challenger_requests").inc()
            shadow = self._shadow
            future = target.engine.submit_row(
                categorical, sequences, mask, trace_parent=trace_parent,
                deadline=deadline)
            if shadow is not None and target is not shadow:
                self._submit_shadow(shadow, categorical, sequences, mask)
        self.metrics.counter(
            f"serve.model.{target.version}.requests").inc()
        version = target.version
        future.add_done_callback(
            lambda f, v=version: self._record_outcome(f, v))
        return future, version

    def _submit_shadow(self, shadow: Deployment, categorical, sequences,
                       mask) -> None:
        """Fire-and-forget shadow copy — never on the critical path."""
        self.metrics.counter("serve.shadow.requests").inc()
        self.metrics.counter(
            f"serve.model.{shadow.version}.requests").inc()
        try:
            future = shadow.engine.submit_row(categorical, sequences, mask)
        except Exception:
            self.metrics.counter("serve.shadow.errors").inc()
            return
        version = shadow.version

        def consume(f: Future, v: str = version) -> None:
            exc = None if f.cancelled() else f.exception()
            if f.cancelled() or exc is not None:
                self.metrics.counter("serve.shadow.errors").inc()
                self.metrics.counter(f"serve.model.{v}.errors").inc()

        future.add_done_callback(consume)

    def _record_outcome(self, future: Future, version: str) -> None:
        if future.cancelled() or future.exception() is not None:
            self.metrics.counter(f"serve.model.{version}.errors").inc()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-safe fleet state for ``/healthz``."""
        with self._lock:
            return {
                "primary": (self._primary.version
                            if self._primary is not None else None),
                "shadow": (self._shadow.version
                           if self._shadow is not None else None),
                "challenger": (self._challenger.version
                               if self._challenger is not None else None),
                "challenger_fraction": self._fraction,
                "swaps": self._swaps,
            }

    def deployments(self) -> list[Deployment]:
        with self._lock:
            return [d for d in (self._primary, self._shadow,
                                self._challenger) if d is not None]

    def close(self, drain: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            deployments = [d for d in (self._primary, self._shadow,
                                       self._challenger) if d is not None]
        for deployment in deployments:
            deployment.engine.close(drain=drain)
