"""Model registry: versioned, digest-verified artifacts for fleet serving.

A registry is a directory the whole fleet reads::

    registry/
      registry.json          # roles: production / shadow / challenger
      models/
        v1/                  # each version is a normal serving artifact
          manifest.json
          weights.npz
        v2/
          ...

Versions are immutable once published: ``publish`` copies an exported
artifact in, verifies every array digest against its manifest, and never
overwrites an existing version.  ``registry.json`` is the only mutable file
and is written atomically, so a replica reading mid-promote sees either the
old state or the new one, never a torn mix.  Roles:

``production``
    The artifact every replica serves on the critical path.
``shadow``
    Scored off the critical path for every request (response discarded,
    metrics kept) — how a challenger earns trust before taking traffic.
``challenger`` + ``challenger_fraction``
    Percentage A/B: a deterministic hash of the feature row routes that
    fraction of requests to the challenger *instead of* production.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from pathlib import Path
from typing import Any

from ..resilience.atomic import atomic_write_json
from .artifact import MANIFEST_NAME, WEIGHTS_NAME, load_artifact, load_manifest

__all__ = ["ModelRegistry", "RegistryError", "STATE_NAME"]

STATE_NAME = "registry.json"
MODELS_DIR = "models"
STATE_FORMAT_VERSION = 1

_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class RegistryError(ValueError):
    """The registry directory or a requested version is invalid."""


def manifest_digest(manifest: dict[str, Any]) -> str:
    """Stable artifact identity: SHA-256 over the per-array digests.

    Matches :meth:`InferenceSession.artifact_digest`, so a probe can compare
    what a replica *serves* against what the registry *says* it should.
    """
    h = hashlib.sha256()
    for name in sorted(manifest.get("arrays", {})):
        h.update(name.encode("utf-8"))
        h.update(manifest["arrays"][name]["sha256"].encode("ascii"))
    return h.hexdigest()


class ModelRegistry:
    """Versioned artifact store plus the production/shadow/challenger roles."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.models_dir = self.root / MODELS_DIR
        self.models_dir.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_staging()
        if not (self.root / STATE_NAME).exists():
            self._write_state({"production": None, "shadow": None,
                               "challenger": None,
                               "challenger_fraction": 0.0})

    def _sweep_stale_staging(self) -> None:
        """Remove ``.incoming-*`` staging dirs left behind by a crashed
        publish.  Safe on open: a live publish's staging dir only exists
        within the ``publish`` call itself, and a version becomes visible
        solely through the atomic rename out of staging."""
        for stale in self.models_dir.glob(".incoming-*"):
            if stale.is_dir():
                shutil.rmtree(stale, ignore_errors=True)

    # ------------------------------------------------------------------
    # State file
    # ------------------------------------------------------------------
    def state(self) -> dict[str, Any]:
        path = self.root / STATE_NAME
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"cannot read {path}: {exc}") from exc
        version = state.get("format_version")
        if version != STATE_FORMAT_VERSION:
            raise RegistryError(
                f"{path}: format_version {version!r} is not supported")
        return state

    def _write_state(self, roles: dict[str, Any]) -> None:
        atomic_write_json(self.root / STATE_NAME,
                          {"format_version": STATE_FORMAT_VERSION, **roles})

    def _update_state(self, **changes: Any) -> dict[str, Any]:
        state = self.state()
        state.update(changes)
        state.pop("format_version", None)
        self._write_state(state)
        return self.state()

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    def versions(self) -> list[str]:
        """Published version names, oldest-first by numeric suffix then name.

        Only fully-published versions count: names are filtered against the
        publish-time pattern, so an in-flight or crash-left ``.incoming-*``
        staging directory never shows up (and can never shadow a version
        name in ``_next_version``).
        """
        found = [p.name for p in self.models_dir.iterdir()
                 if p.is_dir() and _VERSION_RE.match(p.name)]

        def sort_key(name: str):
            match = re.search(r"(\d+)$", name)
            return (0, int(match.group(1)), name) if match else (1, 0, name)

        return sorted(found, key=sort_key)

    def _next_version(self) -> str:
        taken = set(self.versions())
        n = 1
        while f"v{n}" in taken:
            n += 1
        return f"v{n}"

    def path(self, version: str) -> Path:
        directory = self.models_dir / version
        if not directory.is_dir():
            raise RegistryError(
                f"version {version!r} is not in the registry "
                f"(have: {self.versions() or 'none'})")
        return directory

    def describe(self, version: str) -> dict[str, Any]:
        """JSON-safe summary of one published version."""
        manifest = load_manifest(self.path(version))
        return {"version": version,
                "model": manifest["model"],
                "digest": manifest_digest(manifest),
                "backend": manifest.get("backend", "reference"),
                "dataset": manifest.get("metadata", {}).get("dataset"),
                "test_auc": manifest.get("metadata", {}).get("test_auc")}

    def publish(self, artifact: str | Path, *, version: str | None = None,
                promote: bool = False) -> str:
        """Copy ``artifact`` into the registry as an immutable version.

        The copy is fully verified (every weight array digest-checked and
        loaded into a model) *before* it becomes visible under a version
        name, so a half-copied or corrupt artifact can never be promoted.
        """
        if version is None:
            version = self._next_version()
        if not _VERSION_RE.match(version):
            raise RegistryError(
                f"version {version!r} must match {_VERSION_RE.pattern}")
        if (self.models_dir / version).exists():
            raise RegistryError(
                f"version {version!r} already published; versions are "
                f"immutable — publish under a new name")
        source = Path(artifact)
        load_manifest(source)  # fail fast on a non-artifact directory
        staging = self.models_dir / f".incoming-{version}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            for name in (MANIFEST_NAME, WEIGHTS_NAME):
                if not (source / name).exists():
                    raise RegistryError(f"{source} lacks {name}; not a "
                                        f"complete serving artifact")
                shutil.copy2(source / name, staging / name)
            # Full verification of the *copy*: digests + model rebuild.
            load_artifact(staging)
            staging.rename(self.models_dir / version)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        if promote:
            self.promote(version)
        return version

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def promote(self, version: str) -> dict[str, Any]:
        """Make ``version`` production; clears it from shadow/challenger."""
        self.path(version)
        state = self.state()
        changes: dict[str, Any] = {"production": version}
        if state.get("shadow") == version:
            changes["shadow"] = None
        if state.get("challenger") == version:
            changes["challenger"] = None
            changes["challenger_fraction"] = 0.0
        return self._update_state(**changes)

    def set_shadow(self, version: str | None) -> dict[str, Any]:
        if version is not None:
            self.path(version)
        return self._update_state(shadow=version)

    def set_challenger(self, version: str | None,
                       fraction: float = 0.0) -> dict[str, Any]:
        if version is not None:
            self.path(version)
            if not 0.0 < fraction <= 1.0:
                raise RegistryError(
                    "challenger_fraction must be in (0, 1] when a "
                    "challenger is set")
        else:
            fraction = 0.0
        return self._update_state(challenger=version,
                                  challenger_fraction=float(fraction))

    def production(self) -> str:
        version = self.state().get("production")
        if version is None:
            raise RegistryError(
                "registry has no production version; publish then promote")
        self.path(version)
        return version
