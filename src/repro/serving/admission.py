"""Admission control: decide *whether* to score before deciding *how*.

An overloaded replica that accepts everything fails everyone: queues grow
without bound, every request times out, and the client sees worst-case
latency on 100% of traffic.  The admission layer keeps the failure mode
sharp instead — requests the server cannot finish in time are rejected
immediately with a retryable status, and the requests it does accept keep
their latency budget.

Three cooperating pieces:

:class:`AdmissionController`
    A bounded in-flight budget.  ``acquire`` either admits the request (the
    caller must ``release`` when it resolves) or raises :class:`ShedError`
    carrying a ``Retry-After`` hint; the HTTP layer turns that into a 429.

Deadlines (:func:`parse_deadline_ms`, :class:`DeadlineExceededError`)
    Clients send their remaining budget in an ``X-Deadline-Ms`` header.  The
    deadline travels with the request through the batcher, and a request
    whose deadline expires while queued is *rejected, not scored* — scoring
    a row nobody is still waiting for only steals capacity from rows whose
    callers are.

:class:`CircuitBreaker`
    A sliding-window failure-rate monitor.  Sustained scoring failure trips
    it OPEN: ``/score`` fast-fails with 503 and ``/healthz`` reports a
    degraded state so load balancers drain the replica.  After a cooldown
    it admits one probe (HALF_OPEN); a success closes it, a failure re-trips
    it.  All transitions are lock-protected and use an injectable clock so
    tests drive the state machine deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ShedError",
    "parse_deadline_ms",
]


class ShedError(RuntimeError):
    """Request rejected by admission control (HTTP 429).

    ``retry_after_s`` is the client's backoff hint, surfaced as the
    ``Retry-After`` response header.
    """

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceededError(TimeoutError):
    """A request's deadline expired before (or while) it could be scored."""


class CircuitOpenError(RuntimeError):
    """Fast-fail: the circuit breaker is open (HTTP 503)."""


def parse_deadline_ms(value: str | None) -> float | None:
    """Validate an ``X-Deadline-Ms`` header value; returns milliseconds.

    ``None``/empty means "no deadline".  Anything that is not a positive
    finite number raises ``ValueError`` — the HTTP layer maps that to 400
    rather than guessing at the client's intent.
    """
    if value is None or value == "":
        return None
    try:
        deadline_ms = float(value)
    except ValueError as exc:
        raise ValueError(f"X-Deadline-Ms {value!r} is not a number") from exc
    if not (deadline_ms > 0) or deadline_ms != deadline_ms \
            or deadline_ms == float("inf"):
        raise ValueError("X-Deadline-Ms must be a positive finite number "
                         f"of milliseconds, got {value!r}")
    return deadline_ms


class AdmissionController:
    """Bounded in-flight budget with explicit load shedding.

    ``max_inflight`` caps the number of admitted-but-unresolved requests
    (HTTP rows, not connections).  ``acquire(rows)`` admits all of a
    request's rows or none of them — partial scoring of a multi-row request
    is never useful to the caller.
    """

    def __init__(self, max_inflight: int, *, retry_after_s: float = 0.5):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self._inflight = 0
        self._shed = 0
        self._admitted = 0
        self._lock = threading.Lock()

    def acquire(self, rows: int = 1) -> None:
        """Admit ``rows`` units of work or raise :class:`ShedError`."""
        if rows < 1:
            raise ValueError("rows must be >= 1")
        with self._lock:
            if self._inflight + rows > self.max_inflight:
                self._shed += 1
                raise ShedError(
                    f"overloaded: {self._inflight} rows in flight, admitting "
                    f"{rows} more would exceed the {self.max_inflight}-row "
                    f"budget", self.retry_after_s)
            self._inflight += rows
            self._admitted += 1

    def release(self, rows: int = 1) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - rows)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def snapshot(self) -> dict:
        with self._lock:
            return {"inflight": self._inflight,
                    "max_inflight": self.max_inflight,
                    "admitted": self._admitted,
                    "shed": self._shed}


class CircuitBreaker:
    """Sliding-window failure-rate breaker: CLOSED → OPEN → HALF_OPEN.

    Outcomes are recorded into a ``window_s``-second sliding window.  Once
    at least ``min_requests`` outcomes are in the window and the failure
    fraction reaches ``failure_threshold``, the breaker opens for
    ``cooldown_s``.  While open every ``allow()`` is refused except that,
    after the cooldown, exactly one caller is admitted as a probe
    (HALF_OPEN); its outcome closes or re-opens the circuit.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: float = 0.5,
                 min_requests: int = 10, window_s: float = 10.0,
                 cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if window_s <= 0 or cooldown_s <= 0:
            raise ValueError("window_s and cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.min_requests = min_requests
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._outcomes: deque[tuple[float, bool]] = deque()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False
        self._trips = 0
        self._lock = threading.Lock()

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def allow(self) -> bool:
        """True if a request may proceed; False means fast-fail (503).

        In the OPEN state, the first call after the cooldown transitions to
        HALF_OPEN and is admitted as the probe; concurrent callers keep
        being refused until the probe's outcome is recorded.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            now = self._clock()
            if self._state == self.OPEN:
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = self.HALF_OPEN
                self._probe_inflight = True
                return True
            # HALF_OPEN: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record(self, ok: bool) -> None:
        """Feed one request outcome into the window; may trip or close."""
        with self._lock:
            now = self._clock()
            if self._state == self.HALF_OPEN:
                self._probe_inflight = False
                if ok:
                    self._state = self.CLOSED
                    self._outcomes.clear()
                else:
                    self._state = self.OPEN
                    self._opened_at = now
                    self._trips += 1
                return
            if self._state == self.OPEN:
                return  # outcomes of already-admitted stragglers don't count
            self._outcomes.append((now, ok))
            self._prune(now)
            total = len(self._outcomes)
            if total < self.min_requests:
                return
            failures = sum(1 for _, outcome in self._outcomes if not outcome)
            if failures / total >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = now
                self._trips += 1
                self._outcomes.clear()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            now = self._clock()
            self._prune(now)
            failures = sum(1 for _, ok in self._outcomes if not ok)
            return {"state": self._state,
                    "window_requests": len(self._outcomes),
                    "window_failures": failures,
                    "trips": self._trips,
                    "cooldown_remaining_s": (
                        max(0.0, self.cooldown_s - (now - self._opened_at))
                        if self._state == self.OPEN else 0.0)}
