"""Inference sessions: a frozen model plus everything needed to score rows.

:class:`InferenceSession` is the only way serving code touches a model.  It
loads an exported artifact (digest-verified), pins the model in eval mode,
and scores strictly under ``no_grad`` through the deterministic blocked
forward — so a session's logits are bit-identical to offline
``training.evaluate`` on the same rows, regardless of how requests were
batched.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..models.base import CTRModel
from ..nn.backend import resolve_backend
from .artifact import ArtifactError, load_artifact
from .forward import forward_logits, sigmoid

__all__ = ["InferenceSession", "rows_to_batch"]


def rows_to_batch(schema: DatasetSchema,
                  rows: Sequence[Mapping[str, Any]]) -> Batch:
    """Assemble request rows into a :class:`Batch`, validating shapes.

    Each row is a mapping with ``categorical`` (I ids), ``sequences``
    (J × L ids, front-padded with 0 like the training pipeline), and
    ``mask`` (L booleans).  Labels are unknown at serving time and filled
    with zeros; nothing on the inference path reads them.
    """
    if not rows:
        raise ValueError("rows must be non-empty")
    n = len(rows)
    i, j, t = schema.num_categorical, schema.num_sequential, schema.max_seq_len
    categorical = np.zeros((n, i), dtype=np.int64)
    sequences = np.zeros((n, j, t), dtype=np.int64)
    mask = np.zeros((n, t), dtype=bool)
    for r, row in enumerate(rows):
        try:
            cat = np.asarray(row["categorical"], dtype=np.int64)
            seq = np.asarray(row["sequences"], dtype=np.int64)
            msk = np.asarray(row["mask"]).astype(bool)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"row {r}: expected keys categorical/sequences/"
                             f"mask with integer content ({exc})") from exc
        if cat.shape != (i,):
            raise ValueError(f"row {r}: categorical has shape {cat.shape}, "
                             f"schema {schema.name!r} needs ({i},)")
        if seq.shape != (j, t):
            raise ValueError(f"row {r}: sequences has shape {seq.shape}, "
                             f"schema {schema.name!r} needs ({j}, {t})")
        if msk.shape != (t,):
            raise ValueError(f"row {r}: mask has shape {msk.shape}, "
                             f"schema {schema.name!r} needs ({t},)")
        for col, spec in enumerate(schema.categorical):
            if not 0 <= cat[col] < spec.vocab_size:
                raise ValueError(
                    f"row {r}: categorical field {spec.name!r} id "
                    f"{int(cat[col])} outside vocab [0, {spec.vocab_size})")
        for fld, spec in enumerate(schema.sequential):
            ids = seq[fld]
            if ids.min() < 0 or ids.max() >= spec.vocab_size:
                raise ValueError(
                    f"row {r}: sequential field {spec.name!r} contains ids "
                    f"outside vocab [0, {spec.vocab_size})")
        categorical[r], sequences[r], mask[r] = cat, seq, msk
    return Batch(categorical=categorical, sequences=sequences, mask=mask,
                 labels=np.zeros(n, dtype=np.float64))


class InferenceSession:
    """A loaded artifact ready to score batches.

    Thread-safety: scoring is read-only over frozen weights (``no_grad``
    forwards never mutate parameters), so concurrent ``score_batch`` calls
    from the engine's worker threads are safe.
    """

    def __init__(self, model: CTRModel, manifest: dict[str, Any]):
        self.model = model
        self.manifest = manifest
        self.schema = model.schema
        self.block_size = int(manifest.get("block_size", 0)) or None
        if self.block_size is None:
            raise ArtifactError("manifest lacks a block_size; parity with "
                                "offline evaluation cannot be guaranteed")
        # Pin scoring to the backend the artifact was exported under so
        # online logits match the exporting run bit-for-bit.  Artifacts
        # predating the backend seam ran the reference semantics.
        self.backend = str(manifest.get("backend") or "reference")
        try:
            resolve_backend(self.backend)
        except ValueError as exc:
            raise ArtifactError(
                f"manifest pins unknown backend {self.backend!r}: "
                f"{exc}") from exc
        model.eval()

    @classmethod
    def load(cls, path: str | Path) -> "InferenceSession":
        """Reconstruct the model from an artifact directory (digest-checked)."""
        model, manifest = load_artifact(path)
        return cls(model, manifest)

    @property
    def model_name(self) -> str:
        return str(self.manifest["model"])

    def artifact_digest(self) -> str:
        """Stable identity of the loaded weights: SHA-256 over the
        manifest's per-array digests.  Fleet probes compare this across
        replicas to confirm they serve the same artifact."""
        h = hashlib.sha256()
        for name in sorted(self.manifest.get("arrays", {})):
            h.update(name.encode("utf-8"))
            h.update(self.manifest["arrays"][name]["sha256"].encode("ascii"))
        return h.hexdigest()

    def score_batch(self, batch: Batch) -> np.ndarray:
        """Logits for ``batch`` — deterministic, eval-mode, gradient-free."""
        return forward_logits(self.model, batch, block_size=self.block_size,
                              backend=self.backend)

    def score_rows(self, rows: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Logits for request-dict rows (see :func:`rows_to_batch`)."""
        return self.score_batch(rows_to_batch(self.schema, rows))

    @staticmethod
    def probabilities(logits: np.ndarray) -> np.ndarray:
        return sigmoid(np.asarray(logits, dtype=np.float64))

    def describe(self) -> dict[str, Any]:
        """JSON-safe identity block (used by /healthz and ``predict``)."""
        return {
            "model": self.model_name,
            "miss": self.manifest.get("miss") is not None,
            "dataset": self.manifest.get("metadata", {}).get("dataset"),
            "schema": self.schema.name,
            "num_categorical": self.schema.num_categorical,
            "num_sequential": self.schema.num_sequential,
            "max_seq_len": self.schema.max_seq_len,
            "block_size": self.block_size,
            "backend": self.backend,
        }
