"""Frozen model artifacts: the on-disk unit shipped from training to serving.

An artifact is a directory with exactly two files::

    artifact/
      manifest.json   # identity, schema, config, per-array SHA-256 digests
      weights.npz     # flat state dict via nn.serialization (atomic write)

The manifest pins everything needed to reconstruct the model without the
training pipeline: the registry name, the embedding dimension, the full
feature schema, the MISS configuration (when the SSL plug-in was attached),
and a SHA-256 digest of every weight array.  Both files are published with
:mod:`repro.resilience.atomic` writes, and :func:`load_artifact` refuses to
build a model from arrays whose digests do not match the manifest — a
truncated copy or a bit-flipped weight fails loudly at load time, never as
silently wrong scores.

``format_version`` governs the manifest layout; bump it on breaking changes
and keep readers backward compatible where possible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from ..core.config import MISSConfig
from ..core.plugin import attach_miss
from ..data.schema import DatasetSchema
from ..models.base import CTRModel
from ..models.registry import MODEL_NAMES, create_model
from ..nn.backend import get_backend
from ..nn.serialization import read_state, save_checkpoint
from ..resilience.atomic import atomic_write_json
from .forward import PARITY_BLOCK

__all__ = ["ArtifactError", "MANIFEST_NAME", "WEIGHTS_NAME", "FORMAT_VERSION",
           "export_artifact", "load_artifact", "load_manifest"]

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"
FORMAT_VERSION = 1


class ArtifactError(ValueError):
    """A serving artifact is missing, malformed, or fails verification."""


def array_digest(array: np.ndarray) -> str:
    """SHA-256 over the array's canonical (C-contiguous) byte content."""
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _miss_config_to_dict(config: MISSConfig) -> dict[str, Any]:
    return dataclasses.asdict(config)


def _miss_config_from_dict(payload: dict[str, Any]) -> MISSConfig:
    coerced = dict(payload)
    # JSON has no tuples; the encoder-size fields must come back hashable.
    for key in ("interest_encoder_sizes", "feature_encoder_sizes"):
        if key in coerced:
            coerced[key] = tuple(coerced[key])
    return MISSConfig(**coerced)


def export_artifact(model: CTRModel, path: str | Path, *,
                    model_name: str,
                    miss_config: MISSConfig | None = None,
                    metadata: dict[str, Any] | None = None) -> Path:
    """Freeze ``model`` into an artifact directory at ``path``.

    ``model_name`` must be a registry name so the serving process can rebuild
    the architecture; pass ``miss_config`` when ``model`` is the
    MISS-enhanced wrapper (its SSL tower is part of the state dict and must
    be reconstructed to load it).  ``metadata`` is free-form JSON-safe
    context (dataset, eval metrics, training settings) carried along for
    humans and ops tooling; it does not affect loading.

    Returns the artifact directory.  Both files are written atomically; the
    manifest is written last so a crash mid-export leaves a directory that
    fails loading cleanly instead of one that loads stale weights.
    """
    if model_name not in MODEL_NAMES:
        raise ArtifactError(
            f"model_name {model_name!r} is not in the registry; artifacts "
            f"must be reconstructible — choose from {MODEL_NAMES}")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    save_checkpoint(model, path / WEIGHTS_NAME)
    manifest = {
        "format_version": FORMAT_VERSION,
        "model": model_name,
        "embedding_dim": int(getattr(model, "embedding_dim", 10)),
        "schema": model.schema.to_dict(),
        "miss": (_miss_config_to_dict(miss_config)
                 if miss_config is not None else None),
        "block_size": PARITY_BLOCK,
        # The backend active at export time.  Inference sessions pin scoring
        # to this backend so online logits stay bit-identical to the
        # exporting run's offline evaluation.
        "backend": get_backend().name,
        "arrays": {
            name: {"sha256": array_digest(array),
                   "shape": [int(d) for d in array.shape],
                   "dtype": str(array.dtype)}
            for name, array in sorted(state.items())
        },
        "metadata": metadata or {},
    }
    atomic_write_json(path / MANIFEST_NAME, manifest)
    return path


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read and structurally validate an artifact's manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise ArtifactError(
            f"{path} is not a serving artifact: missing {MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot read {manifest_path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"{manifest_path}: format_version {version!r} is not supported "
            f"(this library reads version {FORMAT_VERSION})")
    for key in ("model", "schema", "arrays", "block_size"):
        if key not in manifest:
            raise ArtifactError(f"{manifest_path}: missing required key "
                                f"{key!r}")
    return manifest


def _verify_arrays(state: dict[str, np.ndarray], manifest: dict[str, Any],
                   path: Path) -> None:
    declared = manifest["arrays"]
    missing = sorted(set(declared) - set(state))
    unexpected = sorted(set(state) - set(declared))
    if missing or unexpected:
        raise ArtifactError(
            f"{path}: weights do not match the manifest: "
            f"missing={missing}, unexpected={unexpected}")
    for name, spec in declared.items():
        array = state[name]
        if list(array.shape) != list(spec["shape"]):
            raise ArtifactError(
                f"{path}: array {name!r} has shape {tuple(array.shape)}, "
                f"manifest declares {tuple(spec['shape'])}")
        digest = array_digest(array)
        if digest != spec["sha256"]:
            raise ArtifactError(
                f"{path}: array {name!r} fails its checksum "
                f"(manifest {spec['sha256'][:12]}…, got {digest[:12]}…); "
                f"the artifact is corrupt — re-export it")


def load_artifact(path: str | Path) -> tuple[CTRModel, dict[str, Any]]:
    """Rebuild the frozen model; returns ``(model, manifest)``.

    Every weight array is digest-verified against the manifest *before* it
    is loaded into the model.  The model comes back in eval mode.
    """
    path = Path(path)
    manifest = load_manifest(path)
    schema = DatasetSchema.from_dict(manifest["schema"])
    model = create_model(manifest["model"], schema,
                         embedding_dim=int(manifest["embedding_dim"]),
                         seed=0)
    if manifest.get("miss") is not None:
        config = _miss_config_from_dict(manifest["miss"])
        model = attach_miss(model, config)
    weights_path = path / WEIGHTS_NAME
    if not weights_path.exists():
        raise ArtifactError(f"{path}: missing {WEIGHTS_NAME}")
    try:
        state = read_state(weights_path)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ArtifactError(
            f"{path}: cannot read {WEIGHTS_NAME}: {exc}") from exc
    _verify_arrays(state, manifest, path)
    try:
        model.load_state_dict(state, strict=True)
    except (KeyError, ValueError) as exc:
        raise ArtifactError(
            f"{path}: weights do not fit the reconstructed "
            f"{manifest['model']!r} model: "
            f"{exc.args[0] if exc.args else exc}") from exc
    model.eval()
    return model, manifest
