"""Stdlib HTTP scoring endpoint over the micro-batched engine.

Three routes:

``POST /score``
    Body ``{"rows": [{"categorical": [...], "sequences": [[...]], "mask":
    [...]}]}`` (or a single row object).  Rows are validated against the
    artifact's schema, fan out into the micro-batcher, and come back as
    ``{"logits": [...], "probabilities": [...]}`` in request order.
``GET /healthz``
    Liveness plus the artifact identity block.
``GET /metrics``
    JSON snapshot of the engine's metric registry, cache stats, and uptime.

Shutdown is graceful by construction: :meth:`ScoringServer.close` stops the
accept loop, waits for in-flight handler threads (the HTTP server is
configured to block on close), and drains the engine queue so every accepted
request is answered before the process exits.  The ``repro serve`` command
wires SIGTERM/SIGINT to exactly that path.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..obs import MetricRegistry
from .batcher import EngineClosedError, ScoringEngine
from .session import InferenceSession, rows_to_batch

__all__ = ["ScoringServer"]

_MAX_BODY_BYTES = 32 * 1024 * 1024


class _GracefulHTTPServer(ThreadingHTTPServer):
    # Wait for in-flight handler threads at server_close so a drain never
    # abandons a request that already reached a handler.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class ScoringServer:
    """Own an engine plus an HTTP front end; start/close from any thread."""

    def __init__(self, session: InferenceSession, *, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 64,
                 max_wait_ms: float = 2.0, num_workers: int = 1,
                 cache_size: int = 4096,
                 registry: MetricRegistry | None = None,
                 observers=None, request_timeout_s: float = 30.0):
        self.session = session
        self.engine = ScoringEngine(
            session, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
            num_workers=num_workers, cache_size=cache_size,
            registry=registry, observers=observers)
        self.request_timeout_s = request_timeout_s
        self._started_at = time.monotonic()
        self._httpd = _GracefulHTTPServer((host, port), _make_handler(self))
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ScoringServer":
        """Run the accept loop in a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="scoring-http", daemon=True)
        self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting, finish in-flight handlers, drain the engine."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()          # stop the accept loop
        self._httpd.server_close()      # waits for handler threads
        self.engine.close(drain=drain)  # then flush whatever they queued
        if self._thread is not None:
            self._thread.join()

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def __enter__(self) -> "ScoringServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)


def _make_handler(server: ScoringServer):
    session = server.session

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The serving engine has its own telemetry; per-request stderr lines
        # from the stdlib handler would just interleave across threads.
        def log_message(self, format: str, *args) -> None:
            pass

        def _reply(self, status: int, payload: dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._reply(200, {"status": "ok", **session.describe()})
            elif self.path == "/metrics":
                stats = server.engine.stats()
                stats["uptime_s"] = server.uptime_s()
                self._reply(200, stats)
            else:
                self._reply(404, {"error": f"no route {self.path}"})

        def do_POST(self) -> None:
            if self.path != "/score":
                self._reply(404, {"error": f"no route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._reply(411, {"error": "invalid Content-Length"})
                return
            if length <= 0:
                self._reply(411, {"error": "Content-Length required"})
                return
            if length > _MAX_BODY_BYTES:
                self._reply(413, {"error": "request body too large"})
                return
            try:
                payload = json.loads(self.rfile.read(length))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._reply(400, {"error": f"invalid JSON: {exc}"})
                return
            rows = payload.get("rows") if isinstance(payload, dict) else None
            if rows is None and isinstance(payload, dict):
                rows = [payload]        # single-row shorthand
            if not isinstance(rows, list) or not rows:
                self._reply(400, {"error": "body must be a row object or "
                                           '{"rows": [...]} with >= 1 row'})
                return
            try:
                batch = rows_to_batch(session.schema, rows)
            except ValueError as exc:
                self._reply(400, {"error": str(exc)})
                return
            try:
                futures = [
                    server.engine.submit_row(batch.categorical[i],
                                             batch.sequences[i],
                                             batch.mask[i])
                    for i in range(len(batch))
                ]
                logits = [f.result(timeout=server.request_timeout_s)
                          for f in futures]
            except EngineClosedError:
                self._reply(503, {"error": "server is shutting down"})
                return
            except (TimeoutError, FutureTimeoutError):
                # concurrent.futures.TimeoutError only aliases the builtin
                # from Python 3.11; catch both for the 3.10 CI lane.
                self._reply(504, {"error": "scoring timed out"})
                return
            except Exception as exc:  # model failure surfaced via futures
                self._reply(500, {"error": f"scoring failed: {exc!r}"})
                return
            probs = session.probabilities(logits)
            self._reply(200, {"model": session.model_name,
                              "logits": [float(v) for v in logits],
                              "probabilities": [float(p) for p in probs]})

    return Handler
