"""Stdlib HTTP scoring endpoint over the micro-batched engine.

Routes:

``POST /score``
    Body ``{"rows": [{"categorical": [...], "sequences": [[...]], "mask":
    [...]}]}`` (or a single row object).  Rows are validated against the
    artifact's schema, fan out into the micro-batcher, and come back as
    ``{"logits": [...], "probabilities": [...]}`` in request order.
``GET /healthz``
    Readiness JSON: ``status`` is ``"ok"`` (200) while accepting work and
    ``"draining"`` (503) once shutdown began, plus the artifact digest,
    backend pin, queue depth, and uptime — enough for a fleet probe to
    distinguish live-but-draining from ready, and to verify *which* model
    a replica serves.
``GET /metrics``
    Prometheus text exposition (v0.0.4) of the engine's metric registry —
    scrape-able by any standard monitoring stack.  Clients sending
    ``Accept: application/json`` (and the ``/metrics.json`` route) get the
    original JSON snapshot instead.

With a :class:`~repro.obs.trace.Tracer` attached, every ``/score`` request
opens an ingress span whose context is handed to the engine, so the JSONL
span sink records ``http.request → serve.request → serve.queue_wait /
serve.forward`` per sampled request.

Shutdown is graceful by construction: :meth:`ScoringServer.close` stops the
accept loop, waits for in-flight handler threads (the HTTP server is
configured to block on close), and drains the engine queue so every accepted
request is answered before the process exits.  The ``repro serve`` command
wires SIGTERM/SIGINT to exactly that path.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..obs import MetricRegistry
from ..obs.trace import Tracer
from .batcher import EngineClosedError, ScoringEngine
from .session import InferenceSession, rows_to_batch

__all__ = ["ScoringServer"]

_MAX_BODY_BYTES = 32 * 1024 * 1024
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _GracefulHTTPServer(ThreadingHTTPServer):
    # Wait for in-flight handler threads at server_close so a drain never
    # abandons a request that already reached a handler.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class ScoringServer:
    """Own an engine plus an HTTP front end; start/close from any thread."""

    def __init__(self, session: InferenceSession, *, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 64,
                 max_wait_ms: float = 2.0, num_workers: int = 1,
                 cache_size: int = 4096,
                 registry: MetricRegistry | None = None,
                 observers=None, request_timeout_s: float = 30.0,
                 tracer: Tracer | None = None):
        self.session = session
        self.tracer = tracer
        self.engine = ScoringEngine(
            session, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
            num_workers=num_workers, cache_size=cache_size,
            registry=registry, observers=observers, tracer=tracer)
        self.request_timeout_s = request_timeout_s
        self._started_at = time.monotonic()
        self._artifact_digest = session.artifact_digest()
        self._httpd = _GracefulHTTPServer((host, port), _make_handler(self))
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ScoringServer":
        """Run the accept loop in a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="scoring-http", daemon=True)
        self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting, finish in-flight handlers, drain the engine."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()          # stop the accept loop
        self._httpd.server_close()      # waits for handler threads
        self.engine.close(drain=drain)  # then flush whatever they queued
        if self._thread is not None:
            self._thread.join()

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def health(self) -> tuple[int, dict[str, Any]]:
        """(status_code, payload) for ``GET /healthz``.

        Draining (engine closed, in-flight work finishing) reports 503 so
        load balancers stop routing; everything else is 200.
        """
        draining = self.engine.closed
        payload: dict[str, Any] = {
            "status": "draining" if draining else "ok",
            "ready": not draining,
            "draining": draining,
            "queue_depth": self.engine.queue_depth(),
            "uptime_s": self.uptime_s(),
            "artifact_digest": self._artifact_digest,
            **self.session.describe(),
        }
        return (503 if draining else 200), payload

    def _update_scrape_gauges(self) -> None:
        """Refresh point-in-time gauges so both exposition formats carry
        current queue/cache/uptime state at scrape time."""
        registry = self.engine.registry
        registry.gauge("serve.uptime_seconds").set(self.uptime_s())
        registry.gauge("serve.queue_depth_current").set(
            self.engine.queue_depth())
        registry.gauge("serve.cache_size").set(len(self.engine.cache))
        registry.gauge("serve.cache_capacity").set(
            self.engine.cache.capacity)

    def metrics_json(self) -> dict[str, Any]:
        self._update_scrape_gauges()
        stats = self.engine.stats()
        stats["uptime_s"] = self.uptime_s()
        return stats

    def metrics_prometheus(self) -> str:
        self._update_scrape_gauges()
        return self.engine.registry.render_prometheus()

    def __enter__(self) -> "ScoringServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)


def _make_handler(server: ScoringServer):
    session = server.session
    registry = server.engine.registry

    def count_request(endpoint: str, status: int) -> None:
        registry.counter(f"serve.http.{endpoint}.requests").inc()
        if status >= 400:
            registry.counter(f"serve.http.{endpoint}.errors").inc()

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The serving engine has its own telemetry; per-request stderr lines
        # from the stdlib handler would just interleave across threads.
        def log_message(self, format: str, *args) -> None:
            pass

        def _send(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply(self, status: int, payload: dict[str, Any],
                   endpoint: str | None = None) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._send(status, body, "application/json")
            if endpoint is not None:
                count_request(endpoint, status)

        def _wants_json(self) -> bool:
            return "application/json" in self.headers.get("Accept", "")

        def do_GET(self) -> None:
            if self.path == "/healthz":
                status, payload = server.health()
                self._reply(status, payload, endpoint="healthz")
            elif self.path == "/metrics.json" or (
                    self.path == "/metrics" and self._wants_json()):
                self._reply(200, server.metrics_json(), endpoint="metrics")
            elif self.path == "/metrics":
                body = server.metrics_prometheus().encode("utf-8")
                self._send(200, body, _PROMETHEUS_CONTENT_TYPE)
                count_request("metrics", 200)
            else:
                self._reply(404, {"error": f"no route {self.path}"},
                            endpoint="unknown")

        def do_POST(self) -> None:
            if self.path != "/score":
                self._reply(404, {"error": f"no route {self.path}"},
                            endpoint="unknown")
                return
            tracer = server.tracer
            if tracer is None:
                self._handle_score(None, None)
                return
            ingress = tracer.make_context()
            start = time.monotonic()
            status = self._handle_score(tracer, ingress)
            tracer.record_span(
                "http.request", ingress, start, time.monotonic(),
                span_id=ingress.span_id, parent_id=None,
                attrs={"endpoint": "score", "status": status})

        def _handle_score(self, tracer, ingress) -> int:
            def reply(status: int, payload: dict[str, Any]) -> int:
                self._reply(status, payload, endpoint="score")
                return status

            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                return reply(411, {"error": "invalid Content-Length"})
            if length <= 0:
                return reply(411, {"error": "Content-Length required"})
            if length > _MAX_BODY_BYTES:
                return reply(413, {"error": "request body too large"})
            try:
                payload = json.loads(self.rfile.read(length))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return reply(400, {"error": f"invalid JSON: {exc}"})
            rows = payload.get("rows") if isinstance(payload, dict) else None
            if rows is None and isinstance(payload, dict):
                rows = [payload]        # single-row shorthand
            if not isinstance(rows, list) or not rows:
                return reply(400, {"error": "body must be a row object or "
                                            '{"rows": [...]} with >= 1 row'})
            try:
                batch = rows_to_batch(session.schema, rows)
            except ValueError as exc:
                return reply(400, {"error": str(exc)})
            try:
                futures = [
                    server.engine.submit_row(batch.categorical[i],
                                             batch.sequences[i],
                                             batch.mask[i],
                                             trace_parent=ingress)
                    for i in range(len(batch))
                ]
                logits = [f.result(timeout=server.request_timeout_s)
                          for f in futures]
            except EngineClosedError:
                return reply(503, {"error": "server is shutting down"})
            except (TimeoutError, FutureTimeoutError):
                # concurrent.futures.TimeoutError only aliases the builtin
                # from Python 3.11; catch both for the 3.10 CI lane.
                return reply(504, {"error": "scoring timed out"})
            except Exception as exc:  # model failure surfaced via futures
                return reply(500, {"error": f"scoring failed: {exc!r}"})
            probs = session.probabilities(logits)
            return reply(200, {"model": session.model_name,
                               "logits": [float(v) for v in logits],
                               "probabilities": [float(p) for p in probs]})

    return Handler
