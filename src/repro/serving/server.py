"""Stdlib HTTP scoring endpoint over the micro-batched engine fleet.

Routes:

``POST /score``
    Body ``{"rows": [{"categorical": [...], "sequences": [[...]], "mask":
    [...]}]}`` (or a single row object).  Rows are validated against the
    artifact's schema, admitted (or shed with 429 + ``Retry-After``) by the
    admission controller, routed across primary/challenger engines with an
    optional shadow copy, and come back as ``{"logits": [...],
    "probabilities": [...]}`` in request order.  An ``X-Deadline-Ms``
    header caps the request's budget end-to-end: the deadline travels into
    the batcher, expired work is rejected (504) instead of scored, and the
    handler waits on all futures under one shared deadline — an N-row
    request can never wait N × timeout.
``GET /healthz``
    Readiness JSON: ``"ok"`` (200) while accepting work, ``"degraded"``
    (503) while the circuit breaker is open, ``"draining"`` (503) once
    shutdown began — plus the artifact digest, fleet roles (primary /
    shadow / challenger versions), backend pin, queue depth, admission and
    breaker snapshots.
``GET /metrics`` / ``GET /metrics.json``
    Prometheus text exposition v0.0.4, or the JSON snapshot.
``GET /openapi.json``
    The server's contract as an OpenAPI 3.0 document, derived from the live
    schema (see :mod:`repro.serving.openapi`).
``POST /admin/reload``
    Atomic hot-swap: load + digest-verify a new artifact (by path, or by
    version when a model registry is attached), then drain-and-switch the
    primary engine with zero dropped requests.

The no-500s contract: malformed input — invalid JSON, wrong shapes, bad
headers, unknown fields, any parse-time surprise — is always answered with
a 4xx.  A 5xx can only mean the *server* failed (model error, shutdown
race), and the fuzz harness (tests/test_serving_fuzz.py) holds the line.

Shutdown is graceful by construction: :meth:`ScoringServer.close` stops the
accept loop, waits for in-flight handler threads, and drains every engine
so each accepted request is answered before the process exits.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..obs import (
    MetricRegistry,
    ModelSwappedEvent,
    ObserverList,
    RequestShedEvent,
)
from ..obs.trace import Tracer
from .admission import (
    AdmissionController,
    CircuitBreaker,
    DeadlineExceededError,
    ShedError,
    parse_deadline_ms,
)
from .artifact import ArtifactError
from .batcher import EngineClosedError, ScoringEngine
from .openapi import build_openapi
from .registry import ModelRegistry, RegistryError
from .router import ModelRouter
from .session import InferenceSession, rows_to_batch

__all__ = ["ScoringServer"]

_MAX_BODY_BYTES = 32 * 1024 * 1024
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _GracefulHTTPServer(ThreadingHTTPServer):
    # Wait for in-flight handler threads at server_close so a drain never
    # abandons a request that already reached a handler.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class ScoringServer:
    """Own a model router plus an HTTP front end; start/close from any thread.

    ``admission`` (bounded in-flight budget → 429s) and ``breaker``
    (failure-rate circuit → degraded 503s) are optional; without them the
    server behaves like the pre-fleet single-model endpoint.  ``registry``
    (a :class:`ModelRegistry`) enables ``/admin/reload`` by version name.
    """

    def __init__(self, session: InferenceSession, *, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 64,
                 max_wait_ms: float = 2.0, num_workers: int = 1,
                 cache_size: int = 4096,
                 registry: MetricRegistry | None = None,
                 observers=None, request_timeout_s: float = 30.0,
                 tracer: Tracer | None = None,
                 version: str = "v0",
                 admission: AdmissionController | None = None,
                 breaker: CircuitBreaker | None = None,
                 model_registry: ModelRegistry | None = None):
        self.tracer = tracer
        self.metrics = registry if registry is not None else MetricRegistry()
        self._engine_observers = list(observers or [])
        self._observers = ObserverList.build(self._engine_observers)
        self._engine_knobs = {
            "max_batch_size": max_batch_size, "max_wait_ms": max_wait_ms,
            "num_workers": num_workers, "cache_size": cache_size,
        }
        self.router = ModelRouter(self._build_engine, metrics=self.metrics)
        self.router.deploy_primary(session, version)
        self.admission = admission
        self.breaker = breaker
        self.model_registry = model_registry
        self.request_timeout_s = request_timeout_s
        self._reload_lock = threading.Lock()
        self._started_at = time.monotonic()
        self._httpd = _GracefulHTTPServer((host, port), _make_handler(self))
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._closed = False

    def _build_engine(self, session: InferenceSession) -> ScoringEngine:
        return ScoringEngine(
            session, registry=self.metrics,
            observers=self._engine_observers, tracer=self.tracer,
            **self._engine_knobs)

    # Back-compat accessors: pre-fleet callers see the primary deployment.
    @property
    def session(self) -> InferenceSession:
        return self.router.primary_session

    @property
    def engine(self) -> ScoringEngine:
        return self.router.primary_engine

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ScoringServer":
        """Run the accept loop in a background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="scoring-http", daemon=True)
        self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting, finish in-flight handlers, drain every engine."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()          # stop the accept loop
        self._httpd.server_close()      # waits for handler threads
        self.router.close(drain=drain)  # then flush whatever they queued
        if self._thread is not None:
            self._thread.join()

    # ------------------------------------------------------------------
    # Fleet operations
    # ------------------------------------------------------------------
    def reload(self, *, artifact: str | Path | None = None,
               version: str | None = None) -> dict[str, Any]:
        """Hot-swap the primary model with zero dropped requests.

        Pass ``artifact`` (a path to an exported artifact directory) or
        ``version`` (requires an attached model registry).  The incoming
        artifact is fully digest-verified at load and must have the same
        feature schema as the current primary — requests validated against
        one schema must stay scorable after the swap.
        """
        if (artifact is None) == (version is None):
            raise ValueError("pass exactly one of artifact= or version=")
        if version is not None:
            if self.model_registry is None:
                raise RegistryError(
                    "no model registry attached; reload by artifact path")
            artifact = self.model_registry.path(version)
        label = version if version is not None else f"swap-{int(time.time())}"
        with self._reload_lock:
            incoming = InferenceSession.load(artifact)
            current = self.session
            if incoming.schema != current.schema:
                raise ArtifactError(
                    f"incoming artifact's schema {incoming.schema.name!r} "
                    f"differs from the serving schema "
                    f"{current.schema.name!r}; hot swap requires "
                    f"schema-compatible artifacts")
            swap = self.router.deploy_primary(incoming, label)
        swap["digest"] = incoming.artifact_digest()
        self._observers.on_model_swapped(ModelSwappedEvent(
            old_version=swap["old_version"], new_version=label,
            digest=swap["digest"], swap_ms=swap["swap_ms"]))
        return swap

    def shed(self, reason: str, retry_after_s: float | None = None) -> None:
        """Count + narrate one shed decision (429/503 fast-fail)."""
        self.metrics.counter("serve.shed").inc()
        self.metrics.counter(f"serve.shed.{reason}").inc()
        self._observers.on_request_shed(RequestShedEvent(
            reason=reason, queue_depth=self.engine.queue_depth(),
            retry_after_s=retry_after_s))

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def health(self) -> tuple[int, dict[str, Any]]:
        """(status_code, payload) for ``GET /healthz``.

        Draining (shutdown in progress) and degraded (circuit breaker
        open) both report 503 so load balancers stop routing; everything
        else is 200.
        """
        draining = self.engine.closed
        degraded = (self.breaker is not None
                    and self.breaker.state != CircuitBreaker.CLOSED)
        if draining:
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        payload: dict[str, Any] = {
            "status": status,
            "ready": status == "ok",
            "draining": draining,
            "queue_depth": self.engine.queue_depth(),
            "uptime_s": self.uptime_s(),
            "artifact_digest": self.session.artifact_digest(),
            "fleet": self.router.describe(),
            **self.session.describe(),
        }
        if self.breaker is not None:
            payload["breaker"] = self.breaker.snapshot()
        if self.admission is not None:
            payload["admission"] = self.admission.snapshot()
        return (503 if status != "ok" else 200), payload

    def _update_scrape_gauges(self) -> None:
        """Refresh point-in-time gauges so both exposition formats carry
        current queue/cache/uptime state at scrape time."""
        registry = self.metrics
        registry.gauge("serve.uptime_seconds").set(self.uptime_s())
        registry.gauge("serve.queue_depth_current").set(
            self.engine.queue_depth())
        registry.gauge("serve.cache_size").set(len(self.engine.cache))
        registry.gauge("serve.cache_capacity").set(
            self.engine.cache.capacity)
        if self.admission is not None:
            registry.gauge("serve.admission_inflight").set(
                self.admission.inflight)
        if self.breaker is not None:
            registry.gauge("serve.breaker_open").set(
                0.0 if self.breaker.state == CircuitBreaker.CLOSED else 1.0)

    def metrics_json(self) -> dict[str, Any]:
        self._update_scrape_gauges()
        stats = self.engine.stats()
        stats["uptime_s"] = self.uptime_s()
        stats["fleet"] = self.router.describe()
        return stats

    def metrics_prometheus(self) -> str:
        self._update_scrape_gauges()
        return self.metrics.render_prometheus()

    def openapi(self) -> dict[str, Any]:
        return build_openapi(self.session, server_url=self.url)

    def __enter__(self) -> "ScoringServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)


def _make_handler(server: ScoringServer):
    registry = server.metrics

    def count_request(endpoint: str, status: int) -> None:
        registry.counter(f"serve.http.{endpoint}.requests").inc()
        if status >= 400:
            registry.counter(f"serve.http.{endpoint}.errors").inc()

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The serving engine has its own telemetry; per-request stderr lines
        # from the stdlib handler would just interleave across threads.
        def log_message(self, format: str, *args) -> None:
            pass

        def _send(self, status: int, body: bytes, content_type: str,
                  extra_headers: dict[str, str] | None = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _reply(self, status: int, payload: dict[str, Any],
                   endpoint: str | None = None,
                   extra_headers: dict[str, str] | None = None) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._send(status, body, "application/json",
                       extra_headers=extra_headers)
            if endpoint is not None:
                count_request(endpoint, status)

        def _wants_json(self) -> bool:
            return "application/json" in self.headers.get("Accept", "")

        def do_GET(self) -> None:
            try:
                self._route_get()
            except (BrokenPipeError, ConnectionError):
                raise
            except Exception as exc:  # no-500s: an unparseable request
                self._reply(400, {"error": f"unprocessable request: "
                                           f"{exc!r}"}, endpoint="unknown")

        def _route_get(self) -> None:
            if self.path == "/healthz":
                status, payload = server.health()
                self._reply(status, payload, endpoint="healthz")
            elif self.path == "/metrics.json" or (
                    self.path == "/metrics" and self._wants_json()):
                self._reply(200, server.metrics_json(), endpoint="metrics")
            elif self.path == "/metrics":
                body = server.metrics_prometheus().encode("utf-8")
                self._send(200, body, _PROMETHEUS_CONTENT_TYPE)
                count_request("metrics", 200)
            elif self.path == "/openapi.json":
                self._reply(200, server.openapi(), endpoint="openapi")
            else:
                self._reply(404, {"error": f"no route {self.path}"},
                            endpoint="unknown")

        def do_POST(self) -> None:
            try:
                self._route_post()
            except (BrokenPipeError, ConnectionError):
                raise
            except Exception as exc:  # no-500s: an unparseable request
                self._reply(400, {"error": f"unprocessable request: "
                                           f"{exc!r}"}, endpoint="unknown")

        def _route_post(self) -> None:
            if self.path == "/admin/reload":
                self._handle_reload()
                return
            if self.path != "/score":
                self._reply(404, {"error": f"no route {self.path}"},
                            endpoint="unknown")
                return
            tracer = server.tracer
            if tracer is None:
                self._handle_score(None, None, {})
                return
            ingress = tracer.make_context()
            start = time.monotonic()
            # The handler annotates attrs in place (model_version once the
            # router picks the scoring deployment).
            attrs: dict[str, Any] = {"endpoint": "score"}
            status = self._handle_score(tracer, ingress, attrs)
            attrs["status"] = status
            tracer.record_span(
                "http.request", ingress, start, time.monotonic(),
                span_id=ingress.span_id, parent_id=None, attrs=attrs)

        def _read_json_body(self) -> tuple[Any | None, int | None]:
            """(payload, None) on success, (None, status-already-sent)."""
            def reply(status: int, payload: dict[str, Any]) -> int:
                self._reply(status, payload, endpoint="score")
                return status

            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                return None, reply(411, {"error": "invalid Content-Length"})
            if length <= 0:
                return None, reply(411, {"error": "Content-Length required"})
            if length > _MAX_BODY_BYTES:
                return None, reply(413, {"error": "request body too large"})
            try:
                payload = json.loads(self.rfile.read(length))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return None, reply(400, {"error": f"invalid JSON: {exc}"})
            return payload, None

        def _handle_reload(self) -> None:
            payload, sent = self._read_json_body()
            if sent is not None:
                return
            if not isinstance(payload, dict) or not (
                    isinstance(payload.get("artifact"), str)
                    ^ isinstance(payload.get("version"), str)):
                self._reply(400, {"error": "body must set exactly one of "
                                           '"artifact" (path) or "version" '
                                           "(registry name), as a string"},
                            endpoint="reload")
                return
            try:
                swap = server.reload(artifact=payload.get("artifact"),
                                     version=payload.get("version"))
            except (ArtifactError, RegistryError, OSError) as exc:
                self._reply(409, {"error": f"reload rejected: {exc}"},
                            endpoint="reload")
                return
            self._reply(200, {"status": "swapped", **swap},
                        endpoint="reload")

        def _handle_score(self, tracer, ingress,
                          span_attrs: dict[str, Any]) -> int:
            def reply(status: int, payload: dict[str, Any],
                      extra_headers: dict[str, str] | None = None) -> int:
                self._reply(status, payload, endpoint="score",
                            extra_headers=extra_headers)
                return status

            start = time.monotonic()
            # Body first, even when about to shed: leaving unread bytes on
            # the socket would desync a keep-alive connection.
            payload, sent = self._read_json_body()
            if sent is not None:
                return sent
            breaker = server.breaker
            if breaker is not None and not breaker.allow():
                server.shed("breaker_open")
                return reply(503, {"error": "circuit breaker open: the "
                                            "model is failing; retry later"},
                             extra_headers={"Retry-After":
                                            f"{breaker.cooldown_s:.1f}"})
            try:
                deadline_ms = parse_deadline_ms(
                    self.headers.get("X-Deadline-Ms"))
            except ValueError as exc:
                return reply(400, {"error": str(exc)})
            rows = payload.get("rows") if isinstance(payload, dict) else None
            if rows is None and isinstance(payload, dict):
                rows = [payload]        # single-row shorthand
            if not isinstance(rows, list) or not rows:
                return reply(400, {"error": "body must be a row object or "
                                            '{"rows": [...]} with >= 1 row'})
            try:
                batch = rows_to_batch(server.session.schema, rows)
            except (ValueError, TypeError) as exc:
                return reply(400, {"error": str(exc)})
            # One end-to-end budget for the whole request: the server cap,
            # shortened by the client's X-Deadline-Ms when present.  The
            # deadline rides into the batcher (expired rows are rejected
            # unscored) and bounds the shared wait below.
            budget_s = server.request_timeout_s
            if deadline_ms is not None:
                budget_s = min(budget_s, deadline_ms / 1000.0)
            deadline = start + budget_s
            admission = server.admission
            if admission is not None:
                try:
                    admission.acquire(len(batch))
                except ShedError as exc:
                    server.shed("queue_full", exc.retry_after_s)
                    return reply(429, {"error": str(exc)},
                                 extra_headers={"Retry-After":
                                                f"{exc.retry_after_s:.1f}"})
            try:
                return self._score_admitted(reply, batch, deadline, ingress,
                                            breaker, span_attrs)
            finally:
                if admission is not None:
                    admission.release(len(batch))

        def _score_admitted(self, reply, batch, deadline: float, ingress,
                            breaker, span_attrs: dict[str, Any]) -> int:
            session = server.session
            futures = []
            try:
                router = server.router
                version = None
                for i in range(len(batch)):
                    future, version = router.submit(
                        batch.categorical[i], batch.sequences[i],
                        batch.mask[i], trace_parent=ingress,
                        deadline=deadline)
                    futures.append(future)
                if version is not None:
                    span_attrs["model_version"] = version
                logits = []
                for f in futures:
                    remaining = max(0.0, deadline - time.monotonic())
                    logits.append(f.result(timeout=remaining))
            except EngineClosedError:
                ScoringEngine.abandon(futures)
                return reply(503, {"error": "server is shutting down"})
            except DeadlineExceededError:
                ScoringEngine.abandon(futures)
                server.metrics.counter("serve.deadline_504").inc()
                return reply(504, {"error": "deadline exceeded before "
                                            "scoring finished"})
            except (TimeoutError, FutureTimeoutError):
                # concurrent.futures.TimeoutError only aliases the builtin
                # from Python 3.11; catch both for the 3.10 CI lane.
                # Cancel what is still queued so no worker scores rows this
                # handler already stopped waiting for.
                ScoringEngine.abandon(futures)
                if breaker is not None:
                    breaker.record(False)
                return reply(504, {"error": "scoring timed out"})
            except Exception as exc:  # model failure surfaced via futures
                ScoringEngine.abandon(futures)
                if breaker is not None:
                    breaker.record(False)
                return reply(500, {"error": f"scoring failed: {exc!r}"})
            if breaker is not None:
                breaker.record(True)
            probs = session.probabilities(logits)
            return reply(200, {"model": session.model_name,
                               "model_version": version,
                               "logits": [float(v) for v in logits],
                               "probabilities": [float(p) for p in probs]})

    return Handler
