"""Dynamic micro-batching: coalesce single-row requests into model forwards.

Online traffic arrives one row at a time, but the numpy substrate amortises
per-call overhead across rows, so the engine queues incoming requests and
flushes them as one forward under a classic dual-trigger policy: a batch goes
out when it reaches ``max_batch_size`` rows **or** when its oldest request
has waited ``max_wait_ms`` — whichever comes first.  ``num_workers`` threads
flush concurrently.

An LRU cache in front of the queue short-circuits repeated feature rows:
the key is a SHA-256 over the row's exact byte content (categorical ids,
sequence ids, and mask — everything the logit depends on), so a cache hit is
guaranteed to return the same logit the forward would have produced.  Thanks
to the deterministic blocked forward (:mod:`repro.serving.forward`), cached
and freshly-computed scores are bit-identical, so cache state can never
change a response.

Every request resolves exactly once: with the logit, or with the error that
prevented it (engine closed without drain, model failure).  ``close`` with
``drain=True`` — the SIGTERM path — stops accepting new work, flushes the
queue, and joins the workers; nothing in flight is dropped.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Iterable, Sequence

import numpy as np

from ..data.batching import Batch
from ..obs import (
    BatchFlushedEvent,
    MetricRegistry,
    ObserverList,
    RequestCompletedEvent,
    RequestReceivedEvent,
)
from ..obs.trace import SpanContext, Tracer
from .admission import DeadlineExceededError

__all__ = ["EngineClosedError", "ScoringEngine", "LRUCache", "row_key"]


class EngineClosedError(RuntimeError):
    """Raised when submitting to (or aborted by) a closed engine."""


def row_key(categorical: np.ndarray, sequences: np.ndarray,
            mask: np.ndarray) -> bytes:
    """Cache key: digest of the full feature row's canonical bytes.

    Hashing everything the model reads (not just the history) makes a hit
    sound by construction — two requests share a key only if their logits
    are provably identical.
    """
    h = hashlib.sha256()
    for array, dtype in ((categorical, np.int64), (sequences, np.int64),
                         (mask, np.bool_)):
        canonical = np.ascontiguousarray(array, dtype=dtype)
        h.update(str(canonical.shape).encode())
        h.update(canonical.tobytes())
    return h.digest()


class LRUCache:
    """Thread-safe bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[bytes, float] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: bytes) -> float | None:
        with self._lock:
            if key not in self._entries:
                return None
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: bytes, value: float) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Request:
    __slots__ = ("request_id", "categorical", "sequences", "mask", "key",
                 "future", "enqueued_at", "trace", "trace_parent_id",
                 "deadline")

    def __init__(self, request_id: int, categorical, sequences, mask,
                 key: bytes | None,
                 trace: SpanContext | None = None,
                 trace_parent_id: str | None = None,
                 deadline: float | None = None):
        self.request_id = request_id
        self.categorical = categorical
        self.sequences = sequences
        self.mask = mask
        self.key = key
        # Explicit span-context handoff across the queue boundary: the
        # worker that flushes this request emits its spans retroactively.
        self.trace = trace
        self.trace_parent_id = trace_parent_id
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()
        # Absolute monotonic deadline; a request still queued past it is
        # rejected by the flushing worker instead of scored.
        self.deadline = deadline


class ScoringEngine:
    """Micro-batched scoring over an :class:`InferenceSession`-like scorer.

    ``session`` needs a single method, ``score_batch(Batch) -> np.ndarray``
    of per-row logits; tests substitute lightweight stubs.  Telemetry flows
    into an optional :class:`MetricRegistry` (latency / batch-size /
    queue-depth histograms, request and cache counters) and the optional
    observers receive the three serving events.
    """

    def __init__(self, session, *, max_batch_size: int = 64,
                 max_wait_ms: float = 2.0, num_workers: int = 1,
                 cache_size: int = 4096,
                 registry: MetricRegistry | None = None,
                 observers: Iterable | None = None,
                 tracer: Tracer | None = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.session = session
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.cache = LRUCache(cache_size)
        self.registry = registry if registry is not None else MetricRegistry()
        # Optional request tracing; None keeps the hot path at a single
        # attribute load + None check per request.
        self.tracer = tracer
        self._observers = ObserverList.build(list(observers or []))
        self._obs_lock = threading.Lock()
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._next_id = 0
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"scoring-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit_row(self, categorical: np.ndarray, sequences: np.ndarray,
                   mask: np.ndarray,
                   trace_parent: SpanContext | None = None,
                   deadline: float | None = None) -> Future:
        """Queue one feature row; the future resolves to its logit (float).

        ``trace_parent`` links the request's spans under an ingress span
        (the HTTP handler's); with a tracer but no parent, the request
        starts its own trace (head-sampled).

        ``deadline`` is an absolute ``time.monotonic()`` instant; if it
        passes while the row is still queued, the future fails with
        :class:`DeadlineExceededError` instead of being scored — expired
        work is shed, not computed.  Callers may also ``cancel()`` the
        future of a row they stopped waiting for; cancelled rows are
        dropped from the batch before the forward runs.
        """
        key = (row_key(categorical, sequences, mask)
               if self.cache.capacity else None)
        tracer = self.tracer
        trace = trace_parent_id = None
        if tracer is not None:
            context = tracer.make_context(trace_parent)
            if context.sampled:
                trace = context
                trace_parent_id = (trace_parent.span_id
                                   if trace_parent is not None else None)
        with self._cond:
            if self._closing:
                raise EngineClosedError("scoring engine is shut down")
            self._next_id += 1
            request = _Request(self._next_id, categorical, sequences, mask,
                               key, trace=trace,
                               trace_parent_id=trace_parent_id,
                               deadline=deadline)
            cached = self.cache.get(key) if key is not None else None
            depth = len(self._queue)
            if cached is None:
                self._queue.append(request)
                depth += 1
                self._cond.notify()
        trace_id = trace.trace_id if trace is not None else None
        self.registry.counter("serve.requests").inc()
        self._emit("on_request_received", RequestReceivedEvent(
            request_id=request.request_id, cached=cached is not None,
            queue_depth=depth, trace_id=trace_id))
        if cached is not None:
            self.registry.counter("serve.cache.hits").inc()
            done = time.monotonic()
            latency_ms = (done - request.enqueued_at) * 1000.0
            self._record_latency(latency_ms)
            self._set_hit_ratio()
            if trace is not None:
                tracer.record_span(
                    "serve.request", trace, request.enqueued_at, done,
                    span_id=trace.span_id, parent_id=trace_parent_id,
                    attrs={"request_id": request.request_id, "cached": True})
            request.future.set_result(cached)
            self._emit("on_request_completed", RequestCompletedEvent(
                request_id=request.request_id, latency_ms=latency_ms,
                cached=True, batch_size=0, trace_id=trace_id))
        else:
            self.registry.counter("serve.cache.misses").inc()
            self._set_hit_ratio()
        return request.future

    def score(self, rows: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
              timeout: float | None = None) -> np.ndarray:
        """Blocking convenience: submit rows, wait, return logits in order.

        ``timeout`` bounds the *whole call*, not each row: one shared
        deadline is computed up front and every future gets only the time
        remaining, so an N-row request can never wait N × timeout.  On
        timeout the still-pending futures are abandoned (cancelled or
        failed) so no worker scores rows this caller stopped waiting for.
        """
        futures = [self.submit_row(*row) for row in rows]
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        try:
            results = []
            for f in futures:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                results.append(f.result(timeout=remaining))
        except BaseException:
            self.abandon(futures)
            raise
        return np.array(results, dtype=np.float64)

    @staticmethod
    def abandon(futures: Iterable[Future]) -> None:
        """Release futures the caller no longer awaits.

        Pending ones are cancelled (the flushing worker drops them before
        the forward, so abandoned rows cost no model time); already-running
        or resolved ones are left to finish — their results are simply
        discarded.  Exceptions held by resolved futures are consumed so
        they are not logged as never-retrieved.
        """
        for f in futures:
            if not f.cancel() and f.done():
                f.exception()  # mark retrieved; discard

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._flush(batch)

    def _collect(self) -> list[_Request] | None:
        """Block until a batch is due under the size/wait policy."""
        with self._cond:
            while not self._queue:
                if self._closing:
                    return None
                self._cond.wait()
            first = self._queue.popleft()
            batch = [first]
            deadline = first.enqueued_at + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - time.monotonic()
                # Draining: ship what we have, don't wait out the window.
                if self._closing or remaining <= 0:
                    break
                self._cond.wait(remaining)
            return batch

    def _flush(self, batch: list[_Request]) -> None:
        flush_start = time.monotonic()
        wait_ms = (flush_start - batch[0].enqueued_at) * 1000.0
        with self._cond:
            depth = len(self._queue)
        tracer = self.tracer
        batch = self._admit_batch(batch, flush_start)
        if not batch:
            return
        oldest_trace = batch[0].trace
        try:
            rows = Batch(
                categorical=np.stack([r.categorical for r in batch]),
                sequences=np.stack([r.sequences for r in batch]),
                mask=np.stack([r.mask for r in batch]),
                labels=np.zeros(len(batch), dtype=np.float64),
            )
            forward_start = time.monotonic()
            logits = np.asarray(self.session.score_batch(rows),
                                dtype=np.float64)
            forward_end = time.monotonic()
            forward_ms = (forward_end - forward_start) * 1000.0
            if logits.shape != (len(batch),):
                raise RuntimeError(
                    f"scorer returned shape {logits.shape} for a batch of "
                    f"{len(batch)} rows")
        except BaseException as exc:  # resolve every request, then continue
            failed_at = time.monotonic()
            for request in batch:
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(exc)
                if request.trace is not None:
                    tracer.record_span(
                        "serve.request", request.trace, request.enqueued_at,
                        failed_at, span_id=request.trace.span_id,
                        parent_id=request.trace_parent_id,
                        attrs={"request_id": request.request_id,
                               "error": repr(exc)})
                self._emit("on_request_completed", RequestCompletedEvent(
                    request_id=request.request_id,
                    latency_ms=(failed_at - request.enqueued_at) * 1000.0,
                    cached=False, batch_size=len(batch), error=repr(exc),
                    trace_id=(request.trace.trace_id
                              if request.trace is not None else None)))
            self.registry.counter("serve.errors").inc(len(batch))
            return
        if oldest_trace is not None:
            # Micro-batch assembly is shared work; attribute it once, to
            # the trace of the request that triggered the flush.
            tracer.record_span("serve.batch_assemble", oldest_trace,
                               flush_start, forward_start,
                               attrs={"batch_size": len(batch)})
        self.registry.counter("serve.batches").inc()
        self.registry.histogram("serve.batch_size").record(len(batch))
        self.registry.histogram("serve.queue_depth").record(depth)
        self.registry.histogram("serve.forward_ms").record(forward_ms)
        self._emit("on_batch_flushed", BatchFlushedEvent(
            batch_size=len(batch), queue_depth=depth, wait_ms=wait_ms,
            forward_ms=forward_ms,
            trace_id=(oldest_trace.trace_id if oldest_trace is not None
                      else None)))
        done = time.monotonic()
        queue_wait_hist = self.registry.fixed_histogram(
            "serve.queue_wait_seconds")
        for request, logit in zip(batch, logits):
            value = float(logit)
            if request.key is not None:
                self.cache.put(request.key, value)
            latency_ms = (done - request.enqueued_at) * 1000.0
            queue_wait_hist.record(flush_start - request.enqueued_at)
            self._record_latency(latency_ms)
            if request.trace is not None:
                trace = request.trace
                tracer.record_span("serve.queue_wait", trace,
                                   request.enqueued_at, flush_start)
                tracer.record_span("serve.forward", trace, forward_start,
                                   forward_end,
                                   attrs={"batch_size": len(batch)})
                tracer.record_span(
                    "serve.request", trace, request.enqueued_at, done,
                    span_id=trace.span_id,
                    parent_id=request.trace_parent_id,
                    attrs={"request_id": request.request_id,
                           "batch_size": len(batch)})
            if request.future.set_running_or_notify_cancel():
                request.future.set_result(value)
            self._emit("on_request_completed", RequestCompletedEvent(
                request_id=request.request_id, latency_ms=latency_ms,
                cached=False, batch_size=len(batch),
                trace_id=(request.trace.trace_id
                          if request.trace is not None else None)))

    def _admit_batch(self, batch: list[_Request],
                     now: float) -> list[_Request]:
        """Drop abandoned rows and fail expired ones before the forward.

        Cancelled futures (caller gave up — HTTP timeout, closed
        connection) are silently dropped: scoring them would spend model
        time on answers nobody reads.  Rows whose deadline has passed are
        resolved with :class:`DeadlineExceededError` — rejected, not
        scored — so a backed-up queue sheds its stale tail instead of
        serving every request late.
        """
        live: list[_Request] = []
        tracer = self.tracer
        for request in batch:
            if request.future.cancelled():
                self.registry.counter("serve.abandoned").inc()
                continue
            if request.deadline is not None and now > request.deadline:
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(DeadlineExceededError(
                        f"deadline expired {(now - request.deadline) * 1000.0:.1f}ms "
                        f"before the batch flushed"))
                self.registry.counter("serve.deadline_expired").inc()
                latency_ms = (now - request.enqueued_at) * 1000.0
                if request.trace is not None:
                    tracer.record_span(
                        "serve.request", request.trace, request.enqueued_at,
                        now, span_id=request.trace.span_id,
                        parent_id=request.trace_parent_id,
                        attrs={"request_id": request.request_id,
                               "error": "deadline_exceeded"})
                self._emit("on_request_completed", RequestCompletedEvent(
                    request_id=request.request_id, latency_ms=latency_ms,
                    cached=False, batch_size=0, error="deadline_exceeded",
                    trace_id=(request.trace.trace_id
                              if request.trace is not None else None)))
                continue
            live.append(request)
        return live

    # ------------------------------------------------------------------
    # Lifecycle and stats
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the engine.  Idempotent.

        ``drain=True`` (the graceful path) lets the workers flush everything
        already accepted before they exit; ``drain=False`` fails pending
        requests with :class:`EngineClosedError` immediately.
        """
        with self._cond:
            self._closing = True
            abandoned = []
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            self._cond.notify_all()
        for request in abandoned:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    EngineClosedError("engine closed before this request "
                                      "was scored"))
        for worker in self._workers:
            worker.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closing

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        """JSON-safe operational snapshot (cache + registry)."""
        snapshot = self.registry.snapshot()
        hits = snapshot.get("serve.cache.hits", {}).get("value", 0.0) or 0.0
        misses = (snapshot.get("serve.cache.misses", {}).get("value", 0.0)
                  or 0.0)
        total = hits + misses
        return {
            "cache": {"size": len(self.cache),
                      "capacity": self.cache.capacity,
                      "hits": int(hits), "misses": int(misses),
                      "hit_rate": (hits / total) if total else None},
            "queue_depth": self.queue_depth(),
            "metrics": snapshot,
        }

    def _record_latency(self, latency_ms: float) -> None:
        """Both latency views: reservoir quantiles (run summaries) and
        fixed Prometheus buckets (fleet aggregation)."""
        self.registry.histogram("serve.latency_ms").record(latency_ms)
        self.registry.fixed_histogram("serve.latency_seconds").record(
            latency_ms / 1000.0)

    def _set_hit_ratio(self) -> None:
        hits = self.registry.counter("serve.cache.hits").value
        misses = self.registry.counter("serve.cache.misses").value
        total = hits + misses
        if total:
            self.registry.gauge("serve.cache_hit_ratio").set(hits / total)

    def _emit(self, hook: str, event) -> None:
        if not self._observers:
            return
        with self._obs_lock:
            getattr(self._observers, hook)(event)

    def __enter__(self) -> "ScoringEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)
