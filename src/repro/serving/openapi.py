"""OpenAPI 3.0 description of the scoring server's HTTP surface.

The document is *derived from the live session's schema* — array lengths
and vocabulary bounds come from the artifact's :class:`DatasetSchema`, so
the published contract is exactly what ``rows_to_batch`` enforces.  It is
served at ``GET /openapi.json`` and is the ground truth the fuzz harness
(tests/test_serving_fuzz.py) derives its invalid/boundary corpora from, in
the spirit of schemathesis: generate requests the schema forbids, assert
the server answers every one with a 4xx — never a 5xx.
"""

from __future__ import annotations

from typing import Any

__all__ = ["build_openapi"]

OPENAPI_VERSION = "3.0.3"


def _row_schema(schema) -> dict[str, Any]:
    """JSON schema for one feature row under dataset ``schema``."""
    cat_vocab = [spec.vocab_size for spec in schema.categorical]
    seq_vocab = [spec.vocab_size for spec in schema.sequential]
    return {
        "type": "object",
        "required": ["categorical", "sequences", "mask"],
        "additionalProperties": False,
        "properties": {
            "categorical": {
                "type": "array",
                "minItems": schema.num_categorical,
                "maxItems": schema.num_categorical,
                "items": {"type": "integer", "minimum": 0},
                "description": (
                    "One id per categorical field, in schema order; "
                    f"per-field vocab sizes {cat_vocab}."),
            },
            "sequences": {
                "type": "array",
                "minItems": schema.num_sequential,
                "maxItems": schema.num_sequential,
                "items": {
                    "type": "array",
                    "minItems": schema.max_seq_len,
                    "maxItems": schema.max_seq_len,
                    "items": {"type": "integer", "minimum": 0},
                },
                "description": (
                    f"{schema.num_sequential} behaviour sequences of "
                    f"exactly {schema.max_seq_len} ids (front-padded with "
                    f"0); per-field vocab sizes {seq_vocab}."),
            },
            "mask": {
                "type": "array",
                "minItems": schema.max_seq_len,
                "maxItems": schema.max_seq_len,
                "items": {"type": "boolean"},
            },
        },
    }


def _error_response(description: str) -> dict[str, Any]:
    return {"description": description,
            "content": {"application/json": {"schema": {
                "type": "object",
                "required": ["error"],
                "properties": {"error": {"type": "string"}}}}}}


def build_openapi(session, *, server_url: str | None = None) -> dict[str, Any]:
    """The server's contract as an OpenAPI 3.0 document (JSON-safe dict)."""
    row = _row_schema(session.schema)
    score_request = {
        "oneOf": [
            {"type": "object", "required": ["rows"],
             "properties": {"rows": {"type": "array", "minItems": 1,
                                     "items": row}}},
            row,
        ],
    }
    score_ok = {
        "type": "object",
        "required": ["model", "logits", "probabilities"],
        "properties": {
            "model": {"type": "string"},
            "model_version": {"type": "string"},
            "logits": {"type": "array", "items": {"type": "number"}},
            "probabilities": {"type": "array",
                              "items": {"type": "number",
                                        "minimum": 0.0, "maximum": 1.0}},
        },
    }
    document: dict[str, Any] = {
        "openapi": OPENAPI_VERSION,
        "info": {
            "title": "repro scoring server",
            "version": "1",
            "description": (
                f"CTR scoring for model {session.model_name!r} under "
                f"dataset schema {session.schema.name!r}.  Contract: "
                "malformed input is always answered with a 4xx status — "
                "the server never 5xxs on bad requests."),
        },
        "paths": {
            "/score": {
                "post": {
                    "summary": "Score feature rows",
                    "parameters": [{
                        "name": "X-Deadline-Ms",
                        "in": "header",
                        "required": False,
                        "schema": {"type": "number",
                                   "exclusiveMinimum": 0},
                        "description": (
                            "Remaining client budget in milliseconds; "
                            "requests that cannot be scored within it are "
                            "rejected (504), not scored late."),
                    }],
                    "requestBody": {
                        "required": True,
                        "content": {"application/json": {
                            "schema": score_request}},
                    },
                    "responses": {
                        "200": {"description": "Scores in request order",
                                "content": {"application/json": {
                                    "schema": score_ok}}},
                        "400": _error_response(
                            "Malformed body, row, or header"),
                        "404": _error_response("Unknown route"),
                        "411": _error_response(
                            "Missing or invalid Content-Length"),
                        "413": _error_response("Body too large"),
                        "429": _error_response(
                            "Load shed; Retry-After header set"),
                        "503": _error_response(
                            "Draining or circuit breaker open"),
                        "504": _error_response("Deadline exceeded"),
                    },
                },
            },
            "/healthz": {
                "get": {
                    "summary": "Readiness and fleet-state probe",
                    "responses": {
                        "200": {"description": "Ready"},
                        "503": {"description": "Draining or degraded"},
                    },
                },
            },
            "/metrics": {
                "get": {
                    "summary": "Prometheus text exposition (v0.0.4)",
                    "responses": {"200": {"description": "Metrics"}},
                },
            },
            "/metrics.json": {
                "get": {
                    "summary": "JSON metric snapshot",
                    "responses": {"200": {"description": "Metrics"}},
                },
            },
            "/openapi.json": {
                "get": {
                    "summary": "This document",
                    "responses": {"200": {"description": "OpenAPI 3.0"}},
                },
            },
            "/admin/reload": {
                "post": {
                    "summary": "Hot-swap the production artifact",
                    "requestBody": {
                        "required": True,
                        "content": {"application/json": {"schema": {
                            "type": "object",
                            "properties": {
                                "artifact": {"type": "string"},
                                "version": {"type": "string"},
                            }}}},
                    },
                    "responses": {
                        "200": {"description": "Swap completed"},
                        "400": _error_response("Bad reload request"),
                        "409": _error_response(
                            "Artifact failed verification or is "
                            "schema-incompatible"),
                    },
                },
            },
        },
    }
    if server_url:
        document["servers"] = [{"url": server_url}]
    return document
