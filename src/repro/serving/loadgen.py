"""Load generator: drive the scoring engine at a target QPS and measure it.

Open-loop generation — request ``i`` is dispatched at ``start + i/qps``
regardless of how fast earlier requests complete — so a saturated engine
shows up as queue growth and latency inflation rather than as a silently
reduced request rate (the closed-loop failure mode that makes overloaded
systems look healthy).

The report is plain JSON: exact p50/p95/p99 latency over every request (not
a sketch), achieved vs target QPS, the engine's batch-size distribution, and
the cache hit rate.  ``repro bench-serve`` prints it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.batching import CTRDataset
from .batcher import ScoringEngine

__all__ = ["dataset_rows", "build_request_stream", "run_load",
           "RetryPolicy", "run_http_load"]

Row = tuple[np.ndarray, np.ndarray, np.ndarray]


def dataset_rows(dataset: CTRDataset, limit: int | None = None) -> list[Row]:
    """Feature rows of a split in (categorical, sequences, mask) form."""
    n = len(dataset)
    if limit is not None:
        n = min(n, limit)
    return [(dataset.categorical[i], dataset.sequences[i], dataset.mask[i])
            for i in range(n)]


def build_request_stream(num_rows: int, num_requests: int,
                         repeat_fraction: float = 0.0,
                         seed: int = 0) -> list[int]:
    """Row index per request; repeats exercise the engine's LRU cache.

    Each request is, with probability ``repeat_fraction``, a re-send of a
    previously requested row (uniform over the history); otherwise the next
    row in a round-robin over the pool.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    stream: list[int] = []
    fresh = 0
    for _ in range(num_requests):
        if stream and rng.random() < repeat_fraction:
            stream.append(stream[int(rng.integers(0, len(stream)))])
        else:
            stream.append(fresh % num_rows)
            fresh += 1
    return stream


@dataclass
class RetryPolicy:
    """Client-side retry with capped exponential backoff and full jitter.

    Retryable statuses are the ones the server uses for *transient* refusal
    — 429 (shed) and 503 (draining / breaker open) — plus connection-level
    failures.  The backoff for attempt ``k`` is drawn uniformly from
    ``[0, min(max_backoff_s, base_backoff_s * 2**k)]`` ("full jitter"):
    retries from a shed burst decorrelate instead of re-arriving as the
    same thundering herd, which is the difference between backoff that
    relieves an overloaded server and backoff that re-overloads it on a
    schedule.  A server-provided ``Retry-After`` hint is the floor of the
    draw.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    retry_statuses: tuple[int, ...] = (429, 503)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s <= 0 or self.max_backoff_s <= 0:
            raise ValueError("backoff bounds must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._rng_lock = threading.Lock()

    def should_retry(self, attempt: int, status: int | None) -> bool:
        """``status`` is the HTTP code, or ``None`` for connection errors."""
        if attempt >= self.max_retries:
            return False
        return status is None or status in self.retry_statuses

    def backoff_s(self, attempt: int,
                  retry_after_s: float | None = None) -> float:
        ceiling = min(self.max_backoff_s,
                      self.base_backoff_s * (2.0 ** attempt))
        with self._rng_lock:
            delay = float(self._rng.uniform(0.0, ceiling))
        if retry_after_s is not None:
            delay = max(delay, min(retry_after_s, self.max_backoff_s))
        return delay


def _post_score(url: str, body: bytes, timeout_s: float,
                deadline_ms: float | None) -> tuple[int, float | None]:
    """One POST /score; returns (status, Retry-After seconds or None)."""
    headers = {"Content-Type": "application/json"}
    if deadline_ms is not None:
        headers["X-Deadline-Ms"] = f"{deadline_ms:g}"
    request = urllib.request.Request(url + "/score", data=body,
                                     headers=headers, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            resp.read()
            return resp.status, None
    except urllib.error.HTTPError as exc:
        exc.read()
        retry_after = exc.headers.get("Retry-After")
        try:
            return exc.code, (float(retry_after)
                              if retry_after is not None else None)
        finally:
            exc.close()


def run_http_load(url: str, rows: Sequence[Row], *, target_qps: float,
                  num_requests: int, repeat_fraction: float = 0.0,
                  seed: int = 0, timeout_s: float = 30.0,
                  deadline_ms: float | None = None,
                  retry: RetryPolicy | None = None,
                  max_threads: int = 64) -> dict:
    """Open-loop load against a live HTTP server (not the in-process engine).

    Each request runs on its own thread so a slow response never delays the
    dispatch schedule (the open-loop property).  With a :class:`RetryPolicy`
    attached, 429/503 responses and connection errors are retried with
    jittered backoff; the report then separates transport-level outcomes
    (``status_counts``, ``retries``) from request-level ones (``ok`` /
    ``shed`` / ``failed`` / ``dropped``).  ``dropped`` — a request that
    never got *any* HTTP response — is the number that must be zero for a
    hot-swap to count as seamless.
    """
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    stream = build_request_stream(len(rows), num_requests,
                                  repeat_fraction=repeat_fraction, seed=seed)
    bodies = []
    for index in stream:
        categorical, sequences, mask = rows[index]
        bodies.append(json.dumps({"rows": [{
            "categorical": categorical.tolist(),
            "sequences": sequences.tolist(),
            "mask": mask.tolist()}]}).encode("utf-8"))
    latencies = np.full(num_requests, np.nan)
    final_status = np.zeros(num_requests, dtype=np.int64)
    attempts_used = np.zeros(num_requests, dtype=np.int64)
    dropped = np.zeros(num_requests, dtype=bool)
    gate = threading.Semaphore(max_threads)

    def fire(i: int) -> None:
        try:
            sent = time.monotonic()
            attempt = 0
            while True:
                status: int | None
                retry_after = None
                try:
                    status, retry_after = _post_score(
                        url, bodies[i], timeout_s, deadline_ms)
                except (urllib.error.URLError, ConnectionError,
                        TimeoutError, OSError):
                    status = None
                if status == 200:
                    latencies[i] = (time.monotonic() - sent) * 1000.0
                if status is not None:
                    final_status[i] = status
                if retry is None or not retry.should_retry(attempt, status) \
                        or status == 200:
                    break
                time.sleep(retry.backoff_s(attempt, retry_after))
                attempt += 1
            attempts_used[i] = attempt
            dropped[i] = final_status[i] == 0
        finally:
            gate.release()

    interval = 1.0 / target_qps
    start = time.monotonic()
    threads = []
    for i in range(num_requests):
        due = start + i * interval
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        gate.acquire()
        worker = threading.Thread(target=fire, args=(i,), daemon=True)
        worker.start()
        threads.append(worker)
    for worker in threads:
        worker.join(timeout=timeout_s + 10.0)
    wall_s = max(time.monotonic() - start, 1e-9)
    statuses, counts = np.unique(final_status, return_counts=True)
    done = latencies[np.isfinite(latencies)]
    ok = int((final_status == 200).sum())
    report = {
        "requests": num_requests,
        "ok": ok,
        "shed": int(np.isin(final_status, (429,)).sum()),
        "unavailable": int(np.isin(final_status, (503,)).sum()),
        "deadline_exceeded": int(np.isin(final_status, (504,)).sum()),
        "http_5xx": int((final_status >= 500).sum()),
        "dropped": int(dropped.sum()),
        "retries": int(attempts_used.sum()),
        "status_counts": {int(s): int(c) for s, c in zip(statuses, counts)
                          if s != 0},
        "target_qps": float(target_qps),
        "achieved_qps": float(ok / wall_s),
        "wall_time_s": float(wall_s),
        "latency_ms": ({
            "mean": float(done.mean()),
            "p50": float(np.quantile(done, 0.50)),
            "p95": float(np.quantile(done, 0.95)),
            "p99": float(np.quantile(done, 0.99)),
            "max": float(done.max()),
        } if done.size else None),
    }
    return report


def run_load(engine: ScoringEngine, rows: Sequence[Row], *,
             target_qps: float, num_requests: int,
             repeat_fraction: float = 0.0, seed: int = 0,
             timeout_s: float = 120.0) -> dict:
    """Fire ``num_requests`` at ``target_qps`` and return the report dict."""
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    stream = build_request_stream(len(rows), num_requests,
                                  repeat_fraction=repeat_fraction, seed=seed)
    latencies = np.full(num_requests, np.nan)
    completions = np.full(num_requests, np.nan)
    futures = []
    interval = 1.0 / target_qps
    start = time.monotonic()
    for i, row_index in enumerate(stream):
        due = start + i * interval
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sent = time.monotonic()
        future = engine.submit_row(*rows[row_index])

        def on_done(f, i=i, sent=sent):
            now = time.monotonic()
            latencies[i] = (now - sent) * 1000.0
            completions[i] = now

        future.add_done_callback(on_done)
        futures.append(future)
    errors = 0
    for future in futures:
        try:
            future.result(timeout=timeout_s)
        except Exception:
            errors += 1
    done = latencies[np.isfinite(latencies)]
    if done.size == 0:
        raise RuntimeError(f"no request completed within {timeout_s}s")
    wall_s = max(float(np.nanmax(completions)) - start, 1e-9)
    stats = engine.stats()
    batch_hist = stats["metrics"].get("serve.batch_size", {})
    report = {
        "requests": num_requests,
        "completed": int(done.size),
        "errors": errors,
        "target_qps": float(target_qps),
        "achieved_qps": float(done.size / wall_s),
        "wall_time_s": float(wall_s),
        "repeat_fraction": float(repeat_fraction),
        "latency_ms": {
            "mean": float(done.mean()),
            "p50": float(np.quantile(done, 0.50)),
            "p95": float(np.quantile(done, 0.95)),
            "p99": float(np.quantile(done, 0.99)),
            "max": float(done.max()),
        },
        "batch_size": {
            "mean": batch_hist.get("mean"),
            "p50": batch_hist.get("p50"),
            "max": batch_hist.get("max"),
            "batches": batch_hist.get("count", 0),
        },
        "cache": stats["cache"],
    }
    return report
