"""Load generator: drive the scoring engine at a target QPS and measure it.

Open-loop generation — request ``i`` is dispatched at ``start + i/qps``
regardless of how fast earlier requests complete — so a saturated engine
shows up as queue growth and latency inflation rather than as a silently
reduced request rate (the closed-loop failure mode that makes overloaded
systems look healthy).

The report is plain JSON: exact p50/p95/p99 latency over every request (not
a sketch), achieved vs target QPS, the engine's batch-size distribution, and
the cache hit rate.  ``repro bench-serve`` prints it.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..data.batching import CTRDataset
from .batcher import ScoringEngine

__all__ = ["dataset_rows", "build_request_stream", "run_load"]

Row = tuple[np.ndarray, np.ndarray, np.ndarray]


def dataset_rows(dataset: CTRDataset, limit: int | None = None) -> list[Row]:
    """Feature rows of a split in (categorical, sequences, mask) form."""
    n = len(dataset)
    if limit is not None:
        n = min(n, limit)
    return [(dataset.categorical[i], dataset.sequences[i], dataset.mask[i])
            for i in range(n)]


def build_request_stream(num_rows: int, num_requests: int,
                         repeat_fraction: float = 0.0,
                         seed: int = 0) -> list[int]:
    """Row index per request; repeats exercise the engine's LRU cache.

    Each request is, with probability ``repeat_fraction``, a re-send of a
    previously requested row (uniform over the history); otherwise the next
    row in a round-robin over the pool.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    stream: list[int] = []
    fresh = 0
    for _ in range(num_requests):
        if stream and rng.random() < repeat_fraction:
            stream.append(stream[int(rng.integers(0, len(stream)))])
        else:
            stream.append(fresh % num_rows)
            fresh += 1
    return stream


def run_load(engine: ScoringEngine, rows: Sequence[Row], *,
             target_qps: float, num_requests: int,
             repeat_fraction: float = 0.0, seed: int = 0,
             timeout_s: float = 120.0) -> dict:
    """Fire ``num_requests`` at ``target_qps`` and return the report dict."""
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    stream = build_request_stream(len(rows), num_requests,
                                  repeat_fraction=repeat_fraction, seed=seed)
    latencies = np.full(num_requests, np.nan)
    completions = np.full(num_requests, np.nan)
    futures = []
    interval = 1.0 / target_qps
    start = time.monotonic()
    for i, row_index in enumerate(stream):
        due = start + i * interval
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sent = time.monotonic()
        future = engine.submit_row(*rows[row_index])

        def on_done(f, i=i, sent=sent):
            now = time.monotonic()
            latencies[i] = (now - sent) * 1000.0
            completions[i] = now

        future.add_done_callback(on_done)
        futures.append(future)
    errors = 0
    for future in futures:
        try:
            future.result(timeout=timeout_s)
        except Exception:
            errors += 1
    done = latencies[np.isfinite(latencies)]
    if done.size == 0:
        raise RuntimeError(f"no request completed within {timeout_s}s")
    wall_s = max(float(np.nanmax(completions)) - start, 1e-9)
    stats = engine.stats()
    batch_hist = stats["metrics"].get("serve.batch_size", {})
    report = {
        "requests": num_requests,
        "completed": int(done.size),
        "errors": errors,
        "target_qps": float(target_qps),
        "achieved_qps": float(done.size / wall_s),
        "wall_time_s": float(wall_s),
        "repeat_fraction": float(repeat_fraction),
        "latency_ms": {
            "mean": float(done.mean()),
            "p50": float(np.quantile(done, 0.50)),
            "p95": float(np.quantile(done, 0.95)),
            "p99": float(np.quantile(done, 0.99)),
            "max": float(done.max()),
        },
        "batch_size": {
            "mean": batch_hist.get("mean"),
            "p50": batch_hist.get("p50"),
            "max": batch_hist.get("max"),
            "batches": batch_hist.get("count", 0),
        },
        "cache": stats["cache"],
    }
    return report
