"""Online inference: frozen artifacts, micro-batched scoring, HTTP serving,
and fleet operations (hot-swap registry, admission control, A/B routing).

The subsystem turns a trained model into production traffic-ready scores
(see DESIGN.md §"Serving" and §"Fleet operations"):

* :mod:`~repro.serving.artifact` — ``export_artifact`` freezes weights +
  manifest (schema, config, per-array SHA-256) to a directory;
  ``load_artifact`` verifies and rebuilds.
* :mod:`~repro.serving.session` — :class:`InferenceSession` scores rows
  strictly in eval mode under ``no_grad`` through the deterministic blocked
  forward, bit-identical to offline ``training.evaluate``.
* :mod:`~repro.serving.batcher` — :class:`ScoringEngine` coalesces
  single-row requests into micro-batches (``max_batch_size`` /
  ``max_wait_ms``) with an LRU row cache, per-request deadlines, and N
  worker threads.
* :mod:`~repro.serving.registry` — :class:`ModelRegistry` stores immutable
  versioned artifacts plus the production/shadow/challenger roles.
* :mod:`~repro.serving.router` — :class:`ModelRouter` hot-swaps the
  production engine with zero dropped requests and routes shadow / A/B
  traffic with per-model metrics.
* :mod:`~repro.serving.admission` — bounded in-flight budget (429 + ``Retry-
  After``), deadline propagation, and a circuit breaker that degrades
  ``/healthz`` under sustained failure.
* :mod:`~repro.serving.server` / :mod:`~repro.serving.loadgen` —
  :class:`ScoringServer` exposes ``POST /score`` + health/metrics/OpenAPI
  + ``/admin/reload`` with graceful SIGTERM drain; ``run_load`` /
  ``run_http_load`` benchmark the engine or a live server
  (``repro bench-serve``), with jittered client-side retry.
* :mod:`~repro.serving.openapi` — the HTTP contract as an OpenAPI 3.0
  document, derived from the live schema; ground truth for the no-500s
  fuzz harness.
"""

from .admission import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    ShedError,
    parse_deadline_ms,
)
from .artifact import (
    ArtifactError,
    export_artifact,
    load_artifact,
    load_manifest,
)
from .batcher import EngineClosedError, LRUCache, ScoringEngine, row_key
from .forward import PARITY_BLOCK, forward_logits, forward_probabilities
from .loadgen import (
    RetryPolicy,
    build_request_stream,
    dataset_rows,
    run_http_load,
    run_load,
)
from .openapi import build_openapi
from .registry import ModelRegistry, RegistryError
from .router import ModelRouter
from .server import ScoringServer
from .session import InferenceSession, rows_to_batch

__all__ = [
    "ArtifactError", "export_artifact", "load_artifact", "load_manifest",
    "EngineClosedError", "LRUCache", "ScoringEngine", "row_key",
    "PARITY_BLOCK", "forward_logits", "forward_probabilities",
    "build_request_stream", "dataset_rows", "run_load", "run_http_load",
    "RetryPolicy",
    "AdmissionController", "CircuitBreaker", "CircuitOpenError",
    "DeadlineExceededError", "ShedError", "parse_deadline_ms",
    "ModelRegistry", "RegistryError", "ModelRouter",
    "build_openapi",
    "ScoringServer",
    "InferenceSession", "rows_to_batch",
]
