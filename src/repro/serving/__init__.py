"""Online inference: frozen artifacts, micro-batched scoring, HTTP serving.

The subsystem turns a trained model into production traffic-ready scores in
four layers (see DESIGN.md §"Serving"):

* :mod:`~repro.serving.artifact` — ``export_artifact`` freezes weights +
  manifest (schema, config, per-array SHA-256) to a directory;
  ``load_artifact`` verifies and rebuilds.
* :mod:`~repro.serving.session` — :class:`InferenceSession` scores rows
  strictly in eval mode under ``no_grad`` through the deterministic blocked
  forward, bit-identical to offline ``training.evaluate``.
* :mod:`~repro.serving.batcher` — :class:`ScoringEngine` coalesces
  single-row requests into micro-batches (``max_batch_size`` /
  ``max_wait_ms``) with an LRU row cache and N worker threads.
* :mod:`~repro.serving.server` / :mod:`~repro.serving.loadgen` —
  :class:`ScoringServer` exposes ``POST /score`` + health/metrics with
  graceful SIGTERM drain; ``run_load`` benchmarks the engine at a target
  QPS (``repro bench-serve``).
"""

from .artifact import (
    ArtifactError,
    export_artifact,
    load_artifact,
    load_manifest,
)
from .batcher import EngineClosedError, LRUCache, ScoringEngine, row_key
from .forward import PARITY_BLOCK, forward_logits, forward_probabilities
from .loadgen import build_request_stream, dataset_rows, run_load
from .server import ScoringServer
from .session import InferenceSession, rows_to_batch

__all__ = [
    "ArtifactError", "export_artifact", "load_artifact", "load_manifest",
    "EngineClosedError", "LRUCache", "ScoringEngine", "row_key",
    "PARITY_BLOCK", "forward_logits", "forward_probabilities",
    "build_request_stream", "dataset_rows", "run_load",
    "ScoringServer",
    "InferenceSession", "rows_to_batch",
]
