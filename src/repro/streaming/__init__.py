"""Streaming online learning: click stream → incremental training →
drift detection → automatic promotion into the serving registry.

See DESIGN.md §14.  The pieces compose left to right:

* :class:`ClickStream` — InterestWorld in temporal mode: timestamped
  micro-batch windows in the offline processed id space, with configurable
  interest drift, cold-user arrival, and window-invariant label-noise bursts;
* :class:`IncrementalTrainer` — prequential (evaluate-then-train) consumer,
  warm-started from a registry artifact, checkpointed per window;
* :class:`DriftMonitor` — PSI/KL on score and label distributions plus a
  Page-Hinkley mean-shift test on prequential logloss;
* :class:`PromotionController` — exports candidates, publishes to the
  :class:`~repro.serving.registry.ModelRegistry`, shadows them on the live
  :class:`~repro.serving.router.ModelRouter`, promotes under guardrails, and
  rolls back regressions caught on probation;
* :class:`OnlineLoop` — the per-window orchestration of all of the above.
"""

from .drift import (
    DriftMonitor,
    DriftMonitorConfig,
    DriftSignal,
    PageHinkley,
    feature_histogram,
    kl_divergence,
    psi,
    score_histogram,
)
from .incremental import IncrementalConfig, IncrementalTrainer, WindowResult
from .loop import OnlineLoop, StreamResult
from .promotion import PromotionConfig, PromotionController
from .stream import ClickStream, StreamConfig, StreamWindow

__all__ = [
    "ClickStream", "StreamConfig", "StreamWindow",
    "DriftMonitor", "DriftMonitorConfig", "DriftSignal", "PageHinkley",
    "psi", "kl_divergence", "score_histogram", "feature_histogram",
    "IncrementalConfig", "IncrementalTrainer", "WindowResult",
    "PromotionConfig", "PromotionController",
    "OnlineLoop", "StreamResult",
]
