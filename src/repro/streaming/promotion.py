"""Promotion controller: learner → registry → shadow → production.

Closes the train→serve cycle.  On schedule (every ``export_every`` windows)
or ``recovery_windows`` after a drift alarm, the controller exports the
incremental learner as a serving artifact, publishes it to the
:class:`~repro.serving.registry.ModelRegistry` (digest-verified, immutable),
and attaches it as the **shadow** on the live
:class:`~repro.serving.router.ModelRouter` — from that point every production
request is also scored by the candidate, off the critical path.

In parallel the controller scores each window with the candidate session
directly (the deterministic blocked forward, bit-identical to what the
shadow engine computes) to build the candidate's prequential record.  After
``shadow_windows`` windows the verdict is taken under guardrails:

* promote when the candidate's mean prequential AUC beats production's by at
  least ``min_auc_gain`` **and** its logloss is within ``max_logloss_ratio``
  of production's — ``registry.promote`` flips the state file atomically and
  ``router.deploy_primary`` hot-swaps the engine with zero dropped requests;
* reject otherwise — the version stays in the registry (immutable history)
  but leaves the shadow slot.

Every promotion opens a **probation** of ``rollback_windows`` windows: if the
new production's prequential AUC falls more than ``rollback_auc_drop`` below
the pre-promotion baseline, the controller demotes it and redeploys the
previous version — the rollback path a bad challenger takes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from ..data.batching import CTRDataset
from ..obs import MetricRegistry, ObserverList, PromotionEvent
from ..serving.artifact import export_artifact
from ..serving.registry import ModelRegistry
from ..serving.router import ModelRouter
from ..serving.session import InferenceSession
from ..training.metrics import EvalResult, auc_score, logloss_score

__all__ = ["PromotionConfig", "PromotionController"]


@dataclass(frozen=True)
class PromotionConfig:
    """Cadence and guardrails of candidate promotion."""

    export_every: int = 10        # scheduled export cadence; 0 = drift-only
    recovery_windows: int = 3     # windows after a drift alarm before export
    shadow_windows: int = 3       # prequential windows before the verdict
    min_auc_gain: float = 0.0
    max_logloss_ratio: float = 1.10
    rollback_windows: int = 3
    rollback_auc_drop: float = 0.05

    def __post_init__(self):
        if self.export_every < 0:
            raise ValueError("export_every must be >= 0")
        if self.recovery_windows < 1:
            raise ValueError("recovery_windows must be >= 1")
        if self.shadow_windows < 1:
            raise ValueError("shadow_windows must be >= 1")
        if self.rollback_windows < 1:
            raise ValueError("rollback_windows must be >= 1")
        if not math.isfinite(self.min_auc_gain):
            raise ValueError("min_auc_gain must be finite")
        if self.max_logloss_ratio < 1.0:
            raise ValueError("max_logloss_ratio must be >= 1.0")
        if self.rollback_auc_drop < 0.0:
            raise ValueError("rollback_auc_drop must be >= 0")


@dataclass
class _Candidate:
    version: str
    session: InferenceSession
    published_window: int
    auc: list[float] = field(default_factory=list)
    logloss: list[float] = field(default_factory=list)


@dataclass
class _Probation:
    version: str
    previous_version: str | None
    promoted_window: int
    baseline_auc: float
    auc: list[float] = field(default_factory=list)


class PromotionController:
    """Drives export → publish → shadow → promote/reject → probation."""

    def __init__(self, registry: ModelRegistry, router: ModelRouter,
                 config: PromotionConfig, *,
                 export_dir: str | Path, model_name: str,
                 observers: ObserverList | None = None,
                 metrics: MetricRegistry | None = None):
        self.registry = registry
        self.router = router
        self.config = config
        self.export_dir = Path(export_dir)
        self.export_dir.mkdir(parents=True, exist_ok=True)
        self.model_name = model_name
        self.observers = observers if observers is not None else ObserverList()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.candidate: _Candidate | None = None
        self.probation: _Probation | None = None
        self._last_export = -1
        self._recovery_due: int | None = None
        self._production_auc: list[float] = []
        self._production_logloss: list[float] = []
        self.events: list[PromotionEvent] = []

    # ------------------------------------------------------------------
    # Signals from the loop
    # ------------------------------------------------------------------
    def note_drift(self, window: int) -> None:
        """A drift alarm fired; schedule a recovery export."""
        if self._recovery_due is None:
            self._recovery_due = window + self.config.recovery_windows

    def step(self, window: int, learner_model, data: CTRDataset,
             production: EvalResult) -> list[PromotionEvent]:
        """Advance the controller by one served window.

        Returns the promotion events emitted this window (the loop rebases
        the drift monitor on ``promoted``/``rollback``).
        """
        emitted: list[PromotionEvent] = []
        self._production_auc.append(production.auc)
        self._production_logloss.append(production.logloss)
        if self.probation is not None:
            emitted += self._watch_probation(window, production)
        if self.candidate is not None:
            emitted += self._shadow_step(window, data)
        if self.candidate is None and self.probation is None:
            if self._export_due(window):
                emitted += self._export(window, learner_model)
        self.events.extend(emitted)
        return emitted

    # ------------------------------------------------------------------
    # Export / publish / shadow
    # ------------------------------------------------------------------
    def _export_due(self, window: int) -> bool:
        if self._recovery_due is not None and window >= self._recovery_due:
            return True
        cfg = self.config
        if cfg.export_every > 0:
            anchor = self._last_export if self._last_export >= 0 else 0
            return window - anchor >= cfg.export_every
        return False

    def _export(self, window: int, learner_model) -> list[PromotionEvent]:
        reason = ("drift_recovery" if self._recovery_due is not None
                  else "schedule")
        path = self.export_dir / f"candidate-w{window}"
        export_artifact(learner_model, path, model_name=self.model_name,
                        metadata={"exported_at_window": window,
                                  "reason": reason})
        version = self.registry.publish(path)
        session = InferenceSession.load(self.registry.path(version))
        self.registry.set_shadow(version)
        self.router.set_shadow(session, version)
        self.candidate = _Candidate(version=version, session=session,
                                    published_window=window)
        self._last_export = window
        self._recovery_due = None
        self.metrics.counter("stream.candidates.published").inc()
        return [self._emit(PromotionEvent(window=window, action="published",
                                          version=version, reason=reason))]

    # ------------------------------------------------------------------
    # Shadow scoring and the verdict
    # ------------------------------------------------------------------
    def _shadow_step(self, window: int, data: CTRDataset
                     ) -> list[PromotionEvent]:
        cand = self.candidate
        probs = cand.session.probabilities(
            cand.session.score_batch(data.as_single_batch()))
        cand.auc.append(auc_score(data.labels, probs))
        cand.logloss.append(logloss_score(data.labels, probs))
        self.metrics.gauge("stream.candidate.auc").set(cand.auc[-1])
        if len(cand.auc) < self.config.shadow_windows:
            return []
        return self._verdict(window)

    def _verdict(self, window: int) -> list[PromotionEvent]:
        cfg = self.config
        cand = self.candidate
        k = len(cand.auc)
        cand_auc = sum(cand.auc) / k
        cand_ll = sum(cand.logloss) / k
        prod_auc = sum(self._production_auc[-k:]) / k
        prod_ll = sum(self._production_logloss[-k:]) / k
        beats_auc = cand_auc >= prod_auc + cfg.min_auc_gain
        within_ll = cand_ll <= prod_ll * cfg.max_logloss_ratio
        if beats_auc and within_ll:
            return [self._promote(window, cand, cand_auc, prod_auc)]
        self.registry.set_shadow(None)
        self.router.set_shadow(None, None)
        self.candidate = None
        self.metrics.counter("stream.candidates.rejected").inc()
        reason = (f"auc {cand_auc:.4f} vs production {prod_auc:.4f} "
                  f"(need +{cfg.min_auc_gain:g})" if not beats_auc else
                  f"logloss {cand_ll:.4f} exceeds "
                  f"{cfg.max_logloss_ratio:g}x production {prod_ll:.4f}")
        return [self._emit(PromotionEvent(
            window=window, action="rejected", version=cand.version,
            reason=reason, challenger_auc=cand_auc, production_auc=prod_auc))]

    def _promote(self, window: int, cand: _Candidate, cand_auc: float,
                 prod_auc: float) -> PromotionEvent:
        previous = self.registry.state().get("production")
        self.registry.promote(cand.version)   # atomic state flip
        self.router.set_shadow(None, None)
        self.router.deploy_primary(cand.session, cand.version)  # zero-drop
        self.candidate = None
        self.probation = _Probation(version=cand.version,
                                    previous_version=previous,
                                    promoted_window=window,
                                    baseline_auc=prod_auc)
        self.metrics.counter("stream.promotions").inc()
        return self._emit(PromotionEvent(
            window=window, action="promoted", version=cand.version,
            previous_version=previous, challenger_auc=cand_auc,
            production_auc=prod_auc))

    def force_promote(self, artifact: str | Path, window: int,
                      reason: str = "forced") -> PromotionEvent:
        """Publish and promote ``artifact`` bypassing every guardrail.

        Test/chaos hook: probation still opens, so a bad forced challenger is
        caught and rolled back by the regression monitor — the path the
        streaming smoke exercises.
        """
        baseline = self._recent_production_auc()
        version = self.registry.publish(artifact)
        session = InferenceSession.load(self.registry.path(version))
        previous = self.registry.state().get("production")
        self.registry.promote(version)
        self.router.deploy_primary(session, version)
        self.probation = _Probation(version=version,
                                    previous_version=previous,
                                    promoted_window=window,
                                    baseline_auc=baseline)
        self.metrics.counter("stream.promotions").inc()
        event = self._emit(PromotionEvent(
            window=window, action="promoted", version=version,
            reason=reason, previous_version=previous,
            production_auc=baseline))
        self.events.append(event)
        return event

    def _recent_production_auc(self) -> float:
        k = min(len(self._production_auc), self.config.shadow_windows)
        if k == 0:
            return 0.5
        return sum(self._production_auc[-k:]) / k

    # ------------------------------------------------------------------
    # Probation / rollback
    # ------------------------------------------------------------------
    def _watch_probation(self, window: int, production: EvalResult
                         ) -> list[PromotionEvent]:
        prob = self.probation
        prob.auc.append(production.auc)
        if len(prob.auc) < self.config.rollback_windows:
            return []
        mean_auc = sum(prob.auc) / len(prob.auc)
        self.probation = None
        if mean_auc >= prob.baseline_auc - self.config.rollback_auc_drop:
            return []   # probation passed quietly
        if prob.previous_version is None:
            return [self._emit(PromotionEvent(
                window=window, action="rejected", version=prob.version,
                reason="regressed on probation but no previous version "
                       "exists to roll back to"))]
        session = InferenceSession.load(
            self.registry.path(prob.previous_version))
        self.registry.promote(prob.previous_version)
        self.router.deploy_primary(session, prob.previous_version)
        self.metrics.counter("stream.rollbacks").inc()
        return [self._emit(PromotionEvent(
            window=window, action="rollback", version=prob.version,
            previous_version=prob.previous_version,
            reason=f"prequential auc {mean_auc:.4f} fell below baseline "
                   f"{prob.baseline_auc:.4f} - "
                   f"{self.config.rollback_auc_drop:g}",
            production_auc=mean_auc))]

    def _emit(self, event: PromotionEvent) -> PromotionEvent:
        self.observers.on_promotion(event)
        return event
