"""The online-learning loop: serve → detect → train → promote, per window.

One :meth:`OnlineLoop.run` call turns a :class:`~repro.streaming.ClickStream`
into a self-updating serving system.  Each window:

1. **serve** — every row is submitted through the live
   :class:`~repro.serving.router.ModelRouter` (so shadow/challenger routing,
   hot swaps, and the zero-drop invariant are all exercised by real traffic);
   resolved probabilities against the window's labels give production's
   prequential AUC/logloss;
2. **detect** — the :class:`~repro.streaming.DriftMonitor` compares the
   served window against its reference and raises ``drift_detected`` events;
   alarms are forwarded to the promotion controller (recovery export) and
   the trainer's anomaly guard stats are reset so a genuine regime change is
   not mistaken for a numerical spike;
3. **train** — the :class:`~repro.streaming.IncrementalTrainer` runs its
   evaluate-then-train step and checkpoints;
4. **promote** — the :class:`~repro.streaming.PromotionController` advances
   (shadow scoring, verdicts, probation); on a promotion or rollback the
   monitor is rebased to the new regime.

Everything is narrated: ``stream.*`` metrics in the shared registry,
``stream.window`` spans (with ``serve``/``drift``/``train``/``promote``
children), and the additive ``stream_window`` / ``drift_detected`` /
``promotion`` events — the JSONL trace is what ``inspect-run --stream``
renders and what the CI smoke job asserts over.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..obs import (
    DriftDetectedEvent,
    MetricRegistry,
    ObserverList,
    StreamWindowEvent,
)
from ..obs.trace import span
from ..serving.forward import sigmoid
from ..serving.router import ModelRouter
from ..training.metrics import EvalResult, auc_score, logloss_score
from .drift import DriftMonitor, feature_histogram
from .incremental import IncrementalTrainer
from .promotion import PromotionController
from .stream import ClickStream

__all__ = ["StreamResult", "OnlineLoop"]


@dataclass
class StreamResult:
    """Aggregate outcome of one loop run (JSON-safe via ``summary()``)."""

    windows: list[dict] = field(default_factory=list)
    drift_signals: list[dict] = field(default_factory=list)
    promotions: list[dict] = field(default_factory=list)
    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    final_production: str | None = None

    @property
    def production_auc(self) -> list[float]:
        return [w["production_auc"] for w in self.windows]

    @property
    def learner_auc(self) -> list[float]:
        return [w["learner_auc"] for w in self.windows]

    def summary(self) -> dict:
        aucs = self.production_auc
        return {
            "windows": len(self.windows),
            "rows": int(sum(w["rows"] for w in self.windows)),
            "submitted": self.submitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "production_auc_mean": (float(np.mean(aucs)) if aucs else None),
            "learner_auc_mean": (float(np.mean(self.learner_auc))
                                 if self.windows else None),
            "drift_signals": len(self.drift_signals),
            "promotions": sum(1 for p in self.promotions
                              if p["action"] == "promoted"),
            "rollbacks": sum(1 for p in self.promotions
                             if p["action"] == "rollback"),
            "final_production": self.final_production,
        }


class OnlineLoop:
    """Wires stream, trainer, drift monitor, router, and controller."""

    def __init__(self, stream: ClickStream, trainer: IncrementalTrainer,
                 router: ModelRouter, controller: PromotionController,
                 monitor: DriftMonitor | None = None, *,
                 observers=None, metrics: MetricRegistry | None = None):
        self.stream = stream
        self.trainer = trainer
        self.router = router
        self.controller = controller
        self.monitor = monitor if monitor is not None else DriftMonitor()
        self.observers = ObserverList.build(observers)
        self.metrics = metrics if metrics is not None else MetricRegistry()

    # ------------------------------------------------------------------
    def _serve_window(self, data) -> tuple[np.ndarray, int, int]:
        """Score every row through the router; returns (probs, ok, dropped).

        Rows whose future resolves with an error (there should be none —
        the zero-drop contract) contribute a neutral 0.5 probability so one
        bad row cannot poison the window's metrics, and are counted.
        """
        futures: list[Future] = []
        for i in range(len(data)):
            future, _ = self.router.submit(
                data.categorical[i], data.sequences[i], data.mask[i])
            futures.append(future)
        probs = np.full(len(futures), 0.5)
        dropped = 0
        for i, future in enumerate(futures):
            try:
                probs[i] = float(sigmoid(np.float64(future.result())))
            except Exception:
                dropped += 1
        return probs, len(futures) - dropped, dropped

    def run(self, start_window: int = 0) -> StreamResult:
        """Consume the stream from ``start_window`` to its end."""
        result = StreamResult()
        for window in self.stream.windows(start=start_window):
            with span("stream.window", attrs={"window": window.index}):
                data = window.data
                with span("stream.serve"):
                    probs, ok, dropped = self._serve_window(data)
                prod_auc = auc_score(data.labels, probs)
                prod_ll = logloss_score(data.labels, probs)
                with span("stream.drift"):
                    item_spec = data.schema.categorical[1]
                    feat_hist = feature_histogram(
                        data.categorical[:, 1], item_spec.vocab_size)
                    signals = self.monitor.update(
                        window.index, probs, data.labels, prod_ll,
                        feature_histogram_=feat_hist)
                for name, value in self.monitor.last_stats.items():
                    self.metrics.gauge(f"stream.drift.{name}").set(value)
                for signal_ in signals:
                    event = DriftDetectedEvent(
                        window=signal_.window, detector=signal_.detector,
                        value=signal_.value, threshold=signal_.threshold)
                    self.observers.on_drift_detected(event)
                    result.drift_signals.append(event.payload())
                    self.metrics.counter("stream.drift.signals").inc()
                    self.metrics.counter(
                        f"stream.drift.alarms.{signal_.detector}").inc()
                if signals:
                    self.controller.note_drift(window.index)
                    if self.trainer.guard is not None:
                        # A regime change legitimately moves the loss mean;
                        # don't let the spike detector fight the recovery.
                        self.trainer.guard.reset_stats()
                with span("stream.train"):
                    learner = self.trainer.process_window(data, window.index)
                with span("stream.promote"):
                    events = self.controller.step(
                        window.index, self.trainer.model, data,
                        EvalResult(auc=prod_auc, logloss=prod_ll))
                for event in events:
                    result.promotions.append(event.payload())
                    if event.action in ("promoted", "rollback"):
                        self.monitor.rebase()

                version = self.router.describe()["primary"]
                self._record_window(result, window, version, prod_auc,
                                    prod_ll, learner, ok, dropped)
        result.final_production = self.router.describe()["primary"]
        return result

    def _record_window(self, result: StreamResult, window, version,
                       prod_auc, prod_ll, learner, ok, dropped) -> None:
        result.submitted += len(window.data)
        result.completed += ok
        result.dropped += dropped
        record = {
            "window": window.index, "timestamp": window.timestamp,
            "rows": len(window.data), "production_version": version,
            "production_auc": float(prod_auc),
            "production_logloss": float(prod_ll),
            "learner_auc": float(learner.auc),
            "learner_logloss": float(learner.logloss),
            "train_loss": float(learner.train_loss),
            "new_users": len(window.new_users),
        }
        result.windows.append(record)
        self.observers.on_stream_window(StreamWindowEvent(
            window=window.index, timestamp=window.timestamp,
            rows=len(window.data), production_version=version,
            production_auc=prod_auc, production_logloss=prod_ll,
            learner_auc=learner.auc, learner_logloss=learner.logloss,
            train_loss=learner.train_loss, new_users=len(window.new_users)))
        m = self.metrics
        m.counter("stream.windows").inc()
        m.counter("stream.rows").inc(len(window.data))
        m.counter("stream.dropped_requests").inc(dropped)
        m.gauge("stream.prequential.production_auc").set(prod_auc)
        m.gauge("stream.prequential.learner_auc").set(learner.auc)
        m.ema("stream.prequential.production_auc_ema").update(prod_auc)
        m.ema("stream.prequential.learner_auc_ema").update(learner.auc)
        m.histogram("stream.window.train_loss").record(learner.train_loss)
