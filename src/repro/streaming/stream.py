"""Click-log stream source: InterestWorld in temporal mode.

Offline, :func:`repro.data.processing.build_ctr_data` freezes a world into
three static splits.  Online, user behaviour keeps arriving — and keeps
*changing*: interests drift, cold users show up with no history, and label
quality degrades in bursts (§I of the paper motivates MISS with exactly this
non-stationarity).  :class:`ClickStream` extends the simulator along the time
axis: it emits timestamped micro-batch windows of (user, candidate, history)
rows in the *same processed id space* as an offline
:class:`~repro.data.processing.ProcessedData`, so a model trained offline can
score and keep training on the stream without any re-mapping.

Scenario knobs (all off by default):

* **interest drift** — at ``drift_window`` a fraction of active users resample
  their interest topics and affinities, so the associations a model learned
  offline stop predicting their clicks;
* **cold-user arrival** — a held-out fraction of the offline user vocabulary
  is kept inactive and activated gradually from ``cold_start_window`` on,
  each arriving with only a short bootstrap history;
* **label-noise bursts** — a window interval where the label flip rate jumps
  from ``noise_rate`` to ``noise_burst_rate``, applied through the
  window-invariant :func:`~repro.data.corruption.flip_labels_stream` so the
  corrupted stream does not depend on how it was windowed.

Determinism: a stream is a pure function of ``(world, processed, config)``.
``windows(start=k)`` replays generation from window 0 and yields from ``k``,
so a resumed run sees bit-identical windows (fast-forward is O(stream), which
is fine at simulator scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..data.batching import CTRDataset
from ..data.corruption import flip_labels_stream
from ..data.processing import ProcessedData
from ..data.synthetic import InterestWorld

__all__ = ["StreamConfig", "StreamWindow", "ClickStream"]


@dataclass(frozen=True)
class StreamConfig:
    """Shape and scenario schedule of one synthetic click stream."""

    num_windows: int = 40
    impressions_per_window: int = 64   # rows = 2x (one positive + one negative)
    window_seconds: float = 60.0       # synthetic wall-clock per window
    start_time: float = 0.0
    seed: int = 0
    # Interest drift: at ``drift_window`` resample interests for a fraction
    # of the active users.  None disables the scenario.
    drift_window: int | None = None
    drift_fraction: float = 0.5
    # Cold users: hold out ``cold_fraction`` of the user vocabulary and
    # activate ``cold_users_per_window`` of them per window from
    # ``cold_start_window`` on.
    cold_fraction: float = 0.0
    cold_start_window: int = 0
    cold_users_per_window: int = 2
    cold_bootstrap_len: int = 3
    # Relative impression weight of a stream-activated (cold) user vs. a
    # warm one — new arrivals burst with onboarding activity when > 1.
    cold_activity: float = 1.0
    # Label noise: base rate plus an optional burst interval
    # [burst_start, burst_end) at the elevated rate.
    noise_rate: float = 0.0
    noise_burst_rate: float = 0.35
    noise_burst: tuple[int, int] | None = None

    def __post_init__(self):
        if self.num_windows < 1:
            raise ValueError("num_windows must be >= 1")
        if self.impressions_per_window < 1:
            raise ValueError("impressions_per_window must be >= 1")
        if not 0.0 <= self.drift_fraction <= 1.0:
            raise ValueError("drift_fraction must be in [0, 1]")
        if not 0.0 <= self.cold_fraction < 1.0:
            raise ValueError("cold_fraction must be in [0, 1)")
        if self.cold_bootstrap_len < 1:
            raise ValueError("cold_bootstrap_len must be >= 1")
        if self.cold_activity <= 0.0:
            raise ValueError("cold_activity must be > 0")
        if not 0.0 <= self.noise_rate <= 1.0:
            raise ValueError("noise_rate must be in [0, 1]")
        if not 0.0 <= self.noise_burst_rate <= 1.0:
            raise ValueError("noise_burst_rate must be in [0, 1]")
        if self.noise_burst is not None:
            lo, hi = self.noise_burst
            if not 0 <= lo < hi:
                raise ValueError("noise_burst must be a (start, end) window "
                                 "interval with start < end")


@dataclass
class StreamWindow:
    """One timestamped micro-batch of the click log.

    ``start_row`` is the global index of the window's first row — the offset
    the window-invariant corruptions key on.  ``injected`` records which
    scenario was live while the window was generated (ground truth for
    detection-latency benchmarks; detectors never see it).
    """

    index: int
    timestamp: float
    start_row: int
    data: CTRDataset
    new_users: list[int] = field(default_factory=list)
    injected: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.data)


class _UserState:
    """Mutable per-user stream state: interests + rolling raw-item history."""

    __slots__ = ("interest_topics", "affinities", "history")

    def __init__(self, interest_topics: np.ndarray, affinities: np.ndarray,
                 history: list[int]):
        self.interest_topics = interest_topics
        self.affinities = affinities
        self.history = history


class ClickStream:
    """Temporal-mode InterestWorld emitting processed-id micro-batches."""

    def __init__(self, world: InterestWorld, processed: ProcessedData,
                 config: StreamConfig):
        self.world = world
        self.processed = processed
        self.config = config
        self.schema = processed.schema
        self._item_map = processed.item_map
        self._user_map = processed.user_map
        # Rebuild the category/seller maps exactly as build_ctr_data did —
        # they are derived deterministically from (world, item_map), so the
        # stream's ids land in the same vocabulary the schema was built for.
        categories = np.unique(world.item_category[list(self._item_map)])
        self._category_map = {int(c): i + 1 for i, c in enumerate(categories)}
        self._has_seller = world.item_seller is not None
        if self._has_seller:
            sellers = np.unique(world.item_seller[list(self._item_map)])
            self._seller_map = {int(s): i + 1 for i, s in enumerate(sellers)}
        # Per-topic item pools restricted to the surviving vocabulary.
        in_vocab = np.zeros(world.config.num_items, dtype=bool)
        in_vocab[list(self._item_map)] = True
        self._topic_items: list[np.ndarray] = []
        self._topic_weights: list[np.ndarray] = []
        for items, weights in zip(world.topic_items, world.topic_weights):
            keep = in_vocab[items]
            kept = items[keep]
            if kept.size:
                w = weights[keep]
                self._topic_items.append(kept)
                self._topic_weights.append(w / w.sum())
            else:
                self._topic_items.append(kept)
                self._topic_weights.append(np.empty(0))
        self._streamable_topics = np.flatnonzero(
            np.array([p.size > 0 for p in self._topic_items]))
        if self._streamable_topics.size == 0:
            raise ValueError("no topic survived the offline frequency filter; "
                             "the stream has nothing to emit")
        self._valid_raw_items = np.fromiter(self._item_map, dtype=np.int64)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _initial_states(self, rng: np.random.Generator
                        ) -> tuple[dict[int, _UserState], list[int]]:
        """Warm users seeded with their offline histories, plus the cold pool."""
        cfg = self.config
        by_id = {u.user_id: u for u in self.world.users}
        streamable = set(self._streamable_topics.tolist())
        eligible = []
        for raw_id in self._user_map:
            user = by_id[raw_id]
            if any(int(t) in streamable for t in user.interest_topics):
                eligible.append(raw_id)
        order = rng.permutation(len(eligible))
        num_cold = int(round(len(eligible) * cfg.cold_fraction))
        if num_cold >= len(eligible):
            num_cold = len(eligible) - 1
        cold = [eligible[i] for i in order[:num_cold]]
        warm = [eligible[i] for i in order[num_cold:]]
        states: dict[int, _UserState] = {}
        for raw_id in warm:
            user = by_id[raw_id]
            keep = np.isin(user.items, self._valid_raw_items)
            states[raw_id] = _UserState(
                interest_topics=self._restrict_interests(user.interest_topics),
                affinities=self._restrict_affinities(user.interest_topics,
                                                     user.affinities),
                history=user.items[keep].tolist())
        return states, cold

    def _restrict_interests(self, topics: np.ndarray) -> np.ndarray:
        streamable = set(self._streamable_topics.tolist())
        kept = np.array([t for t in topics if int(t) in streamable],
                        dtype=np.int64)
        return kept if kept.size else self._streamable_topics[:1].copy()

    def _restrict_affinities(self, topics: np.ndarray,
                             affinities: np.ndarray) -> np.ndarray:
        streamable = set(self._streamable_topics.tolist())
        keep = np.array([int(t) in streamable for t in topics], dtype=bool)
        if not keep.any():
            return np.ones(1)
        kept = affinities[keep]
        return kept / kept.sum()

    def _resample_interests(self, rng: np.random.Generator,
                            exclude: np.ndarray | None = None
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Fresh interest set; with ``exclude``, prefer disjoint topics so a
        drifted user genuinely abandons the associations a model learned."""
        pool = self._streamable_topics
        if exclude is not None:
            disjoint = pool[~np.isin(pool, exclude)]
            if disjoint.size:
                pool = disjoint
        k = int(rng.integers(1, min(4, pool.size) + 1))
        topics = rng.choice(pool, size=k, replace=False)
        return topics, rng.dirichlet(np.full(k, 2.0))

    def _activate_cold(self, rng: np.random.Generator, raw_id: int
                       ) -> _UserState:
        topics, affinities = self._resample_interests(rng)
        state = _UserState(topics, affinities, [])
        for _ in range(self.config.cold_bootstrap_len):
            state.history.append(self._next_item(rng, state))
        return state

    def _next_item(self, rng: np.random.Generator, state: _UserState) -> int:
        topic = int(rng.choice(state.interest_topics, p=state.affinities))
        pool = self._topic_items[topic]
        return int(rng.choice(pool, p=self._topic_weights[topic]))

    def _sample_negative(self, rng: np.random.Generator,
                         state: _UserState) -> int:
        recent = set(state.history[-self.schema.max_seq_len:])
        for _ in range(100):
            raw = int(self._valid_raw_items[
                int(rng.integers(self._valid_raw_items.size))])
            if raw not in recent:
                return raw
        return int(self._valid_raw_items[
            int(rng.integers(self._valid_raw_items.size))])

    def _encode_history(self, history: list[int]
                        ) -> tuple[np.ndarray, np.ndarray]:
        max_len = self.schema.max_seq_len
        raw_items = history[-max_len:]
        seqs = np.zeros((self.schema.num_sequential, max_len), dtype=np.int64)
        mask = np.zeros(max_len, dtype=bool)
        offset = max_len - len(raw_items)
        for pos, raw in enumerate(raw_items):
            col = offset + pos
            seqs[0, col] = self._item_map[raw]
            seqs[1, col] = self._category_map[
                int(self.world.item_category[raw])]
            if self._has_seller:
                seqs[2, col] = self._seller_map[
                    int(self.world.item_seller[raw])]
            mask[col] = True
        return seqs, mask

    def _candidate_row(self, raw_user: int, raw_item: int) -> list[int]:
        row = [self._user_map[raw_user], self._item_map[raw_item],
               self._category_map[int(self.world.item_category[raw_item])]]
        if self._has_seller:
            row.append(self._seller_map[int(self.world.item_seller[raw_item])])
        return row

    def noise_rate_at(self, window: int) -> float:
        cfg = self.config
        if cfg.noise_burst is not None and \
                cfg.noise_burst[0] <= window < cfg.noise_burst[1]:
            return cfg.noise_burst_rate
        return cfg.noise_rate

    def windows(self, start: int = 0) -> Iterator[StreamWindow]:
        """Yield windows ``start..num_windows-1``, replaying from 0.

        Generation consumes a single RNG stream strictly in window order, so
        any two iterations of the same stream agree bit-for-bit — the resume
        contract of the incremental trainer.
        """
        if start < 0:
            raise ValueError("start must be >= 0")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        states, cold_pool = self._initial_states(rng)
        activated: set[int] = set()
        global_row = 0
        for index in range(cfg.num_windows):
            new_users: list[int] = []
            if index >= cfg.cold_start_window:
                for _ in range(min(cfg.cold_users_per_window, len(cold_pool))):
                    raw_id = cold_pool.pop(0)
                    states[raw_id] = self._activate_cold(rng, raw_id)
                    activated.add(raw_id)
                    new_users.append(self._user_map[raw_id])
            drifted = 0
            if cfg.drift_window is not None and index == cfg.drift_window:
                active = sorted(states)
                picks = rng.permutation(len(active))
                drifted = int(round(len(active) * cfg.drift_fraction))
                for i in picks[:drifted]:
                    state = states[active[i]]
                    topics, affinities = self._resample_interests(
                        rng, exclude=state.interest_topics)
                    state.interest_topics = topics
                    state.affinities = affinities
            active_ids = sorted(states)
            weights = np.array([cfg.cold_activity if u in activated else 1.0
                                for u in active_ids])
            weights = weights / weights.sum()
            cat_rows, seq_rows, mask_rows, labels = [], [], [], []
            for _ in range(cfg.impressions_per_window):
                raw_user = active_ids[int(rng.choice(len(active_ids),
                                                     p=weights))]
                state = states[raw_user]
                positive = self._next_item(rng, state)
                negative = self._sample_negative(rng, state)
                seqs, mask = self._encode_history(state.history)
                for raw_item, label in ((positive, 1.0), (negative, 0.0)):
                    cat_rows.append(self._candidate_row(raw_user, raw_item))
                    seq_rows.append(seqs)
                    mask_rows.append(mask)
                    labels.append(label)
                state.history.append(positive)
            data = CTRDataset(
                schema=self.schema,
                categorical=np.asarray(cat_rows, dtype=np.int64),
                sequences=np.stack(seq_rows).astype(np.int64),
                mask=np.stack(mask_rows),
                labels=np.asarray(labels, dtype=np.float64),
            )
            rate = self.noise_rate_at(index)
            if rate > 0.0:
                data = flip_labels_stream(data, rate, seed=cfg.seed,
                                          offset=global_row)
            window = StreamWindow(
                index=index,
                timestamp=cfg.start_time + index * cfg.window_seconds,
                start_row=global_row,
                data=data,
                new_users=new_users,
                injected={"drifted_users": drifted, "noise_rate": rate,
                          "cold_arrivals": len(new_users)},
            )
            global_row += len(data)
            if index >= start:
                yield window
