"""Incremental trainer: prequential validation over stream windows.

Online learning has no held-out split — the stream itself is the validator.
Each window is first *scored* by the current model (that is the prequential,
or progressive, evaluation: the model predicts rows it has never trained on),
and only then *trained on*.  The sequence of per-window AUC/logloss values is
therefore an honest estimate of live performance, and it is exactly what the
promotion controller compares between learner and production.

The trainer warm-starts from a registry artifact
(:meth:`IncrementalTrainer.from_artifact`), checkpoints its full state per
window through :class:`~repro.resilience.RunCheckpoint` (window index rides
in the checkpoint's ``epoch`` field), and reuses the offline
:class:`~repro.resilience.AnomalyGuard`: a NaN/spike during a window rolls
the model back to the last good window and retries with a reduced learning
rate, under the guard's bounded retry budget.

Windows are trained in arrival order without shuffling, so a resumed run
(restore checkpoint, fast-forward the stream) continues bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data.batching import CTRDataset, DataLoader
from ..models.base import CTRModel
from ..nn import Adam, clip_grad_norm
from ..resilience import (
    AnomalyGuard,
    AnomalySignal,
    CheckpointStore,
    NumericalAnomalyError,
    RunCheckpoint,
    named_rng_states,
    restore_rng_states,
    rng_state,
    set_rng_state,
)
from ..serving.artifact import load_artifact
from ..training.metrics import EvalResult
from ..training.trainer import evaluate

__all__ = ["IncrementalConfig", "WindowResult", "IncrementalTrainer"]


@dataclass(frozen=True)
class IncrementalConfig:
    """Hyper-parameters of the online learner."""

    learning_rate: float = 5e-3
    weight_decay: float = 1e-5
    grad_clip: float = 10.0
    batch_size: int = 64
    passes_per_window: int = 1
    eval_batch_size: int = 512
    seed: int = 0

    def __post_init__(self):
        if not math.isfinite(self.learning_rate) or self.learning_rate <= 0:
            raise ValueError("learning_rate must be finite and positive")
        if not math.isfinite(self.weight_decay) or self.weight_decay < 0:
            raise ValueError("weight_decay must be finite and non-negative")
        if not math.isfinite(self.grad_clip) or self.grad_clip <= 0:
            raise ValueError("grad_clip must be finite and positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.passes_per_window < 1:
            raise ValueError("passes_per_window must be >= 1")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1")


@dataclass
class WindowResult:
    """Prequential outcome of one window: evaluate-then-train."""

    window: int
    rows: int
    auc: float          # pre-training AUC on the window
    logloss: float      # pre-training logloss on the window
    train_loss: float   # mean training loss after the prequential eval


class IncrementalTrainer:
    """Evaluate-then-train consumer of stream windows."""

    def __init__(self, model: CTRModel, config: IncrementalConfig, *,
                 checkpoint_dir: str | Path | None = None,
                 keep_checkpoints: int = 3,
                 anomaly_guard=True):
        self.model = model
        self.config = config
        self.optimizer = Adam(model.parameters(), lr=config.learning_rate,
                              weight_decay=config.weight_decay)
        self.store = (CheckpointStore(checkpoint_dir,
                                      keep_last=keep_checkpoints)
                      if checkpoint_dir is not None else None)
        self.guard = AnomalyGuard.build(anomaly_guard)
        # Serialised alongside the run so RunCheckpoint round-trips cleanly;
        # window training itself is order-preserving and draws nothing.
        self._rng = np.random.default_rng(config.seed)
        self.windows_done = 0
        self.step = 0
        self.history: list[WindowResult] = []
        if self.guard is not None:
            self.guard.snapshot(self._capture())

    @classmethod
    def from_artifact(cls, path: str | Path, config: IncrementalConfig,
                      **kwargs) -> "IncrementalTrainer":
        """Warm-start from an exported serving artifact (digest-verified)."""
        model, _ = load_artifact(path)
        model.train()
        return cls(model, config, **kwargs)

    # ------------------------------------------------------------------
    # Prequential step
    # ------------------------------------------------------------------
    def process_window(self, data: CTRDataset, window: int) -> WindowResult:
        """Evaluate the model on ``data``, then train on it.

        The evaluation runs through the deterministic blocked forward (the
        same path serving uses), so learner prequential metrics are directly
        comparable to production's scores of the same rows.
        """
        pre = self.prequential_eval(data)
        while True:
            try:
                train_loss = self._train_on(data)
                break
            except AnomalySignal as signal_:
                self._recover(signal_)
        result = WindowResult(window=window, rows=len(data), auc=pre.auc,
                              logloss=pre.logloss, train_loss=train_loss)
        self.history.append(result)
        self.windows_done = window + 1
        checkpoint = self._capture()
        if self.store is not None:
            self.store.save(checkpoint)
        if self.guard is not None:
            self.guard.snapshot(checkpoint)
        return result

    def prequential_eval(self, data: CTRDataset) -> EvalResult:
        return evaluate(self.model, data,
                        batch_size=self.config.eval_batch_size)

    def _train_on(self, data: CTRDataset) -> float:
        cfg = self.config
        self.model.train()
        loader = DataLoader(data, batch_size=cfg.batch_size, shuffle=False)
        total = 0.0
        batches = 0
        for _ in range(cfg.passes_per_window):
            for batch in loader:
                self.optimizer.zero_grad()
                loss = self.model.training_loss(batch)
                value = loss.item()
                if self.guard is not None:
                    kind = self.guard.check_loss(value)
                    if kind is not None:
                        raise AnomalySignal(kind, value, self.step + 1,
                                            self.windows_done)
                loss.backward()
                grad_norm = clip_grad_norm(self.optimizer.parameters,
                                           cfg.grad_clip)
                if self.guard is not None:
                    kind = self.guard.check_grad_norm(grad_norm)
                    if kind is not None:
                        raise AnomalySignal(kind, grad_norm, self.step + 1,
                                            self.windows_done)
                self.optimizer.step()
                if self.guard is not None:
                    self.guard.record(value)
                total += value
                batches += 1
                self.step += 1
        return total / max(batches, 1)

    def _recover(self, signal_: AnomalySignal) -> None:
        guard = self.guard
        if guard is None:  # pragma: no cover - signals only raised with guard
            raise signal_
        guard.retries += 1
        if guard.retries > guard.config.max_retries or guard.last_good is None:
            raise NumericalAnomalyError(
                f"{signal_.kind} at stream step {signal_.step} "
                f"(value={signal_.value!r}); retry budget of "
                f"{guard.config.max_retries} exhausted") from signal_
        lr_at_failure = self.optimizer.lr
        self._restore(guard.last_good)
        guard.retries = max(guard.retries, guard.last_good.anomaly_retries)
        self.optimizer.lr = lr_at_failure * guard.config.backoff_factor
        guard.reset_stats()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _capture(self) -> RunCheckpoint:
        return RunCheckpoint(
            model_state=self.model.state_dict(),
            optimizer_state=self.optimizer.state_dict(),
            loader_rng_state=rng_state(self._rng),
            module_rng_states=named_rng_states(self.model),
            epoch=self.windows_done,     # next window to process
            batches_done=0,
            step=self.step,
            best_auc=float("-inf"),
            best_epoch=-1,
            bad_epochs=0,
            history=[{"auc": float(r.auc), "logloss": float(r.logloss)}
                     for r in self.history],
            train_losses=[float(r.train_loss) for r in self.history],
            epochs_run=self.windows_done,
            anomaly_retries=(self.guard.retries
                             if self.guard is not None else 0),
            config={"kind": "streaming", **self.config.__dict__},
        )

    def _restore(self, ckpt: RunCheckpoint) -> None:
        self.model.load_state_dict(ckpt.model_state)
        self.optimizer.load_state_dict(ckpt.optimizer_state)
        restore_rng_states(self.model, ckpt.module_rng_states)
        set_rng_state(self._rng, ckpt.loader_rng_state)
        self.windows_done = ckpt.epoch
        self.step = ckpt.step
        del self.history[ckpt.epoch:]

    def resume(self) -> int:
        """Restore the latest per-window checkpoint; returns the next window.

        The caller fast-forwards the stream with ``windows(start=...)`` and
        continues; weights, optimiser moments, and module RNG streams are all
        restored, so the continuation is bit-identical to an uninterrupted
        run over the same stream.
        """
        if self.store is None:
            raise ValueError("resume requires a checkpoint_dir")
        ckpt, _, _ = self.store.load_latest()
        if ckpt is None:
            return 0
        # History rows round-trip as (auc, logloss); train losses ride in
        # the parallel train_losses list.
        self.model.load_state_dict(ckpt.model_state)
        self.optimizer.load_state_dict(ckpt.optimizer_state)
        restore_rng_states(self.model, ckpt.module_rng_states)
        set_rng_state(self._rng, ckpt.loader_rng_state)
        self.windows_done = ckpt.epoch
        self.step = ckpt.step
        self.history = [
            WindowResult(window=i, rows=0, auc=row["auc"],
                         logloss=row["logloss"],
                         train_loss=ckpt.train_losses[i])
            for i, row in enumerate(ckpt.history)]
        if self.guard is not None:
            self.guard.retries = ckpt.anomaly_retries
            self.guard.snapshot(ckpt)
        return self.windows_done
