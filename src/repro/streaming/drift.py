"""Windowed drift detection: PSI / KL on distributions, Page-Hinkley on means.

The online loop watches each served window and compares it against a frozen
reference established over the first ``reference_windows`` windows:

* the **score distribution** (production model probabilities) via PSI —
  interest drift moves candidates into regions the model scores differently;
* the **label distribution** (click rate) via KL on the binary histogram —
  inert on artificially balanced pos/neg pairs, but the standard guard for
  real click logs whose base CTR moves;
* the **feature distribution** (candidate item ids, binned) via PSI —
  exported as a metric and alarmed only at a conservative threshold, because
  *per-user* interest drift is invisible in aggregate: when every user moves
  to a different topic, the aggregate item mix barely changes;
* the **prequential logloss** via a Page-Hinkley mean-shift test — the
  catch-all and in practice the fastest detector: any change that makes
  production predictions worse raises the mean per-window loss.

Histogram detectors (PSI/KL) are gated on ``consecutive`` windows above
threshold before alarming: with a few hundred rows per window a single-window
PSI estimate is noisy enough to spike spuriously, while genuine drift stays
elevated window after window.  Page-Hinkley needs no gating — its statistic
is already cumulative.

Detectors only see served traffic (scores, labels, losses) — never the
simulator's ground-truth ``injected`` flags — so detection latency measured
by ``bench-stream`` is honest.  After the loop has recovered (new model
promoted), call :meth:`DriftMonitor.rebase` so the reference tracks the new
regime instead of alarming forever.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["psi", "kl_divergence", "score_histogram", "feature_histogram",
           "PageHinkley", "DriftSignal", "DriftMonitorConfig", "DriftMonitor"]

_EPS = 1e-6

#: Fixed probability-bin edges shared by reference and candidate windows.
SCORE_BIN_EDGES = np.linspace(0.0, 1.0, 11)

#: Number of id-range buckets for feature (categorical id) histograms.
FEATURE_BINS = 16


def score_histogram(probabilities: np.ndarray) -> np.ndarray:
    """Normalised 10-bin histogram of probabilities over [0, 1]."""
    counts, _ = np.histogram(np.clip(probabilities, 0.0, 1.0),
                             bins=SCORE_BIN_EDGES)
    total = counts.sum()
    if total == 0:
        return np.full(counts.size, 1.0 / counts.size)
    return counts / total


def feature_histogram(ids: np.ndarray, vocab_size: int,
                      bins: int = FEATURE_BINS) -> np.ndarray:
    """Normalised histogram of categorical ids over equal-width id buckets."""
    if vocab_size < 1:
        raise ValueError("vocab_size must be >= 1")
    bins = min(bins, vocab_size)
    counts, _ = np.histogram(np.asarray(ids), bins=bins,
                             range=(0, vocab_size))
    total = counts.sum()
    if total == 0:
        return np.full(counts.size, 1.0 / counts.size)
    return counts / total


def psi(expected: np.ndarray, actual: np.ndarray) -> float:
    """Population stability index between two normalised histograms.

    Rule-of-thumb scale: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major
    shift.  Bins are epsilon-smoothed so an empty bin cannot blow up the sum.
    """
    e = np.asarray(expected, dtype=np.float64) + _EPS
    a = np.asarray(actual, dtype=np.float64) + _EPS
    e = e / e.sum()
    a = a / a.sum()
    return float(np.sum((a - e) * np.log(a / e)))


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) between two normalised histograms, epsilon-smoothed."""
    p = np.asarray(p, dtype=np.float64) + _EPS
    q = np.asarray(q, dtype=np.float64) + _EPS
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


class PageHinkley:
    """Page-Hinkley test for an upward shift in a streaming mean.

    Tracks the cumulative deviation of observations from their running mean;
    alarms when the deviation climbs ``threshold`` above its historical
    minimum.  ``delta`` is the magnitude of change considered negligible,
    ``min_observations`` suppresses alarms before the mean estimate settles.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.1,
                 min_observations: int = 5):
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_observations = min_observations
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    @property
    def statistic(self) -> float:
        """Current test statistic (cumulative deviation above its minimum)."""
        return self._cumulative - self._minimum

    def update(self, value: float) -> bool:
        """Feed one observation; True when an upward mean shift is detected."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.min_observations:
            return False
        return self.statistic > self.threshold


@dataclass
class DriftSignal:
    """One detector firing on one window."""

    window: int
    detector: str   # score_psi | label_kl | feature_psi | logloss_shift
    value: float
    threshold: float

    def payload(self) -> dict:
        return {"window": int(self.window), "detector": self.detector,
                "value": float(self.value), "threshold": float(self.threshold)}


@dataclass(frozen=True)
class DriftMonitorConfig:
    """Thresholds and reference-window policy of the drift monitor."""

    reference_windows: int = 5
    score_psi_threshold: float = 0.2
    label_kl_threshold: float = 0.1
    feature_psi_threshold: float = 0.5
    consecutive: int = 2        # windows above threshold before a PSI/KL alarm
    ph_delta: float = 0.005
    ph_threshold: float = 0.1
    cooldown_windows: int = 5   # windows to stay silent after an alarm

    def __post_init__(self):
        if self.reference_windows < 1:
            raise ValueError("reference_windows must be >= 1")
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be >= 0")


class DriftMonitor:
    """Accumulates a frozen reference, then alarms on departures from it."""

    def __init__(self, config: DriftMonitorConfig | None = None):
        self.config = config or DriftMonitorConfig()
        self._page_hinkley = PageHinkley(
            delta=self.config.ph_delta, threshold=self.config.ph_threshold,
            min_observations=self.config.reference_windows)
        self.signals: list[DriftSignal] = []
        #: Latest per-detector statistics (exported as ``stream.drift.*``
        #: gauges by the loop even when nothing alarms).
        self.last_stats: dict[str, float] = {}
        self._reset_reference()

    def _reset_reference(self) -> None:
        self._ref_scores: list[np.ndarray] = []
        self._ref_labels: list[np.ndarray] = []
        self._ref_features: list[np.ndarray] = []
        self._score_ref: np.ndarray | None = None
        self._label_ref: np.ndarray | None = None
        self._feature_ref: np.ndarray | None = None
        self._streak: dict[str, int] = {}
        self._cooldown = 0

    @property
    def has_reference(self) -> bool:
        return self._score_ref is not None

    def rebase(self) -> None:
        """Forget the reference; the next ``reference_windows`` rebuild it.

        Called after recovery (a new model promoted) so the monitor measures
        the *new* regime instead of alarming on the old one forever.
        """
        self._reset_reference()
        self._page_hinkley.reset()

    @staticmethod
    def _label_histogram(labels: np.ndarray) -> np.ndarray:
        rate = float(np.mean(labels)) if labels.size else 0.5
        return np.array([1.0 - rate, rate])

    def _gated(self, window: int, detector: str, value: float,
               threshold: float) -> DriftSignal | None:
        """Alarm once ``value`` has topped ``threshold`` for ``consecutive``
        windows in a row."""
        if value > threshold:
            self._streak[detector] = self._streak.get(detector, 0) + 1
        else:
            self._streak[detector] = 0
        if self._streak[detector] >= self.config.consecutive:
            return DriftSignal(window, detector, value, threshold)
        return None

    def update(self, window: int, probabilities: np.ndarray,
               labels: np.ndarray, logloss: float,
               feature_histogram_: np.ndarray | None = None
               ) -> list[DriftSignal]:
        """Feed one served window; returns the signals that fired on it.

        ``feature_histogram_`` is an optional pre-binned categorical-feature
        histogram (see :func:`feature_histogram`); pass the same binning
        every window.
        """
        cfg = self.config
        score_hist = score_histogram(probabilities)
        label_hist = self._label_histogram(labels)
        if self._score_ref is None:
            self._ref_scores.append(score_hist)
            self._ref_labels.append(label_hist)
            if feature_histogram_ is not None:
                self._ref_features.append(feature_histogram_)
            if len(self._ref_scores) >= cfg.reference_windows:
                self._score_ref = np.mean(self._ref_scores, axis=0)
                self._label_ref = np.mean(self._ref_labels, axis=0)
                if self._ref_features:
                    self._feature_ref = np.mean(self._ref_features, axis=0)
            # The mean tracker warms up alongside the reference.
            self._page_hinkley.update(logloss)
            return []
        stats = {
            "score_psi": psi(self._score_ref, score_hist),
            "label_kl": kl_divergence(label_hist, self._label_ref),
        }
        if feature_histogram_ is not None and self._feature_ref is not None:
            stats["feature_psi"] = psi(self._feature_ref, feature_histogram_)
        ph_alarm = self._page_hinkley.update(logloss)
        stats["logloss_shift"] = self._page_hinkley.statistic
        self.last_stats = stats
        candidates: list[DriftSignal] = []
        for detector, threshold in (
                ("score_psi", cfg.score_psi_threshold),
                ("label_kl", cfg.label_kl_threshold),
                ("feature_psi", cfg.feature_psi_threshold)):
            if detector not in stats:
                continue
            signal_ = self._gated(window, detector, stats[detector],
                                  threshold)
            if signal_ is not None:
                candidates.append(signal_)
        if ph_alarm:
            candidates.append(DriftSignal(window, "logloss_shift",
                                          stats["logloss_shift"],
                                          cfg.ph_threshold))
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        if candidates:
            self._cooldown = cfg.cooldown_windows
            self.signals.extend(candidates)
        return candidates
