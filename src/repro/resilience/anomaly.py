"""Numerical anomaly detection and recovery policy for training runs.

Long CTR runs die in one of three numerical ways: the loss goes NaN/Inf, a
gradient blows up to non-finite, or the loss spikes by orders of magnitude
(usually one step before the NaN).  :class:`AnomalyGuard` watches all three.
When one fires, the trainer rolls model + optimiser + RNG streams back to the
last good checkpoint, multiplies the learning rate by ``backoff_factor``, and
retries — up to ``max_retries`` times across the run before giving up with
:class:`NumericalAnomalyError`.  Every detection and rollback is narrated on
the ``repro.obs`` event bus (``anomaly_detected`` / ``checkpoint_restored``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .checkpoint import RunCheckpoint

__all__ = ["AnomalyGuardConfig", "AnomalyGuard", "AnomalySignal",
           "NumericalAnomalyError"]


class NumericalAnomalyError(RuntimeError):
    """Raised when the anomaly retry budget is exhausted."""


class AnomalySignal(Exception):
    """Internal control-flow signal: a training step hit an anomaly.

    Raised by the step loop *before* the optimiser applies a bad update and
    caught by ``Trainer.fit``'s recovery loop; never leaves the trainer.
    """

    def __init__(self, kind: str, value: float, step: int, epoch: int):
        super().__init__(f"{kind} at step {step} (value={value!r})")
        self.kind = kind
        self.value = value
        self.step = step
        self.epoch = epoch


@dataclass(frozen=True)
class AnomalyGuardConfig:
    """Policy knobs for :class:`AnomalyGuard`."""

    #: Total anomalies tolerated per run before raising.
    max_retries: int = 3
    #: Learning-rate multiplier applied on every rollback.
    backoff_factor: float = 0.5
    #: Loss > ``spike_factor`` × its EMA counts as an anomaly; None disables.
    spike_factor: float | None = 25.0
    #: Steps of EMA warm-up before spike detection arms.
    spike_warmup: int = 20
    #: Also flag non-finite gradient norms (caught before the update applies).
    check_gradients: bool = True
    #: Decay of the loss EMA used by spike detection.
    ema_decay: float = 0.98

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be in (0, 1)")
        if self.spike_factor is not None and self.spike_factor <= 1.0:
            raise ValueError("spike_factor must be > 1")
        if not 0.0 < self.ema_decay < 1.0:
            raise ValueError("ema_decay must be in (0, 1)")


class AnomalyGuard:
    """Detects numerical anomalies and tracks the rollback target/budget."""

    def __init__(self, config: AnomalyGuardConfig | None = None):
        self.config = config or AnomalyGuardConfig()
        self.retries = 0
        self.last_good: RunCheckpoint | None = None
        self.last_good_path: Path | None = None
        self._ema: float | None = None
        self._steps_seen = 0

    @classmethod
    def build(cls, spec: "AnomalyGuard | AnomalyGuardConfig | bool | None"
              ) -> "AnomalyGuard | None":
        """Normalise the trainer's ``anomaly_guard`` argument."""
        if spec is None or spec is False:
            return None
        if isinstance(spec, AnomalyGuard):
            return spec
        if isinstance(spec, AnomalyGuardConfig):
            return cls(spec)
        if spec is True:
            return cls()
        raise TypeError(f"anomaly_guard must be a bool, AnomalyGuardConfig, "
                        f"or AnomalyGuard, got {type(spec).__name__}")

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def check_loss(self, value: float) -> str | None:
        """Anomaly kind for this loss value, or None if it looks healthy."""
        if not math.isfinite(value):
            return "non_finite_loss"
        cfg = self.config
        if (cfg.spike_factor is not None and self._ema is not None
                and self._steps_seen >= cfg.spike_warmup
                and value > cfg.spike_factor * max(self._ema, 1e-12)):
            return "loss_spike"
        return None

    def check_grad_norm(self, norm: float) -> str | None:
        if self.config.check_gradients and not math.isfinite(norm):
            return "non_finite_grad"
        return None

    def record(self, value: float) -> None:
        """Fold a healthy step's loss into the spike-detection EMA."""
        decay = self.config.ema_decay
        self._ema = value if self._ema is None else (
            decay * self._ema + (1.0 - decay) * value)
        self._steps_seen += 1

    def reset_stats(self) -> None:
        """Forget the EMA after a rollback (the loss scale may shift)."""
        self._ema = None
        self._steps_seen = 0

    # ------------------------------------------------------------------
    # Rollback target
    # ------------------------------------------------------------------
    def snapshot(self, ckpt: RunCheckpoint,
                 path: "Path | str | None" = None) -> None:
        """Remember ``ckpt`` as the rollback target (kept in memory)."""
        self.last_good = ckpt
        self.last_good_path = Path(path) if path is not None else None

    @property
    def retries_remaining(self) -> int:
        return max(self.config.max_retries - self.retries, 0)

    def state(self) -> dict[str, Any]:
        return {"retries": self.retries}
