"""Graceful shutdown: turn SIGINT/SIGTERM into a clean checkpoint-and-exit.

Installed around the training loop, :class:`GracefulInterrupt` converts the
first SIGINT or SIGTERM into a flag the trainer polls after every optimiser
step: the in-flight step finishes, a final checkpoint is written, and
:class:`TrainingInterrupted` propagates so callers can exit with the
conventional ``128 + signum`` status.  A second signal while the flag is
pending still only sets the flag — a hard kill (``SIGKILL``) remains the
escape hatch, and the atomic checkpoint writer guarantees even that leaves no
truncated files.

Handlers are only installed in the main thread (Python forbids them
elsewhere); in worker threads the context manager is a transparent no-op.
"""

from __future__ import annotations

import signal
import threading
from typing import Any

__all__ = ["GracefulInterrupt", "TrainingInterrupted"]


class TrainingInterrupted(RuntimeError):
    """Training stopped cleanly on a signal after writing a checkpoint."""

    def __init__(self, signum: int | None, step: int,
                 checkpoint: "Any | None" = None):
        self.signum = signum
        self.step = step
        self.checkpoint = checkpoint
        name = signal.Signals(signum).name if signum else "interrupt"
        message = f"training interrupted by {name} after step {step}"
        if checkpoint is not None:
            message += f"; resume from checkpoint {checkpoint}"
        super().__init__(message)

    @property
    def exit_code(self) -> int:
        """The conventional shell exit status for this signal."""
        return 128 + (self.signum or signal.SIGINT)


class GracefulInterrupt:
    """Context manager latching SIGINT/SIGTERM into a pollable flag."""

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self):
        self.requested = False
        self.signum: int | None = None
        self._previous: dict[int, Any] = {}

    def _handle(self, signum, frame) -> None:
        self.requested = True
        self.signum = signum

    def request(self, signum: int = signal.SIGTERM) -> None:
        """Set the flag programmatically (used by tests and embedders)."""
        self._handle(signum, None)

    def __enter__(self) -> "GracefulInterrupt":
        if threading.current_thread() is threading.main_thread():
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover - platform
                    pass
        return self

    def __exit__(self, *exc_info) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover - platform
                pass
        self._previous.clear()
