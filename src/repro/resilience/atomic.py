"""Atomic file writes: temp file in the target directory + fsync + rename.

Every durable artefact of a training run (checkpoint arrays, manifests, the
legacy ``.npz`` model files) goes through :func:`atomic_write`, so a crash at
any instant leaves either the previous file or the new one on disk — never a
truncated hybrid.  The temp file lives in the destination directory so the
final ``os.replace`` stays on one filesystem and is atomic; the directory is
fsynced afterwards so the rename itself survives a power cut.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import suppress
from pathlib import Path
from typing import Any, BinaryIO, Callable

import numpy as np

__all__ = ["atomic_write", "atomic_write_bytes", "atomic_write_json",
           "atomic_write_npz"]


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry to disk; best-effort on exotic filesystems."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str | Path, write: Callable[[BinaryIO], None]) -> Path:
    """Run ``write(fh)`` against a temp file, then atomically publish ``path``.

    The temp file is flushed and fsynced before the rename; on any failure it
    is removed and the previous contents of ``path`` (if any) are untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with suppress(OSError):
            os.unlink(tmp_name)
        raise
    _fsync_dir(path.parent)
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    return atomic_write(path, lambda fh: fh.write(data))


def atomic_write_json(path: str | Path, obj: Any) -> Path:
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    return atomic_write_bytes(path, payload)


def atomic_write_npz(path: str | Path, arrays: dict[str, np.ndarray],
                     compressed: bool = False) -> Path:
    """Atomically write an ``.npz`` archive of named arrays."""
    savez = np.savez_compressed if compressed else np.savez
    return atomic_write(path, lambda fh: savez(fh, **arrays))
