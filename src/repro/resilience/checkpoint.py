"""Durable run checkpoints: full training state, checksummed and atomic.

A :class:`RunCheckpoint` captures everything ``Trainer.fit`` needs to continue
a run bit-identically: model weights, best-so-far weights, optimiser moments,
the data-loader RNG state at the start of the current epoch, every module-level
RNG state, and all loop counters (epoch, step, early stopping, loss
accumulators).  :class:`CheckpointStore` persists checkpoints as an ``.npz``
of arrays plus a JSON manifest whose per-array SHA-256 digests let a later
load prove the bytes are exactly what was written — a flipped bit anywhere is
rejected with :class:`CheckpointCorruptError` and ``load_latest`` falls back
to the previous valid checkpoint.

Write protocol (crash-safe by construction):

1. arrays  → ``ckpt-<step>.npz``  via atomic temp+fsync+rename
2. manifest → ``ckpt-<step>.json`` via the same path

The JSON is the commit record: an ``.npz`` without its manifest is an
unfinished write and is ignored.  Retention keeps the last *K* checkpoints
plus the most recent one flagged as best.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from .atomic import atomic_write_json, atomic_write_npz

__all__ = ["RunCheckpoint", "CheckpointStore", "CheckpointCorruptError",
           "array_digest", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class CheckpointCorruptError(ValueError):
    """A checkpoint on disk failed checksum/structure validation."""


def array_digest(array: np.ndarray) -> str:
    """SHA-256 over an array's raw bytes (contiguous, native layout)."""
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


@dataclass
class RunCheckpoint:
    """Complete, restorable snapshot of one point in a training run."""

    model_state: dict[str, np.ndarray]
    optimizer_state: dict[str, Any]
    loader_rng_state: dict[str, Any]
    module_rng_states: dict[str, dict[str, Any]]
    epoch: int
    batches_done: int
    step: int
    best_auc: float
    best_epoch: int
    bad_epochs: int
    best_state: dict[str, np.ndarray] | None = None
    history: list[dict[str, float]] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)
    epoch_loss: float = 0.0
    num_batches: int = 0
    component_sums: dict[str, float] = field(default_factory=dict)
    epochs_run: int = 0
    anomaly_retries: int = 0
    config: dict[str, Any] = field(default_factory=dict)
    completed: bool = False

    def arrays(self) -> dict[str, np.ndarray]:
        """Flatten all array payloads under ``model/``, ``best/``, ``optim/``."""
        out = {f"model/{name}": arr for name, arr in self.model_state.items()}
        if self.best_state is not None:
            out.update({f"best/{name}": arr
                        for name, arr in self.best_state.items()})
        out.update({f"optim/{name}": arr
                    for name, arr in self.optimizer_state.get("arrays", {}).items()})
        return out

    def meta(self) -> dict[str, Any]:
        """JSON-safe scalar state (everything except the arrays)."""
        best_auc = float(self.best_auc)
        return {
            "format_version": FORMAT_VERSION,
            "epoch": int(self.epoch),
            "batches_done": int(self.batches_done),
            "step": int(self.step),
            "best_auc": best_auc if np.isfinite(best_auc) else None,
            "best_epoch": int(self.best_epoch),
            "bad_epochs": int(self.bad_epochs),
            "has_best": self.best_state is not None,
            "history": self.history,
            "train_losses": [float(v) for v in self.train_losses],
            "epoch_loss": float(self.epoch_loss),
            "num_batches": int(self.num_batches),
            "component_sums": {k: float(v)
                               for k, v in self.component_sums.items()},
            "epochs_run": int(self.epochs_run),
            "anomaly_retries": int(self.anomaly_retries),
            "loader_rng_state": self.loader_rng_state,
            "module_rng_states": self.module_rng_states,
            "optimizer": {k: v for k, v in self.optimizer_state.items()
                          if k != "arrays"},
            "config": self.config,
            "completed": bool(self.completed),
        }


class CheckpointStore:
    """Atomic, checksummed, retention-managed checkpoint directory."""

    def __init__(self, directory: str | Path, keep_last: int = 3,
                 prefix: str = "ckpt", compressed: bool = False):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self.prefix = prefix
        self.compressed = compressed

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def manifests(self) -> list[Path]:
        """Committed checkpoint manifests, sorted by ascending step."""
        return sorted(self.directory.glob(f"{self.prefix}-*.json"))

    def _paths(self, step: int) -> tuple[Path, Path]:
        base = f"{self.prefix}-{step:010d}"
        return (self.directory / f"{base}.npz",
                self.directory / f"{base}.json")

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, ckpt: RunCheckpoint, is_best: bool = False) -> Path:
        """Write ``ckpt`` durably; returns the manifest path."""
        npz_path, json_path = self._paths(ckpt.step)
        arrays = ckpt.arrays()
        manifest = {name: {"sha256": array_digest(arr),
                           "dtype": arr.dtype.str,
                           "shape": list(arr.shape)}
                    for name, arr in arrays.items()}
        meta = ckpt.meta()
        meta["is_best"] = bool(is_best)
        meta["manifest"] = manifest
        atomic_write_npz(npz_path, arrays, compressed=self.compressed)
        atomic_write_json(json_path, meta)
        self._apply_retention()
        return json_path

    def _apply_retention(self) -> None:
        manifests = self.manifests()
        if len(manifests) <= self.keep_last:
            return
        keep = set(manifests[-self.keep_last:])
        # Never drop the newest checkpoint flagged best: it holds the weights
        # the run would ship if it ended now.  The scan stops at the newest
        # best even when it already sits inside the keep-last window — older
        # best-flagged checkpoints are superseded and age out with the rest.
        for path in reversed(manifests):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    is_best = bool(json.load(fh).get("is_best"))
            except (OSError, json.JSONDecodeError):
                continue
            if is_best:
                keep.add(path)
                break
        for path in manifests:
            if path not in keep:
                path.unlink(missing_ok=True)
                path.with_suffix(".npz").unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, manifest_path: str | Path) -> RunCheckpoint:
        """Load and fully verify one checkpoint; raises on any corruption."""
        manifest_path = Path(manifest_path)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointCorruptError(
                f"{manifest_path}: unreadable manifest ({exc})") from exc
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"{manifest_path}: unsupported format_version {version!r}")
        manifest = meta.get("manifest")
        if not isinstance(manifest, dict):
            raise CheckpointCorruptError(f"{manifest_path}: missing manifest")

        npz_path = manifest_path.with_suffix(".npz")
        arrays: dict[str, np.ndarray] = {}
        try:
            with np.load(npz_path) as archive:
                for name in manifest:
                    arrays[name] = archive[name]
        except (OSError, ValueError, KeyError, EOFError, zlib.error,
                zipfile.BadZipFile) as exc:
            raise CheckpointCorruptError(
                f"{npz_path}: unreadable archive ({exc})") from exc

        for name, expected in manifest.items():
            arr = arrays[name]
            if (arr.dtype.str != expected["dtype"]
                    or list(arr.shape) != list(expected["shape"])
                    or array_digest(arr) != expected["sha256"]):
                raise CheckpointCorruptError(
                    f"{npz_path}: checksum mismatch for array {name!r}")

        return self._rebuild(meta, arrays)

    @staticmethod
    def _rebuild(meta: dict[str, Any],
                 arrays: dict[str, np.ndarray]) -> RunCheckpoint:
        def split(prefix: str) -> dict[str, np.ndarray]:
            plen = len(prefix)
            return {name[plen:]: arr for name, arr in arrays.items()
                    if name.startswith(prefix)}

        optimizer_state = dict(meta.get("optimizer", {}))
        optimizer_state["arrays"] = split("optim/")
        best_auc = meta.get("best_auc")
        return RunCheckpoint(
            model_state=split("model/"),
            optimizer_state=optimizer_state,
            loader_rng_state=meta["loader_rng_state"],
            module_rng_states=meta.get("module_rng_states", {}),
            epoch=meta["epoch"],
            batches_done=meta["batches_done"],
            step=meta["step"],
            best_auc=float("-inf") if best_auc is None else float(best_auc),
            best_epoch=meta["best_epoch"],
            bad_epochs=meta["bad_epochs"],
            best_state=split("best/") if meta.get("has_best") else None,
            history=list(meta.get("history", [])),
            train_losses=list(meta.get("train_losses", [])),
            epoch_loss=meta.get("epoch_loss", 0.0),
            num_batches=meta.get("num_batches", 0),
            component_sums=dict(meta.get("component_sums", {})),
            epochs_run=meta.get("epochs_run", 0),
            anomaly_retries=meta.get("anomaly_retries", 0),
            config=dict(meta.get("config", {})),
            completed=bool(meta.get("completed", False)),
        )

    def load_step(self, step: int) -> RunCheckpoint:
        """Load (and fully verify) the checkpoint written at exactly ``step``.

        Distributed resume needs this: every rank must restore the *same
        committed* global step named by the rank-0 manifest, not whatever
        its own newest file happens to be — a rank that checkpointed one
        step further before the crash would otherwise silently diverge.
        """
        _, manifest_path = self._paths(step)
        if not manifest_path.exists():
            raise CheckpointCorruptError(
                f"{self.directory}: no checkpoint manifest for step {step} "
                f"({manifest_path.name} missing)")
        return self.load(manifest_path)

    def has_step(self, step: int) -> bool:
        """Whether a committed manifest exists for ``step`` (no validation)."""
        return self._paths(step)[1].exists()

    def load_latest(self) -> tuple[RunCheckpoint | None, Path | None,
                                   list[tuple[Path, str]]]:
        """Newest valid checkpoint, skipping corrupt ones.

        Returns ``(checkpoint, manifest_path, skipped)`` where ``skipped``
        lists ``(path, reason)`` for every newer checkpoint that failed
        validation; ``(None, None, skipped)`` if nothing valid exists.
        """
        skipped: list[tuple[Path, str]] = []
        for manifest_path in reversed(self.manifests()):
            try:
                return self.load(manifest_path), manifest_path, skipped
            except CheckpointCorruptError as exc:
                skipped.append((manifest_path, str(exc)))
        return None, None, skipped
