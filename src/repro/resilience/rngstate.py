"""Capture and restore every ``np.random.Generator`` reachable from a module.

Exact resume needs more than model weights: dropout layers, DIEN's auxiliary
sampler, and the MISS augmentation module all hold private generators whose
bit-generator state advances every step.  These helpers walk a module tree the
same way ``Module.named_parameters`` does and snapshot each generator's state
by attribute path, so a restored run replays the identical random stream.

A generator shared between several modules appears once per path; restoring
the same state through every alias is idempotent.
"""

from __future__ import annotations

import copy
from typing import Any, Iterator

import numpy as np

from ..nn.module import Module

__all__ = ["named_rng_states", "restore_rng_states", "rng_state", "set_rng_state"]


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """A deep copy of ``rng``'s bit-generator state (JSON-safe dict)."""
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict[str, Any]) -> None:
    rng.bit_generator.state = copy.deepcopy(state)


def _iter_rngs(module: Module, prefix: str = ""
               ) -> Iterator[tuple[str, np.random.Generator]]:
    for name, value in vars(module).items():
        path = f"{prefix}{name}"
        if isinstance(value, np.random.Generator):
            yield path, value
        elif isinstance(value, Module):
            yield from _iter_rngs(value, prefix=f"{path}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, np.random.Generator):
                    yield f"{path}.{i}", item
                elif isinstance(item, Module):
                    yield from _iter_rngs(item, prefix=f"{path}.{i}.")


def named_rng_states(module: Module) -> dict[str, dict[str, Any]]:
    """Bit-generator states of every generator on ``module``, keyed by path."""
    return {path: rng_state(gen) for path, gen in _iter_rngs(module)}


def restore_rng_states(module: Module, states: dict[str, dict[str, Any]],
                       strict: bool = True) -> None:
    """Restore states captured by :func:`named_rng_states`.

    With ``strict`` (the default) a path mismatch raises, because it means the
    module tree changed shape since the checkpoint was taken and the random
    stream could silently diverge.
    """
    own = dict(_iter_rngs(module))
    missing = set(own) - set(states)
    unexpected = set(states) - set(own)
    if strict and (missing or unexpected):
        raise ValueError(
            f"rng state mismatch: missing={sorted(missing)}, "
            f"unexpected={sorted(unexpected)}")
    for path, state in states.items():
        gen = own.get(path)
        if gen is not None:
            set_rng_state(gen, state)
