"""Crash-safe training: durable checkpoints, exact resume, anomaly recovery.

Three cooperating pieces (see DESIGN.md §"Resilience"):

* :mod:`.atomic` / :mod:`.checkpoint` — atomic temp+fsync+rename writes of a
  :class:`RunCheckpoint` (model, optimiser, RNG streams, loop counters) with a
  per-array SHA-256 manifest; :class:`CheckpointStore` verifies on load and
  falls back past corrupt files.
* :mod:`.signals` — SIGINT/SIGTERM become "finish the step, checkpoint, exit
  cleanly" via :class:`GracefulInterrupt` / :class:`TrainingInterrupted`.
* :mod:`.anomaly` — :class:`AnomalyGuard` detects NaN/Inf losses and
  gradients and loss spikes, driving rollback + learning-rate backoff with a
  bounded retry budget.

``Trainer.fit(..., checkpoint_dir=..., resume=True, anomaly_guard=True)``
wires them together; a resumed run continues bit-identically to an
uninterrupted one.
"""

from .anomaly import (
    AnomalyGuard,
    AnomalyGuardConfig,
    AnomalySignal,
    NumericalAnomalyError,
)
from .atomic import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
)
from .checkpoint import (
    FORMAT_VERSION,
    CheckpointCorruptError,
    CheckpointStore,
    RunCheckpoint,
    array_digest,
)
from .rngstate import (
    named_rng_states,
    restore_rng_states,
    rng_state,
    set_rng_state,
)
from .signals import GracefulInterrupt, TrainingInterrupted

__all__ = [
    "atomic_write", "atomic_write_bytes", "atomic_write_json",
    "atomic_write_npz",
    "RunCheckpoint", "CheckpointStore", "CheckpointCorruptError",
    "array_digest", "FORMAT_VERSION",
    "named_rng_states", "restore_rng_states", "rng_state", "set_rng_state",
    "AnomalyGuard", "AnomalyGuardConfig", "AnomalySignal",
    "NumericalAnomalyError",
    "GracefulInterrupt", "TrainingInterrupted",
]
