"""IPNN: Product-based Neural Network with inner products (Qu et al., 2019).

IPNN is one of the three backbones the paper plugs MISS into (Table V), so it
exposes the shared embedder like every other :class:`DeepCTRModel`.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, Tensor, concatenate
from .base import DeepCTRModel

__all__ = ["IPNNModel"]


class IPNNModel(DeepCTRModel):
    """MLP over [field embeddings ; pairwise inner products]."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1)):
        super().__init__(schema, embedding_dim, rng)
        num_fields = schema.num_fields
        self._pair_index = np.triu_indices(num_fields, k=1)
        product_width = num_fields * (num_fields - 1) // 2
        self.tower = MLP(self.embedder.flat_width + product_width,
                         list(hidden_sizes), rng, activation="relu")

    def predict_logits(self, batch: Batch) -> Tensor:
        fields = self.embedder.field_vectors(batch)  # (B, F, K)
        # Gram matrix of the fields gives every pairwise inner product.
        gram = fields @ fields.swapaxes(1, 2)  # (B, F, F)
        rows, cols = self._pair_index
        products = gram[:, rows, cols]  # (B, F*(F-1)/2)
        features = concatenate([fields.flatten_from(1), products], axis=1)
        return self.tower(features).squeeze(-1)
