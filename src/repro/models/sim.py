"""SIM(soft): Search-based Interest Model with soft search (Pi et al., 2020).

Stage one (General Search Unit) scores every behaviour against the candidate
with a learned dot product and keeps the top-k most relevant ones; stage two
(Exact Search Unit) applies precise attention pooling over the retrieved
sub-sequence.  The "soft" variant searches in embedding space rather than by
hard category match.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, DotProductAttention, LocalActivationUnit, Tensor, concatenate, no_grad
from .base import DeepCTRModel

__all__ = ["SIMSoftModel"]


class SIMSoftModel(DeepCTRModel):
    """Two-stage relevance search over the behaviour history."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator, top_k: int = 10,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1)):
        super().__init__(schema, embedding_dim, rng)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = top_k
        self.search = DotProductAttention(embedding_dim, rng)
        self.exact = LocalActivationUnit(embedding_dim, rng)
        # +1: the soft-search pooled vector keeps the GSU differentiable,
        # standing in for SIM's auxiliary search-stage loss.
        width = (schema.num_categorical + schema.num_sequential + 1) * embedding_dim
        self.tower = MLP(width, list(hidden_sizes), rng, activation="relu")

    def _retrieve_mask(self, sequence: Tensor, candidate: Tensor,
                       mask: np.ndarray) -> np.ndarray:
        """Top-k retrieval mask; selection is data-dependent but not
        differentiated through (index selection has zero gradient anyway)."""
        with no_grad():
            scores = self.search.scores(sequence.detach(), candidate.detach(),
                                        mask).data
        k = min(self.top_k, scores.shape[1])
        top = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
        retrieved = np.zeros_like(mask)
        np.put_along_axis(retrieved, top, True, axis=1)
        return retrieved & mask

    def predict_logits(self, batch: Batch) -> Tensor:
        candidate = self.embedder.candidate_embedding(batch, "item")
        pooled = []
        for j in range(self.schema.num_sequential):
            sequence = self.embedder.sequence_field_embedding(batch, j)
            if j == 0:
                retrieved = self._retrieve_mask(sequence, candidate, batch.mask)
                pooled.append(self.search(sequence, candidate, batch.mask))
            pooled.append(self.exact(sequence, candidate, retrieved))
        categorical = self.embedder.categorical_embeddings(batch).flatten_from(1)
        features = concatenate([categorical, *pooled], axis=1)
        return self.tower(features).squeeze(-1)
