"""FiGNN (Li et al., 2019): feature interactions via a field graph.

Fields are nodes of a complete directed graph (built with networkx so the
topology is explicit and testable).  Node states exchange edge-weighted
messages for a fixed number of propagation steps, with a GRU-style state
update, and an attentional read-out produces the logit.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import Dense, MultiHeadSelfAttention, Parameter, Tensor, init
from .base import DeepCTRModel

__all__ = ["FiGNNModel", "build_field_graph"]


def build_field_graph(num_fields: int) -> nx.DiGraph:
    """Complete directed field graph without self-loops."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_fields))
    graph.add_edges_from((i, j) for i in range(num_fields)
                         for j in range(num_fields) if i != j)
    return graph


class FiGNNModel(DeepCTRModel):
    """Graph neural network over the field-embedding nodes.

    One of the three MISS backbones in the compatibility study (Table V).
    """

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator, num_steps: int = 2):
        super().__init__(schema, embedding_dim, rng)
        if num_steps < 1:
            raise ValueError("need at least one propagation step")
        self.num_steps = num_steps
        num_fields = schema.num_fields
        self.graph = build_field_graph(num_fields)
        self._adjacency = nx.to_numpy_array(self.graph, nodelist=range(num_fields))
        # Learnable edge importance on top of the fixed topology.
        self.edge_weight = Parameter(np.zeros((num_fields, num_fields)))
        self.self_attention = MultiHeadSelfAttention(embedding_dim, 2, rng)
        self.w_message = Parameter(init.xavier_uniform(
            (self.self_attention.out_features, self.self_attention.out_features), rng))
        self.w_update = Parameter(init.xavier_uniform(
            (self.self_attention.out_features, self.self_attention.out_features), rng))
        self.readout_score = Dense(self.self_attention.out_features, 1, rng)
        self.readout_value = Dense(self.self_attention.out_features, 1, rng)

    def _propagation_matrix(self) -> Tensor:
        """Row-normalised edge weights restricted to the graph topology."""
        masked = self.edge_weight * Tensor(self._adjacency)
        gate = masked.exp() * Tensor(self._adjacency)
        return gate / (gate.sum(axis=1, keepdims=True) + 1e-9)

    def predict_logits(self, batch: Batch) -> Tensor:
        fields = self.embedder.field_vectors(batch)
        state = self.self_attention(fields)  # initial node states
        adjacency = self._propagation_matrix()  # (F, F)
        for _ in range(self.num_steps):
            messages = state @ self.w_message  # (B, F, D)
            aggregated = adjacency @ messages  # broadcast (F,F)@(B,F,D)
            state = (aggregated @ self.w_update + state).tanh() + state
        scores = self.readout_score(state).squeeze(-1)  # (B, F)
        values = self.readout_value(state).squeeze(-1)  # (B, F)
        return (scores.sigmoid() * values).sum(axis=1)
