"""Logistic Regression baseline (Lee et al., 2012): first-order weights only."""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import Embedding, ModuleList, Parameter, Tensor
from .base import CTRModel

__all__ = ["LRModel"]


class LRModel(CTRModel):
    """``logit = b + Σ w_f`` over all active features.

    Each categorical field contributes one scalar weight per id; each
    sequential field contributes the masked mean of its ids' weights, which
    matches the standard multi-hot encoding of behaviour histories.
    """

    def __init__(self, schema: DatasetSchema, rng: np.random.Generator):
        super().__init__(schema)
        self.weights = ModuleList([
            Embedding(spec.vocab_size, 1, rng) for spec in schema.categorical
        ])
        self.bias = Parameter(np.zeros(1))

    def predict_logits(self, batch: Batch) -> Tensor:
        logit = None
        for i in range(self.schema.num_categorical):
            term = self.weights[i](batch.categorical[:, i]).squeeze(-1)
            logit = term if logit is None else logit + term
        denom = np.maximum(batch.mask.sum(axis=1, keepdims=True), 1.0)
        pooling = Tensor(batch.mask.astype(np.float64) / denom)
        for j, table_index in enumerate(self.schema.paired_with):
            w = self.weights[table_index](batch.sequences[:, j, :]).squeeze(-1)
            logit = logit + (w * pooling).sum(axis=1)
        return logit + self.bias.broadcast_to(logit.shape)
