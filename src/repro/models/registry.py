"""Model registry: names used in the paper's tables → constructors."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.schema import DatasetSchema
from .autoint import AutoIntModel
from .base import CTRModel, DeepCTRModel
from .dcn import DCNMModel, DCNModel
from .dien import DIENModel
from .din import DINModel
from .dmr import DMRModel
from .fignn import FiGNNModel
from .fm import DeepFMModel, FMModel
from .lr import LRModel
from .pnn import IPNNModel
from .sim import SIMSoftModel
from .xdeepfm import XDeepFMModel

__all__ = ["MODEL_NAMES", "create_model", "model_class", "supports_miss"]

_FACTORIES: dict[str, Callable[..., CTRModel]] = {
    "LR": lambda schema, dim, rng, **kw: LRModel(schema, rng),
    "FM": lambda schema, dim, rng, **kw: FMModel(schema, dim, rng),
    "DeepFM": lambda schema, dim, rng, **kw: DeepFMModel(schema, dim, rng, **kw),
    "IPNN": lambda schema, dim, rng, **kw: IPNNModel(schema, dim, rng, **kw),
    "DCN": lambda schema, dim, rng, **kw: DCNModel(schema, dim, rng, **kw),
    "DCN-M": lambda schema, dim, rng, **kw: DCNMModel(schema, dim, rng, **kw),
    "xDeepFM": lambda schema, dim, rng, **kw: XDeepFMModel(schema, dim, rng, **kw),
    "DIN": lambda schema, dim, rng, **kw: DINModel(schema, dim, rng, **kw),
    "DIEN": lambda schema, dim, rng, **kw: DIENModel(schema, dim, rng, **kw),
    "SIM(soft)": lambda schema, dim, rng, **kw: SIMSoftModel(schema, dim, rng, **kw),
    "DMR": lambda schema, dim, rng, **kw: DMRModel(schema, dim, rng, **kw),
    "AutoInt+": lambda schema, dim, rng, **kw: AutoIntModel(schema, dim, rng, **kw),
    "FiGNN": lambda schema, dim, rng, **kw: FiGNNModel(schema, dim, rng, **kw),
}

_CLASSES: dict[str, type[CTRModel]] = {
    "LR": LRModel,
    "FM": FMModel,
    "DeepFM": DeepFMModel,
    "IPNN": IPNNModel,
    "DCN": DCNModel,
    "DCN-M": DCNMModel,
    "xDeepFM": XDeepFMModel,
    "DIN": DINModel,
    "DIEN": DIENModel,
    "SIM(soft)": SIMSoftModel,
    "DMR": DMRModel,
    "AutoInt+": AutoIntModel,
    "FiGNN": FiGNNModel,
}

MODEL_NAMES = tuple(_FACTORIES)


def model_class(name: str) -> type[CTRModel]:
    """The class a registry name instantiates (without building a model)."""
    if name not in _CLASSES:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    return _CLASSES[name]


def supports_miss(name: str) -> bool:
    """Whether the MISS plug-in can attach to this baseline.

    The plug-in needs the shared :class:`FeatureEmbedder` that only
    :class:`DeepCTRModel` subclasses own (see ``MISSEnhancedModel``).
    """
    return issubclass(model_class(name), DeepCTRModel)


def create_model(name: str, schema: DatasetSchema, embedding_dim: int = 10,
                 seed: int = 0, **kwargs) -> CTRModel:
    """Instantiate a baseline by its paper name (e.g. ``"DIN"``)."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    rng = np.random.default_rng(seed)
    return _FACTORIES[name](schema, embedding_dim, rng, **kwargs)
