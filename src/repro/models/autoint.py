"""AutoInt+ (Song et al., 2019): self-attentive feature interactions + deep."""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, Dense, MultiHeadSelfAttention, Tensor
from .base import DeepCTRModel

__all__ = ["AutoIntModel"]


class AutoIntModel(DeepCTRModel):
    """Stacked multi-head self-attention over field embeddings.

    The "+" variant (used in the paper) runs a deep tower in parallel and
    sums the two logits.
    """

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator, num_layers: int = 2,
                 num_heads: int = 2,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1)):
        super().__init__(schema, embedding_dim, rng)
        if num_layers < 1:
            raise ValueError("need at least one attention layer")
        layers = []
        width = embedding_dim
        for _ in range(num_layers):
            attention = MultiHeadSelfAttention(width, num_heads, rng)
            layers.append(attention)
            width = attention.out_features
        self.attention_layers = layers
        self.head = Dense(schema.num_fields * width, 1, rng)
        self.deep = MLP(self.embedder.flat_width, list(hidden_sizes), rng,
                        activation="relu")

    def predict_logits(self, batch: Batch) -> Tensor:
        fields = self.embedder.field_vectors(batch)
        attended = fields
        for layer in self.attention_layers:
            attended = layer(attended)
        explicit = self.head(attended.flatten_from(1)).squeeze(-1)
        deep = self.deep(fields.flatten_from(1)).squeeze(-1)
        return explicit + deep
