"""DMR: Deep Match to Rank (Lyu et al., 2020).

Combines a *user-to-item* network (an attention-pooled user representation
whose inner product with the candidate acts as a match score) with an
*item-to-item* network (candidate-conditioned attention over the behaviours,
position-aware), feeding both the representations and the match scores into
the ranking tower.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, Dense, LocalActivationUnit, Parameter, Tensor, concatenate, init
from ..nn import functional as F
from .base import DeepCTRModel

__all__ = ["DMRModel"]


class DMRModel(DeepCTRModel):
    """User-to-item and item-to-item matching on top of shared embeddings."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1)):
        super().__init__(schema, embedding_dim, rng)
        self.position = Parameter(init.normal((schema.max_seq_len, embedding_dim),
                                              rng, std=0.01))
        self.u2i_query = Dense(embedding_dim, embedding_dim, rng, activation="tanh")
        self.u2i_score = Dense(embedding_dim, 1, rng)
        self.i2i = LocalActivationUnit(embedding_dim, rng)
        width = (schema.num_categorical + 2) * embedding_dim + 2
        self.tower = MLP(width, list(hidden_sizes), rng, activation="relu")

    def _user_representation(self, sequence: Tensor, mask: np.ndarray) -> Tensor:
        """Position-aware additive attention pooling (no candidate input)."""
        pos = self.position.expand_dims(0).broadcast_to(sequence.shape)
        raw = self.u2i_score(self.u2i_query(sequence + pos)).squeeze(-1)
        weights = F.masked_softmax(raw, mask, axis=-1)
        return (sequence * weights.expand_dims(-1)).sum(axis=1)

    def predict_logits(self, batch: Batch) -> Tensor:
        sequence = self.embedder.sequence_field_embedding(batch, 0)
        candidate = self.embedder.candidate_embedding(batch, "item")
        user_rep = self._user_representation(sequence, batch.mask)
        u2i_match = (user_rep * candidate).sum(axis=-1, keepdims=True)
        i2i_rep = self.i2i(sequence, candidate, batch.mask)
        i2i_match = (i2i_rep * candidate).sum(axis=-1, keepdims=True)
        categorical = self.embedder.categorical_embeddings(batch).flatten_from(1)
        features = concatenate(
            [categorical, user_rep, i2i_rep, u2i_match, i2i_match], axis=1)
        return self.tower(features).squeeze(-1)
