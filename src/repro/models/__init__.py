"""The CTR model zoo: every baseline from the paper's Table IV."""

from .autoint import AutoIntModel
from .base import CTRModel, DeepCTRModel
from .dcn import CrossNetwork, CrossNetworkMatrix, DCNMModel, DCNModel
from .dien import DIENModel
from .din import DINModel
from .dmr import DMRModel
from .fignn import FiGNNModel, build_field_graph
from .fm import DeepFMModel, FMModel, fm_second_order
from .inputs import FeatureEmbedder
from .lr import LRModel
from .pnn import IPNNModel
from .registry import MODEL_NAMES, create_model, model_class, supports_miss
from .sim import SIMSoftModel
from .xdeepfm import CIN, XDeepFMModel

__all__ = [
    "CTRModel", "DeepCTRModel", "FeatureEmbedder",
    "LRModel", "FMModel", "DeepFMModel", "fm_second_order",
    "IPNNModel", "DCNModel", "DCNMModel", "CrossNetwork", "CrossNetworkMatrix",
    "XDeepFMModel", "CIN",
    "DINModel", "DIENModel", "SIMSoftModel", "DMRModel",
    "AutoIntModel", "FiGNNModel", "build_field_graph",
    "MODEL_NAMES", "create_model", "model_class", "supports_miss",
]
