"""DCN (Wang et al., 2017) and DCN-M / DCN-V2 (Wang et al., 2021)."""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, Dense, Module, Parameter, Tensor, concatenate, init
from .base import DeepCTRModel

__all__ = ["CrossNetwork", "CrossNetworkMatrix", "DCNModel", "DCNMModel"]


class CrossNetwork(Module):
    """Vector cross layers: ``x_{l+1} = x_0 * (x_l · w_l) + b_l + x_l``."""

    def __init__(self, width: int, num_layers: int, rng: np.random.Generator):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one cross layer")
        self.weights = [Parameter(init.xavier_uniform((width, 1), rng))
                        for _ in range(num_layers)]
        self.biases = [Parameter(np.zeros(width)) for _ in range(num_layers)]

    def forward(self, x0: Tensor) -> Tensor:
        x = x0
        for w, b in zip(self.weights, self.biases):
            scale = x @ w  # (B, 1)
            x = x0 * scale + b + x
        return x


class CrossNetworkMatrix(Module):
    """DCN-M cross layers: ``x_{l+1} = x_0 * (W_l x_l + b_l) + x_l``."""

    def __init__(self, width: int, num_layers: int, rng: np.random.Generator):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one cross layer")
        self.weights = [Parameter(init.xavier_uniform((width, width), rng))
                        for _ in range(num_layers)]
        self.biases = [Parameter(np.zeros(width)) for _ in range(num_layers)]

    def forward(self, x0: Tensor) -> Tensor:
        x = x0
        for w, b in zip(self.weights, self.biases):
            x = x0 * (x @ w + b) + x
        return x


class _DCNBase(DeepCTRModel):
    """Shared skeleton: cross network in parallel with a deep tower."""

    cross_cls = CrossNetwork

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator, num_cross_layers: int = 3,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40)):
        super().__init__(schema, embedding_dim, rng)
        width = self.embedder.flat_width
        self.cross = self.cross_cls(width, num_cross_layers, rng)
        self.deep = MLP(width, list(hidden_sizes), rng, activation="relu")
        self.head = Dense(width + hidden_sizes[-1], 1, rng)

    def predict_logits(self, batch: Batch) -> Tensor:
        x0 = self.embedder.field_vectors(batch).flatten_from(1)
        crossed = self.cross(x0)
        deep = self.deep(x0)
        return self.head(concatenate([crossed, deep], axis=1)).squeeze(-1)


class DCNModel(_DCNBase):
    """Deep & Cross Network with vector cross layers."""

    cross_cls = CrossNetwork


class DCNMModel(_DCNBase):
    """DCN-M: the matrix-valued cross network of DCN-V2."""

    cross_cls = CrossNetworkMatrix
