"""Shared embedding front-end for every CTR model (Eq. 3 of the paper).

One embedding table per categorical field; each sequential field *shares* the
table of its paired categorical field (item history shares the candidate-item
table, and so on).  This sharing is load-bearing for MISS: the SSL losses are
applied to sequence embeddings, and because the candidate item lives in the
same table, better-organised sequence embeddings directly improve CTR
prediction on sparse labels.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import Embedding, Module, ModuleList, Tensor, stack

__all__ = ["FeatureEmbedder"]


class FeatureEmbedder(Module):
    """Embeds a :class:`Batch` into dense tensors.

    Attributes:
        schema: The dataset schema driving table sizes and field pairing.
        embedding_dim: The paper's ``K`` (default 10).
    """

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.schema = schema
        self.embedding_dim = embedding_dim
        self.tables = ModuleList([
            Embedding(spec.vocab_size, embedding_dim, rng)
            for spec in schema.categorical
        ])

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def categorical_embeddings(self, batch: Batch) -> Tensor:
        """``(B, I, K)`` embeddings of the categorical features."""
        columns = [
            self.tables[i](batch.categorical[:, i])
            for i in range(self.schema.num_categorical)
        ]
        return stack(columns, axis=1)

    def sequence_embeddings(self, batch: Batch) -> Tensor:
        """The tensor ``C ∈ (B, J, L, K)`` of Eq. 18."""
        rows = []
        for j, table_index in enumerate(self.schema.paired_with):
            rows.append(self.tables[table_index](batch.sequences[:, j, :]))
        return stack(rows, axis=1)

    def candidate_embedding(self, batch: Batch, field: str = "item") -> Tensor:
        """``(B, K)`` embedding of one candidate-side categorical field."""
        index = self.schema.categorical_index(field)
        return self.tables[index](batch.categorical[:, index])

    def sequence_field_embedding(self, batch: Batch, j: int) -> Tensor:
        """``(B, L, K)`` embeddings of the j-th sequential field."""
        table_index = self.schema.paired_with[j]
        return self.tables[table_index](batch.sequences[:, j, :])

    # ------------------------------------------------------------------
    # Pooling helpers
    # ------------------------------------------------------------------
    def masked_mean_pool(self, sequence: Tensor, mask: np.ndarray) -> Tensor:
        """Mean over valid positions of ``(B, L, K)`` → ``(B, K)``.

        Fully padded rows pool to zero.
        """
        weights = mask.astype(np.float64)
        denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
        normalized = Tensor((weights / denom)[:, :, None])
        return (sequence * normalized).sum(axis=1)

    def field_vectors(self, batch: Batch) -> Tensor:
        """``(B, I + J, K)``: one vector per field.

        Categorical fields use their embedding directly; sequential fields
        are masked-mean pooled.  This is the common input format for the
        feature-interaction models (FM, DeepFM, IPNN, DCN, xDeepFM, AutoInt,
        FiGNN).
        """
        columns = [
            self.tables[i](batch.categorical[:, i])
            for i in range(self.schema.num_categorical)
        ]
        for j in range(self.schema.num_sequential):
            pooled = self.masked_mean_pool(
                self.sequence_field_embedding(batch, j), batch.mask)
            columns.append(pooled)
        return stack(columns, axis=1)

    @property
    def num_fields(self) -> int:
        return self.schema.num_fields

    @property
    def flat_width(self) -> int:
        """Width of the concatenated field vectors."""
        return self.num_fields * self.embedding_dim
