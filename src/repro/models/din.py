"""DIN: Deep Interest Network (Zhou et al., 2018) — the paper's base model.

Embedding initialisation → local-activation-unit pooling (Eq. 4) → MLP with
Dice activations (Eq. 5-6).  Each sequential field is pooled against the
candidate-side embedding it pairs with.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, LocalActivationUnit, ModuleList, Tensor, concatenate
from .base import DeepCTRModel

__all__ = ["DINModel"]


class DINModel(DeepCTRModel):
    """The default backbone of the MISS framework (Figure 3, right)."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1),
                 activation: str = "dice"):
        super().__init__(schema, embedding_dim, rng)
        self.pooling = ModuleList([
            LocalActivationUnit(embedding_dim, rng)
            for _ in range(schema.num_sequential)
        ])
        # Tower input: categorical embeddings, pooled interests, and the
        # interest × candidate products (elementwise and scalar) that let the
        # MLP read off "is the candidate similar to the pooled interest".
        width = ((schema.num_categorical + 2 * schema.num_sequential)
                 * embedding_dim + schema.num_sequential)
        self.tower = MLP(width, list(hidden_sizes), rng, activation=activation)

    def pooled_interests(self, batch: Batch) -> list[Tensor]:
        """LAUP-pooled ``(B, K)`` interest vectors, one per sequential field."""
        pooled = []
        for j in range(self.schema.num_sequential):
            sequence = self.embedder.sequence_field_embedding(batch, j)
            candidate_field = self.schema.categorical[self.schema.paired_with[j]].name
            candidate = self.embedder.candidate_embedding(batch, candidate_field)
            pooled.append(self.pooling[j](sequence, candidate, batch.mask))
        return pooled

    def predict_logits(self, batch: Batch) -> Tensor:
        categorical = self.embedder.categorical_embeddings(batch).flatten_from(1)
        pooled = self.pooled_interests(batch)
        columns = [categorical, *pooled]
        for j, interest in enumerate(pooled):
            candidate_field = self.schema.categorical[self.schema.paired_with[j]].name
            candidate = self.embedder.candidate_embedding(batch, candidate_field)
            product = interest * candidate
            columns.append(product)
            columns.append(product.sum(axis=-1, keepdims=True))
        features = concatenate(columns, axis=1)
        return self.tower(features).squeeze(-1)
