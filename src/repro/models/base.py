"""Common interface for all CTR prediction models."""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import Module, Tensor, no_grad
from ..nn import functional as F
from .inputs import FeatureEmbedder

__all__ = ["CTRModel", "DeepCTRModel"]


class CTRModel(Module):
    """Abstract CTR model: maps a :class:`Batch` to click logits.

    Subclasses implement :meth:`predict_logits`; the default training loss is
    the batch-wise Logloss of Eq. (7).
    """

    def __init__(self, schema: DatasetSchema):
        super().__init__()
        self.schema = schema

    def predict_logits(self, batch: Batch) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward(self, batch: Batch) -> Tensor:
        return self.predict_logits(batch)

    def training_loss(self, batch: Batch) -> Tensor:
        """Scalar loss optimised by the trainer (Logloss by default)."""
        return F.binary_cross_entropy_with_logits(self.predict_logits(batch),
                                                  batch.labels)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Click probabilities with the graph disabled (for evaluation)."""
        with no_grad():
            return self.predict_logits(batch).sigmoid().data


class DeepCTRModel(CTRModel):
    """A CTR model that owns a :class:`FeatureEmbedder`.

    Every deep baseline (and MISS itself) derives from this; the shared
    embedder is what the MISS plug-in reaches into when it attaches SSL
    losses to an arbitrary base model.
    """

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator):
        super().__init__(schema)
        self.embedding_dim = embedding_dim
        self.embedder = FeatureEmbedder(schema, embedding_dim, rng)
