"""Factorization Machines (Rendle, 2010) and DeepFM (Guo et al., 2017)."""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, Tensor
from .base import DeepCTRModel
from .lr import LRModel

__all__ = ["FMModel", "DeepFMModel", "fm_second_order"]


def fm_second_order(field_vectors: Tensor) -> Tensor:
    """FM pairwise-interaction term from ``(B, F, K)`` field embeddings.

    Uses the O(FK) identity ``0.5 * ((Σ v)^2 - Σ v^2)`` summed over K.
    """
    summed = field_vectors.sum(axis=1)
    square_of_sum = summed * summed
    sum_of_square = (field_vectors * field_vectors).sum(axis=1)
    return ((square_of_sum - sum_of_square) * 0.5).sum(axis=1)


class FMModel(DeepCTRModel):
    """First-order weights + factorised second-order interactions."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator):
        super().__init__(schema, embedding_dim, rng)
        self.linear = LRModel(schema, rng)

    def predict_logits(self, batch: Batch) -> Tensor:
        first = self.linear.predict_logits(batch)
        second = fm_second_order(self.embedder.field_vectors(batch))
        return first + second


class DeepFMModel(DeepCTRModel):
    """FM and a deep tower sharing the same embeddings (paper baseline)."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1)):
        super().__init__(schema, embedding_dim, rng)
        self.linear = LRModel(schema, rng)
        self.deep = MLP(self.embedder.flat_width, list(hidden_sizes), rng,
                        activation="relu")

    def predict_logits(self, batch: Batch) -> Tensor:
        fields = self.embedder.field_vectors(batch)
        first = self.linear.predict_logits(batch)
        second = fm_second_order(fields)
        deep = self.deep(fields.flatten_from(1)).squeeze(-1)
        return first + second + deep
