"""xDeepFM (Lian et al., 2018): Compressed Interaction Network + deep tower."""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import MLP, Dense, Module, Parameter, Tensor, concatenate, init
from .base import DeepCTRModel
from .lr import LRModel

__all__ = ["CIN", "XDeepFMModel"]


class CIN(Module):
    """Compressed Interaction Network over ``(B, F, K)`` field embeddings.

    Layer ``k`` computes every outer interaction between the previous layer's
    feature maps and the raw fields, then compresses them with a learned
    ``(H_k, H_{k-1}·F)`` matrix.  The per-layer sum-pooling over K yields the
    final explicit-interaction features.
    """

    def __init__(self, num_fields: int, layer_sizes: tuple[int, ...],
                 rng: np.random.Generator):
        super().__init__()
        if not layer_sizes:
            raise ValueError("CIN needs at least one layer")
        self.layer_sizes = layer_sizes
        self.weights = []
        previous = num_fields
        for size in layer_sizes:
            self.weights.append(
                Parameter(init.xavier_uniform((size, previous * num_fields), rng)))
            previous = size
        self.out_features = sum(layer_sizes)

    def forward(self, fields: Tensor) -> Tensor:
        batch, num_fields, dim = fields.shape
        x0 = fields
        x = fields
        pooled = []
        for weight in self.weights:
            # Outer interactions: (B, H_prev, 1, K) * (B, 1, F, K)
            z = x.expand_dims(2) * x0.expand_dims(1)
            z = z.reshape((batch, x.shape[1] * num_fields, dim))
            x = weight @ z  # (H_k, H_prev*F) @ (B, H_prev*F, K) -> (B, H_k, K)
            x = x.relu()
            pooled.append(x.sum(axis=2))  # (B, H_k)
        return concatenate(pooled, axis=1)


class XDeepFMModel(DeepCTRModel):
    """Linear + CIN + deep tower, combined at the logit level."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator,
                 cin_sizes: tuple[int, ...] = (8, 8),
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1)):
        super().__init__(schema, embedding_dim, rng)
        self.linear = LRModel(schema, rng)
        self.cin = CIN(schema.num_fields, cin_sizes, rng)
        self.cin_head = Dense(self.cin.out_features, 1, rng)
        self.deep = MLP(self.embedder.flat_width, list(hidden_sizes), rng,
                        activation="relu")

    def predict_logits(self, batch: Batch) -> Tensor:
        fields = self.embedder.field_vectors(batch)
        linear = self.linear.predict_logits(batch)
        explicit = self.cin_head(self.cin(fields)).squeeze(-1)
        deep = self.deep(fields.flatten_from(1)).squeeze(-1)
        return linear + explicit + deep
