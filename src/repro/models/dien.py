"""DIEN: Deep Interest Evolution Network (Zhou et al., 2019).

Two-stage interest modelling over the item history: a GRU extracts per-step
interest states, an auxiliary loss supervises them with next-behaviour
prediction, and an attention-gated AUGRU evolves the states toward the
candidate item.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..data.schema import DatasetSchema
from ..nn import AUGRU, GRU, MLP, DotProductAttention, Tensor, concatenate
from ..nn import functional as F
from .base import DeepCTRModel

__all__ = ["DIENModel"]


class DIENModel(DeepCTRModel):
    """GRU interest extraction + AUGRU interest evolution + deep tower."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 rng: np.random.Generator,
                 hidden_sizes: tuple[int, ...] = (40, 40, 40, 1),
                 aux_weight: float = 0.5):
        super().__init__(schema, embedding_dim, rng)
        self.aux_weight = aux_weight
        self.extractor = GRU(embedding_dim, embedding_dim, rng)
        self.evolver = AUGRU(embedding_dim, embedding_dim, rng)
        self.attention = DotProductAttention(embedding_dim, rng)
        self._aux_rng = np.random.default_rng(rng.integers(1 << 31))
        width = (schema.num_categorical + 1 +
                 max(0, schema.num_sequential - 1)) * embedding_dim
        self.tower = MLP(width, list(hidden_sizes), rng, activation="relu")

    def _interest_states(self, batch: Batch) -> tuple[Tensor, Tensor]:
        behaviours = self.embedder.sequence_field_embedding(batch, 0)
        states, _ = self.extractor(behaviours, batch.mask)
        return behaviours, states

    def predict_logits(self, batch: Batch) -> Tensor:
        _, states = self._interest_states(batch)
        candidate = self.embedder.candidate_embedding(batch, "item")
        scores = self.attention.scores(states, candidate, batch.mask)
        _, final = self.evolver(states, scores, batch.mask)
        columns = [self.embedder.categorical_embeddings(batch).flatten_from(1), final]
        # Remaining sequential fields (category/seller histories) mean-pool.
        for j in range(1, self.schema.num_sequential):
            columns.append(self.embedder.masked_mean_pool(
                self.embedder.sequence_field_embedding(batch, j), batch.mask))
        return self.tower(concatenate(columns, axis=1)).squeeze(-1)

    def auxiliary_loss(self, batch: Batch) -> Tensor:
        """Next-behaviour discrimination on the extracted interest states.

        The state at step t should score the *true* behaviour at t+1 higher
        than a behaviour shuffled in from another sample of the batch.
        """
        behaviours, states = self._interest_states(batch)
        valid = batch.mask[:, 1:] & batch.mask[:, :-1]
        if not valid.any():
            return Tensor(0.0)
        h = states[:, :-1, :]
        positive = behaviours[:, 1:, :]
        # In-batch negatives: roll the behaviour tensor along the batch axis.
        shift = 1 + int(self._aux_rng.integers(max(1, len(batch) - 1)))
        negative = Tensor(np.roll(positive.data, shift, axis=0))
        pos_logit = (h * positive).sum(axis=-1)
        neg_logit = (h * negative).sum(axis=-1)
        weights = Tensor(valid.astype(np.float64) / valid.sum())
        pos_term = (pos_logit.sigmoid() + 1e-9).log() * weights
        neg_term = ((1.0 - neg_logit.sigmoid()) + 1e-9).log() * weights
        return -(pos_term + neg_term).sum()

    def training_loss(self, batch: Batch) -> Tensor:
        main = F.binary_cross_entropy_with_logits(self.predict_logits(batch),
                                                  batch.labels)
        return main + self.aux_weight * self.auxiliary_loss(batch)
