"""Single-process emulation of a W-rank data-parallel run.

The determinism contract of :mod:`repro.distributed` is that a training
trajectory is a pure function of ``(seed, world_size)`` — the number of OS
processes executing it never changes a bit.  This module is the other half
of that claim: it drives the *same* W-rank schedule (same shard partitions,
same per-rank loader RNG streams, same per-rank module RNG streams, same
:func:`~.collective.pairwise_fold` reduction tree, same optimizer) inside
one process, one model, by swapping per-virtual-rank RNG states around each
micro-batch.  ``scripts/distributed_smoke.py`` and ``bench-distributed``
compare a real N-process run against this emulation and assert bitwise
equality of every step loss and every final parameter.

It is also the practical ``--num-procs N --dist-emulate`` path for running
the W-rank math on machines where spawning processes is unwanted, and the
reference comparator the issue calls "the 1-proc run at equal global batch
size": W micro-batches summed over the fixed fold tree *is* the global
batch of ``W × batch_size`` rows.

Resume is intentionally unsupported here (process mode owns checkpointing);
the emulator always runs start-to-finish.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.batching import DataLoader
from ..data.pipeline import ShardPartitionView, ShardedCTRDataset, \
    partition_shards
from ..obs import MetricRegistry
from ..resilience import named_rng_states, restore_rng_states
from ..training import TrainConfig, evaluate, improvement
from .collective import apply_update, rank_rng, reduce_mean, steps_per_epoch
from .shm import FlatLayout
from .worker import DistSpec, build_model

__all__ = ["run_emulated"]


def _buffer_state(model) -> dict[str, np.ndarray]:
    return {name: b.value.copy() for name, b in model.named_buffers()}


def _restore_buffers(model, state: dict[str, np.ndarray]) -> None:
    for name, b in model.named_buffers():
        b.value = state[name].copy()


def run_emulated(spec: DistSpec) -> dict:
    """Run ``spec`` start-to-finish in one process; returns the same payload
    shape rank 0 writes to ``result.json``, plus the final weights."""
    if spec.resume_step is not None:
        raise ValueError("emulation mode cannot resume; run process mode "
                         "(num_procs > 1) against the checkpoint directory")
    if spec.fail_at is not None:
        raise ValueError("fail_at chaos injection requires process mode")
    cfg = TrainConfig(**spec.config)
    world = spec.world_size

    train = ShardedCTRDataset(spec.train_dir, cache_shards=spec.cache_shards)
    parts = partition_shards(train.num_shards, world)
    views = [ShardPartitionView(train, shard_ids) for shard_ids in parts]
    rows = train.shard_rows()
    part_rows = [sum(rows[i] for i in shard_ids) for shard_ids in parts]
    steps = steps_per_epoch(part_rows, cfg.batch_size)
    validation = ShardedCTRDataset(spec.val_dir).materialize()

    model = build_model(spec, train.schema)
    params = model.parameters()
    layout = FlatLayout.from_parameters(model.named_parameters())
    from ..nn import Adam
    optimizer = Adam(params, lr=cfg.learning_rate,
                     weight_decay=cfg.weight_decay)

    # Every virtual rank starts from the same module RNG states (all ranks
    # build the model from the same seed) and then advances its own copy —
    # exactly what W separate processes would do.  Buffers (Dice running
    # stats) get the same treatment: the allreduce broadcasts parameters
    # only, so in process mode each rank's buffers drift with its own
    # micro-batches and evaluation/selection run under rank 0's.
    mod_states = [named_rng_states(model) for _ in range(world)]
    buf_states = [_buffer_state(model) for _ in range(world)]
    loaders = [DataLoader(views[r], batch_size=cfg.batch_size, shuffle=True,
                          rng=rank_rng(cfg.seed, r)) for r in range(world)]
    grad_parts = [np.empty(layout.size, dtype=np.float64)
                  for _ in range(world)]

    registry = MetricRegistry()
    steps_counters = [registry.counter(f"dist.rank.{r}.steps")
                      for r in range(world)]
    rows_counters = [registry.counter(f"dist.rank.{r}.rows")
                     for r in range(world)]

    state = {
        "epoch": 0, "step": 0, "best_auc": -np.inf, "best_state": None,
        "best_epoch": -1, "bad_epochs": 0,
    }
    history, train_losses, step_losses, epoch_seconds = [], [], [], []

    model.train()
    run_start = time.perf_counter()
    while True:
        epoch = state["epoch"]
        epoch_start = time.perf_counter()
        iters = [loader.iter_batches() for loader in loaders]
        epoch_loss = 0.0
        for _ in range(steps):
            losses = []
            for r in range(world):
                # Swap in rank r's private module RNG streams and buffer
                # values for its micro-batch (MISS SSL pair sampling and
                # dropout draw RNG in the training forward; Dice updates its
                # running stats), then capture where they advanced to.
                restore_rng_states(model, mod_states[r])
                _restore_buffers(model, buf_states[r])
                batch = next(iters[r])
                for p in params:
                    p.grad = None
                loss = model.training_loss(batch)
                losses.append(loss.item())
                loss.backward()
                layout.pack_grads(params, grad_parts[r])
                mod_states[r] = named_rng_states(model)
                buf_states[r] = _buffer_state(model)
                steps_counters[r].inc()
                rows_counters[r].inc(len(batch.labels))
            apply_update(optimizer, layout, grad_parts, cfg.grad_clip)
            mean_loss = reduce_mean(losses)
            state["step"] += 1
            epoch_loss += mean_loss
            step_losses.append(float(mean_loss))
        epoch_seconds.append(time.perf_counter() - epoch_start)

        train_losses.append(epoch_loss / max(steps, 1))
        # Evaluation and selection are rank 0's in process mode, so they run
        # under rank 0's buffer view here (eval mode draws no RNG and reads
        # running stats without updating them).
        _restore_buffers(model, buf_states[0])
        result = evaluate(model, validation, batch_size=cfg.eval_batch_size)
        history.append(result)
        if improvement(result.auc, state["best_auc"]):
            state["best_auc"] = result.auc
            state["best_state"] = model.state_dict()
            state["best_epoch"] = epoch
            state["bad_epochs"] = 0
        else:
            state["bad_epochs"] += 1
        state["epoch"] = epoch + 1
        if epoch + 1 >= cfg.epochs or state["bad_epochs"] >= cfg.patience:
            break

    if state["best_state"] is None:
        raise RuntimeError(
            "emulated training never produced a finite validation AUC "
            f"({state['epoch']} epoch(s)); refusing to select final weights")
    return {
        "mode": "emulated",
        "world_size": world,
        "best_epoch": state["best_epoch"],
        "epochs_run": state["epoch"],
        "steps": state["step"],
        "steps_per_epoch": steps,
        "partition_rows": [int(r) for r in part_rows],
        "history": [{"auc": float(r.auc), "logloss": float(r.logloss)}
                    for r in history],
        "train_losses": [float(v) for v in train_losses],
        "step_losses": step_losses,
        "epoch_seconds": [float(s) for s in epoch_seconds],
        "wall_time_s": float(time.perf_counter() - run_start),
        "completed": True,
        "final_state": state["best_state"],
        "metrics": registry.snapshot(),
    }
