"""Spawn, monitor, and harvest a fleet of data-parallel worker ranks.

``run_distributed`` owns everything outside the per-rank loop: it sizes the
:class:`~.shm.FlatLayout` from a throwaway parent-side model build, creates
the shared-memory arena (under ``/dev/shm`` when the platform has it, so
"file-backed" means tmpfs pages), spawns one process per rank with three
shared barriers, and watches exit codes.  A rank that dies — crash, OOM
kill, or the ``fail_at`` chaos hook — strands its peers at a barrier; the
monitor aborts the barriers, reaps the survivors, and raises
:class:`DistributedRunError` naming the failed ranks.  Nothing hangs.

Resume is decided *here*, not in the workers: the launcher reads rank 0's
``dist-manifest.json`` and picks the newest commit for which **every**
rank's checkpoint file exists — the manifest is the commit record, the
per-rank files are the payload, and a commit missing any rank's file is
treated as never having happened (exactly the torn-write discipline of
:mod:`repro.resilience`).  If the newest such commit is flagged complete,
the result is rebuilt from rank 0's checkpoint without spawning anything.

BLAS thread pools are pinned to one thread in every rank before spawn:
intra-op reduction order is then fixed, and cross-rank order is owned by
the :func:`~.collective.pairwise_fold` tree — together they make the
trajectory a pure function of ``(seed, world_size)``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..data.batching import CTRDataset
from ..data.pipeline import ShardedCTRDataset, write_shards
from .emulate import run_emulated
from .shm import FlatLayout, SharedArena
from .worker import (
    DistSpec,
    build_model,
    rank_checkpoint_dir,
    read_manifest,
    worker_main,
)

__all__ = ["DistResult", "DistributedRunError", "run_distributed",
           "prepare_dist_data"]

#: Pinned in every rank's environment before spawn (children re-import numpy
#: under these, so the BLAS pool really is a single thread per rank).
_BLAS_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
              "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS")

_MONITOR_POLL_S = 0.25


class DistributedRunError(RuntimeError):
    """A worker rank exited abnormally (the run may be resumable)."""

    def __init__(self, message: str, failed_ranks: list[int]):
        super().__init__(message)
        self.failed_ranks = failed_ranks


@dataclass
class DistResult:
    """Harvested outcome of one distributed (or emulated) run."""

    world_size: int
    mode: str                       # "process" | "emulated" | "resumed-complete"
    best_epoch: int
    epochs_run: int
    steps: int
    steps_per_epoch: int
    partition_rows: list[int]
    history: list[dict]             # [{"auc", "logloss"}] per epoch
    train_losses: list[float]
    step_losses: list[float]
    epoch_seconds: list[float]
    wall_time_s: float
    final_state: dict[str, np.ndarray]
    metrics: dict = field(default_factory=dict)


def prepare_dist_data(train: CTRDataset, validation: CTRDataset,
                      directory: str | Path,
                      shard_size: int = 2048) -> tuple[Path, Path]:
    """Write the two shard directories a :class:`DistSpec` points at.

    ``shard_size`` controls the training shard count and therefore the
    partition granularity (``world_size`` may not exceed the shard count).
    Existing directories with an index are reused as-is.
    """
    directory = Path(directory)
    train_dir = directory / "train"
    val_dir = directory / "validation"
    if not (train_dir / "index.json").exists():
        write_shards(train, train_dir, shard_size=shard_size)
    if not (val_dir / "index.json").exists():
        write_shards(validation, val_dir, shard_size=shard_size)
    return train_dir, val_dir


def _workdir() -> Path:
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    return Path(tempfile.mkdtemp(prefix="repro-dist-", dir=base))


def _select_resume_step(spec: DistSpec) -> tuple[int | None, bool]:
    """Newest manifest commit backed by every rank's checkpoint file.

    Returns ``(step, completed)``; ``(None, False)`` when nothing on disk is
    resumable.  Commits missing any rank's file are skipped — a kill between
    a rank's save and the manifest write must look like it never happened.
    """
    manifest = read_manifest(spec.checkpoint_dir)
    if manifest is None:
        return None, False
    if manifest.get("world_size") != spec.world_size:
        raise DistributedRunError(
            f"checkpoint directory {spec.checkpoint_dir} holds a manifest "
            f"for world_size={manifest.get('world_size')}, but this run has "
            f"world_size={spec.world_size}; resume must keep the world size",
            failed_ranks=[])
    from ..resilience import CheckpointStore
    stores = [CheckpointStore(rank_checkpoint_dir(spec.checkpoint_dir, r))
              for r in range(spec.world_size)]
    for commit in reversed(manifest.get("commits", [])):
        step = int(commit["step"])
        if all(store.has_step(step) for store in stores):
            return step, bool(commit.get("completed", False))
    return None, False


def _completed_result(spec: DistSpec) -> DistResult:
    """Rebuild the result of an already-finished run from rank 0's final
    checkpoint (its model state *is* the best-epoch weights)."""
    from ..resilience import CheckpointStore
    store = CheckpointStore(rank_checkpoint_dir(spec.checkpoint_dir, 0))
    ckpt, _, _ = store.load_latest()
    if ckpt is None or not ckpt.completed:
        raise DistributedRunError(
            "manifest says the run completed but rank 0's final checkpoint "
            "is unreadable", failed_ranks=[0])
    manifest = read_manifest(spec.checkpoint_dir)
    commit = manifest["commits"][-1]
    return DistResult(
        world_size=spec.world_size, mode="resumed-complete",
        best_epoch=ckpt.best_epoch, epochs_run=ckpt.epochs_run,
        steps=ckpt.step, steps_per_epoch=0,
        partition_rows=[], history=list(ckpt.history),
        train_losses=list(ckpt.train_losses),
        step_losses=[float(v) for v in commit.get("step_losses", [])],
        epoch_seconds=[], wall_time_s=0.0,
        final_state=dict(ckpt.model_state))


def _merge_metrics(workdir: Path, world_size: int) -> dict:
    """One flat registry dump: rank-scoped names pass through, shared
    pipeline telemetry gets a ``dist.rank.<r>.`` prefix per rank."""
    merged: dict = {}
    for rank in range(world_size):
        path = workdir / f"metrics-rank{rank}.json"
        if not path.exists():
            continue
        for name, snap in json.loads(path.read_text()).items():
            key = name if name.startswith("dist.") \
                else f"dist.rank.{rank}.{name}"
            merged[key] = snap
    return merged


def run_distributed(spec: DistSpec, *, resume: bool = False,
                    emulate: bool = False) -> DistResult:
    """Run ``spec`` to completion and return the harvested result."""
    if spec.world_size < 1:
        raise ValueError("world_size must be >= 1")
    if emulate:
        payload = run_emulated(spec)
        final_state = payload.pop("final_state")
        metrics = payload.pop("metrics")
        payload.pop("completed", None)
        return DistResult(**payload, final_state=final_state,
                          metrics=metrics)
    if resume:
        if spec.checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        step, completed = _select_resume_step(spec)
        if completed:
            return _completed_result(spec)
        if step is not None:
            spec = replace(spec, resume_step=step)
    return _run_processes(spec)


def _run_processes(spec: DistSpec) -> DistResult:
    for var in _BLAS_VARS:
        os.environ[var] = "1"
    workdir = _workdir()
    try:
        schema = ShardedCTRDataset(spec.train_dir).schema
        sizing_model = build_model(spec, schema)
        layout = FlatLayout.from_parameters(sizing_model.named_parameters())
        arena = SharedArena.create(workdir, spec.world_size, layout.size)

        ctx = mp.get_context("spawn")
        barriers = tuple(ctx.Barrier(spec.world_size) for _ in range(3))
        procs = [
            ctx.Process(target=worker_main,
                        args=(rank, spec, arena.spec(), barriers,
                              str(workdir)),
                        name=f"repro-dist-rank{rank}")
            for rank in range(spec.world_size)
        ]
        for p in procs:
            p.start()
        _monitor(procs, barriers)
        return _harvest(spec, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _monitor(procs, barriers) -> None:
    """Join all ranks; on any abnormal exit, abort the barriers so the
    survivors unblock, reap them, and raise naming the failed ranks."""
    while True:
        alive = False
        for p in procs:
            p.join(timeout=_MONITOR_POLL_S)
            if p.is_alive():
                alive = True
            elif p.exitcode != 0:
                _abort(procs, barriers)
                failed = [(r, q.exitcode) for r, q in enumerate(procs)
                          if q.exitcode not in (0, None)]
                # Exit code 3 is the worker's "peer broke my barrier" exit —
                # report the original casualties, fall back to everything.
                primary = [r for r, code in failed if code != 3] \
                    or [r for r, _ in failed]
                raise DistributedRunError(
                    "distributed run failed: "
                    + ", ".join(f"rank {r} exit {code}" for r, code in failed)
                    + "; resume from the checkpoint directory to continue",
                    failed_ranks=primary)
        if not alive:
            return


def _abort(procs, barriers) -> None:
    for barrier in barriers:
        barrier.abort()
    deadline = time.monotonic() + 5.0
    for p in procs:
        p.join(timeout=max(0.1, deadline - time.monotonic()))
        if p.is_alive():
            p.terminate()
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - terminate() sufficed so far
                p.kill()
                p.join()


def _harvest(spec: DistSpec, workdir: Path) -> DistResult:
    result_path = workdir / "result.json"
    if not result_path.exists():  # pragma: no cover - defensive
        raise DistributedRunError(
            "all ranks exited 0 but rank 0 left no result.json",
            failed_ranks=[0])
    payload = json.loads(result_path.read_text())
    with np.load(workdir / "final_state.npz") as archive:
        final_state = {name: archive[name].copy() for name in archive.files}
    return DistResult(
        world_size=payload["world_size"], mode="process",
        best_epoch=payload["best_epoch"], epochs_run=payload["epochs_run"],
        steps=payload["steps"], steps_per_epoch=payload["steps_per_epoch"],
        partition_rows=payload["partition_rows"],
        history=payload["history"], train_losses=payload["train_losses"],
        step_losses=payload["step_losses"],
        epoch_seconds=payload["epoch_seconds"],
        wall_time_s=payload["wall_time_s"],
        final_state=final_state,
        metrics=_merge_metrics(workdir, spec.world_size))
