"""Data-parallel multi-process training (DESIGN.md §15).

``N`` worker processes each own a disjoint round-robin partition of the
training shards, run the existing model/optimizer math locally, and
synchronise gradients through shared-memory buffers with a rank-0 allreduce
per step.  The determinism contract: a trajectory is a pure function of
``(seed, world_size)`` — process mode and the single-process emulator
produce bitwise-identical losses and weights, and ``world_size=1`` through
this machinery reproduces the plain :class:`~repro.training.Trainer`
trajectory for the same data order.

Public surface:

* :func:`run_distributed` / :class:`DistSpec` / :class:`DistResult` — the
  launcher (spawn, monitor, resume selection, harvest).
* :func:`run_emulated` — the W-rank schedule in one process (the
  bit-identity comparator).
* :func:`prepare_dist_data` — write the train/validation shard directories
  a spec points at.
* :mod:`~repro.distributed.collective` / :mod:`~repro.distributed.shm` —
  the fold-tree reduction math and the memmap transport.
"""

from .collective import (
    apply_update,
    pairwise_fold,
    rank_rng,
    reduce_mean,
    steps_per_epoch,
)
from .emulate import run_emulated
from .launcher import (
    DistResult,
    DistributedRunError,
    prepare_dist_data,
    run_distributed,
)
from .shm import FlatLayout, SharedArena
from .worker import DistSpec, build_model, read_manifest, worker_main

__all__ = [
    "DistSpec", "DistResult", "DistributedRunError",
    "run_distributed", "run_emulated", "prepare_dist_data",
    "pairwise_fold", "reduce_mean", "apply_update", "rank_rng",
    "steps_per_epoch", "FlatLayout", "SharedArena",
    "build_model", "read_manifest", "worker_main",
]
