"""Shared-memory gradient/parameter buffers for data-parallel workers.

The transport is a handful of file-backed ``np.memmap`` buffers (the
launcher places them under ``/dev/shm`` when available, so "file" means
tmpfs pages, not disk).  ``MAP_SHARED`` mappings of one file are coherent
across processes — a rank's write is visible to rank 0 as soon as the
barrier orders it — and unlike ``multiprocessing.shared_memory`` there is
no resource-tracker to fight over unlink ownership: the launcher owns the
run directory and removes it when the run ends.

Everything that crosses the process boundary is float64.  That is not a
simplification — the whole determinism contract of :mod:`repro.distributed`
rests on it: parameters and gradients are float64 end to end, so a pack →
memmap → unpack round trip is bit-exact and process-mode training can be
replayed bitwise by the single-process emulator.

:class:`FlatLayout` is the schema: a fixed (name, shape, offset) table
mapping a module's parameter list onto one flat vector, shared by the
parameter buffer, every per-rank gradient slot, and the checkpointed
state it is rebuilt from.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["FlatLayout", "SharedArena", "CTL_STOP", "CTL_LOSS",
           "CTL_GRAD_NORM", "CTL_SLOTS"]

#: Control-word slots (float64 each) rank 0 publishes per step/epoch.
CTL_STOP = 0        # 1.0 => early stop / epoch budget reached, ranks exit
CTL_LOSS = 1        # reduced mean loss of the last step
CTL_GRAD_NORM = 2   # pre-clip global gradient norm of the last step
CTL_SLOTS = 4


class FlatLayout:
    """Fixed mapping of named float64 arrays onto one flat vector."""

    def __init__(self, specs: list[tuple[str, tuple[int, ...]]]):
        if not specs:
            raise ValueError("layout needs at least one array")
        self.names: list[str] = []
        self.shapes: list[tuple[int, ...]] = []
        self.offsets: list[int] = []
        offset = 0
        for name, shape in specs:
            shape = tuple(int(d) for d in shape)
            self.names.append(str(name))
            self.shapes.append(shape)
            self.offsets.append(offset)
            offset += int(np.prod(shape, dtype=np.int64)) if shape else 1
        self.size = offset

    @classmethod
    def from_parameters(cls, named_parameters) -> "FlatLayout":
        """Layout over a module's ``named_parameters()`` (order-preserving)."""
        specs = []
        for name, p in named_parameters:
            if p.data.dtype != np.float64:
                raise TypeError(
                    f"parameter {name!r} has dtype {p.data.dtype}; the "
                    f"shared-memory transport is float64-only")
            specs.append((name, p.data.shape))
        return cls(specs)

    def _slices(self):
        for shape, offset in zip(self.shapes, self.offsets):
            n = int(np.prod(shape, dtype=np.int64)) if shape else 1
            yield shape, offset, n

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def pack_params(self, parameters, out: np.ndarray) -> None:
        """``out[:] = concat(p.data)`` in layout order (no allocation)."""
        self._check(out)
        for p, (shape, offset, n) in zip(parameters, self._slices()):
            out[offset:offset + n] = p.data.reshape(-1)

    def unpack_params(self, flat: np.ndarray, parameters) -> None:
        """Copy ``flat`` back into each ``p.data`` in place."""
        self._check(flat)
        for p, (shape, offset, n) in zip(parameters, self._slices()):
            p.data[...] = flat[offset:offset + n].reshape(shape)

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def pack_grads(self, parameters, out: np.ndarray) -> None:
        """``out[:] = concat(p.grad)``; a ``None`` grad packs as zeros."""
        self._check(out)
        for p, (shape, offset, n) in zip(parameters, self._slices()):
            if p.grad is None:
                out[offset:offset + n] = 0.0
            else:
                out[offset:offset + n] = p.grad.reshape(-1)

    def scatter_grads(self, flat: np.ndarray, parameters) -> None:
        """Point each ``p.grad`` at its slice of ``flat`` (views, not
        copies — the caller owns ``flat`` as scratch for this step)."""
        self._check(flat)
        for p, (shape, offset, n) in zip(parameters, self._slices()):
            p.grad = flat[offset:offset + n].reshape(shape)

    def _check(self, flat: np.ndarray) -> None:
        if flat.shape != (self.size,) or flat.dtype != np.float64:
            raise ValueError(
                f"flat buffer must be float64 of shape ({self.size},), "
                f"got {flat.dtype} {flat.shape}")


@dataclass(frozen=True)
class _ArenaSpec:
    """Picklable description a child process reopens the arena from."""

    directory: str
    world_size: int
    param_size: int


class SharedArena:
    """The run's shared buffers: params (P), grads (W×P), losses (W), ctl.

    Created once by the launcher (``create``), reopened read-write by every
    worker from the picklable :meth:`spec`.  All buffers are float64
    memmaps over files in the run directory.
    """

    _FILES = ("params", "grads", "losses", "ctl")

    def __init__(self, spec: _ArenaSpec, mode: str):
        if spec.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if spec.param_size < 1:
            raise ValueError("param_size must be >= 1")
        self._spec = spec
        directory = Path(spec.directory)
        shapes = {
            "params": (spec.param_size,),
            "grads": (spec.world_size, spec.param_size),
            "losses": (spec.world_size,),
            "ctl": (CTL_SLOTS,),
        }
        self._maps = {
            name: np.memmap(directory / f"{name}.buf", dtype=np.float64,
                            mode=mode, shape=shapes[name])
            for name in self._FILES
        }
        if mode == "w+":
            for buf in self._maps.values():
                buf[...] = 0.0

    @classmethod
    def create(cls, directory: str | Path, world_size: int,
               param_size: int) -> "SharedArena":
        spec = _ArenaSpec(str(directory), int(world_size), int(param_size))
        return cls(spec, mode="w+")

    @classmethod
    def attach(cls, spec: _ArenaSpec) -> "SharedArena":
        return cls(spec, mode="r+")

    def spec(self) -> _ArenaSpec:
        return self._spec

    @property
    def world_size(self) -> int:
        return self._spec.world_size

    @property
    def params(self) -> np.ndarray:
        return self._maps["params"]

    def grad_slot(self, rank: int) -> np.ndarray:
        return self._maps["grads"][rank]

    def grad_slots(self) -> list[np.ndarray]:
        return [self._maps["grads"][r] for r in range(self.world_size)]

    @property
    def losses(self) -> np.ndarray:
        return self._maps["losses"]

    @property
    def ctl(self) -> np.ndarray:
        return self._maps["ctl"]
