"""The allreduce math, shared verbatim by process mode and the emulator.

Floating-point addition is not associative, so *which tree* the per-rank
contributions are summed over is part of the numeric contract.  Everything
here reduces with :func:`pairwise_fold` — a fixed balanced fold over the
rank index (adjacent pairs per level, odd tail passed through) — and then
divides by the world size.  Because process mode (rank 0 folding shared
-memory slots) and the single-process emulator (folding locally computed
copies) call the *same* functions on bitwise-identical float64 inputs, a
W-rank trajectory is a pure function of ``(seed, W)``: the number of OS
processes executing it can never change a single bit.  That invariant is
what ``scripts/distributed_smoke.py`` and ``bench-distributed``'s
``bit_identity`` block assert.
"""

from __future__ import annotations

import numpy as np

from ..nn.optim import Optimizer, clip_grad_norm
from .shm import FlatLayout

__all__ = ["pairwise_fold", "reduce_mean", "apply_update", "rank_rng",
           "steps_per_epoch"]


def pairwise_fold(parts):
    """Sum ``parts`` over a fixed balanced binary tree.

    The tree depends only on ``len(parts)``: level by level, element ``2i``
    is added to ``2i+1`` and an odd tail passes through unchanged.  Works
    for float scalars and ndarrays alike; never mutates its inputs (a
    single-element fold returns a copy for arrays, so callers may scale the
    result in place even when the input aliases shared memory).
    """
    items = list(parts)
    if not items:
        raise ValueError("nothing to fold")
    if len(items) == 1:
        only = items[0]
        return only.copy() if isinstance(only, np.ndarray) else only
    while len(items) > 1:
        folded = [items[i] + items[i + 1]
                  for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            folded.append(items[-1])
        items = folded
    return items[0]


def reduce_mean(parts):
    """Mean over ranks: :func:`pairwise_fold` then one division."""
    return pairwise_fold(parts) / len(parts)


def apply_update(optimizer: Optimizer, layout: FlatLayout,
                 grad_parts, grad_clip: float) -> float:
    """One allreduce'd optimizer step; returns the pre-clip grad norm.

    ``grad_parts`` are the per-rank flat gradient vectors (shared-memory
    slots in process mode, local copies in emulation).  The reduced mean is
    scattered onto the parameters as gradient views, clipped, and stepped —
    exactly the sequence ``Trainer._train_step`` runs after ``backward()``,
    so a ``world_size=1`` reduction reproduces single-process training to
    the bit.
    """
    reduced = reduce_mean(grad_parts)
    layout.scatter_grads(reduced, optimizer.parameters)
    grad_norm = clip_grad_norm(optimizer.parameters, grad_clip)
    optimizer.step()
    return grad_norm


def rank_rng(seed: int, rank: int) -> np.random.Generator:
    """Rank ``rank``'s data-order generator: a deterministic function of
    ``(seed, rank)`` via ``SeedSequence`` spawn keys, so every execution
    mode (N processes, emulation, resume) rebuilds the identical stream."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(seed), spawn_key=(int(rank),)))


def steps_per_epoch(partition_rows, batch_size: int) -> int:
    """Lockstep step count: ``min_r(rows_r // batch_size)``.

    Every rank must reach every barrier the same number of times, so the
    epoch is cut to the smallest partition's full-batch count and each
    rank's ragged tail is dropped (the shuffled permutation rotates which
    rows fall in the tail, so all rows are still seen across epochs).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    steps = min(int(rows) // int(batch_size) for rows in partition_rows)
    if steps < 1:
        smallest = min(int(rows) for rows in partition_rows)
        raise ValueError(
            f"smallest shard partition holds {smallest} rows — fewer than "
            f"one batch of {batch_size}; use more rows, smaller batches, "
            f"or fewer workers")
    return steps
