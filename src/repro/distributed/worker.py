"""The per-rank training loop of a data-parallel run.

``worker_main`` is the target every spawned process executes (and the
function the single-process emulator re-drives virtually, one rank at a
time).  A rank owns a disjoint round-robin partition of the training
shards, runs the existing model/optimizer math locally, and synchronises
with its peers through the :class:`~repro.distributed.shm.SharedArena`:

* **startup** — rank 0 packs its freshly built parameters into the shared
  parameter buffer; barrier A; every other rank unpacks, so all ranks open
  the run bitwise-identical.
* **per step** — each rank computes ``training_loss``/``backward`` on its
  own micro-batch, packs the flat gradient into its arena slot, then waits
  on barrier A.  Rank 0 folds the slots (:func:`~.collective.apply_update`),
  clips, steps the one real optimizer, packs the updated parameters and the
  reduced loss/grad-norm control words, and releases barrier B; the other
  ranks unpack the new parameters.  The optimizer therefore sees the mean
  gradient over ``world_size × batch_size`` rows — one global batch.
* **per epoch** — rank 0 evaluates on the validation split, applies the
  shared :func:`~repro.training.improvement` selection rule, and publishes
  the stop decision through the control word.  Every rank writes its own
  :class:`~repro.resilience.RunCheckpoint`; barrier C orders those files
  before rank 0 appends the commit record to ``dist-manifest.json`` — a
  commit only exists once every rank's checkpoint for that step exists.

A rank that dies (or is SIGKILLed by the ``fail_at`` chaos hook) leaves its
peers waiting at a barrier; the launcher notices the exit, aborts the
barriers, and surfaces a :class:`~.launcher.DistributedRunError`.  Resuming
from the last manifest commit is bit-identical because each checkpoint
carries the rank's loader RNG, module RNG streams, and (on rank 0) the
optimizer moments.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from threading import BrokenBarrierError  # mp barriers raise this too

import numpy as np

from ..data.batching import DataLoader
from ..data.pipeline import ShardPartitionView, ShardedCTRDataset, \
    partition_shards
from ..models.base import CTRModel
from ..models.registry import create_model
from ..core import MISSConfig, attach_miss
from ..nn import Adam, set_backend
from ..obs import (
    DistSyncEvent,
    EpochStartEvent,
    EvalEndEvent,
    JsonlTraceWriter,
    MetricRegistry,
    ObserverList,
    RunStartEvent,
)
from ..resilience import (
    CheckpointStore,
    RunCheckpoint,
    named_rng_states,
    restore_rng_states,
    rng_state,
    set_rng_state,
)
from ..resilience.atomic import atomic_write_json, atomic_write_npz
from ..training import TrainConfig, evaluate, improvement
from .collective import apply_update, rank_rng, reduce_mean, steps_per_epoch
from .shm import CTL_GRAD_NORM, CTL_LOSS, CTL_STOP, FlatLayout, SharedArena

__all__ = ["DistSpec", "build_model", "worker_main", "MANIFEST_NAME",
           "read_manifest", "rank_checkpoint_dir"]

#: Rank 0's commit record: which global steps have a full set of per-rank
#: checkpoints on disk (written atomically, after barrier C orders the files).
MANIFEST_NAME = "dist-manifest.json"
MANIFEST_KEEP = 8

#: Placeholder optimizer state checkpointed by ranks != 0 (they never step;
#: the one real optimizer lives on rank 0 and only its moments are restored).
_NO_OPTIMIZER = {"kind": "none", "lr": 0.0, "weight_decay": 0.0, "arrays": {}}


@dataclass(frozen=True)
class DistSpec:
    """Everything a spawned rank needs, as picklable primitives."""

    model_name: str
    miss: dict | None               # MISSConfig kwargs, or None for baseline
    model_seed: int                 # create_model seed (MISS seed rides in miss)
    backend: str                    # nn backend name, pinned across ranks
    train_dir: str                  # sharded training split (partition source)
    val_dir: str                    # sharded validation split (rank 0 eval)
    config: dict                    # TrainConfig kwargs; batch_size is per-rank
    world_size: int
    cache_shards: int               # per-process LRU budget (locality knob)
    checkpoint_dir: str | None
    checkpoint_every: int | None
    keep_checkpoints: int = 3
    resume_step: int | None = None  # manifest-selected commit to restart from
    log_jsonl: str | None = None    # per-rank traces at "<path>.rank<r>"
    fail_at: tuple[int, int] | None = None  # (rank, step): SIGKILL chaos hook
    barrier_timeout_s: float = 120.0


def build_model(spec: DistSpec, schema) -> CTRModel:
    """The model every rank (and the emulator) builds identically."""
    model = create_model(spec.model_name, schema, seed=spec.model_seed)
    if spec.miss is not None:
        kwargs = dict(spec.miss)
        for key in ("interest_encoder_sizes", "feature_encoder_sizes"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        model = attach_miss(model, MISSConfig(**kwargs))
    return model


def rank_checkpoint_dir(checkpoint_dir: str | Path, rank: int) -> Path:
    return Path(checkpoint_dir) / f"rank-{rank:02d}"


def read_manifest(checkpoint_dir: str | Path) -> dict | None:
    path = Path(checkpoint_dir) / MANIFEST_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def _write_manifest(checkpoint_dir: Path, world_size: int,
                    commits: list[dict]) -> None:
    atomic_write_json(checkpoint_dir / MANIFEST_NAME, {
        "format_version": 1,
        "world_size": world_size,
        "commits": commits[-MANIFEST_KEEP:],
    })


class _RankState:
    """Per-rank loop counters; rank 0 additionally tracks selection state."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.epoch = 0
        self.batches_done = 0
        self.epoch_rng_state = rng_state(rng)
        self.step = 0
        self.best_auc = -np.inf
        self.best_state = None
        self.best_epoch = -1
        self.bad_epochs = 0
        self.history = []            # rank 0 only: validation EvalResults
        self.losses = []             # per-epoch mean reduced loss
        self.epoch_loss = 0.0
        self.num_batches = 0
        self.epochs_run = 0
        self.step_losses = []        # rank 0 only: every reduced step loss
        self.completed = False


def _capture(model, optimizer, state: _RankState, config: dict,
             world_size: int) -> RunCheckpoint:
    """A rank's commit payload — same schema the single-process Trainer
    writes, so the resilience store validates it unchanged."""
    return RunCheckpoint(
        model_state=model.state_dict(),
        optimizer_state=(optimizer.state_dict() if optimizer is not None
                         else dict(_NO_OPTIMIZER)),
        loader_rng_state=state.epoch_rng_state,
        module_rng_states=named_rng_states(model),
        epoch=state.epoch,
        batches_done=state.batches_done,
        step=state.step,
        best_auc=float(state.best_auc),
        best_epoch=state.best_epoch,
        bad_epochs=state.bad_epochs,
        best_state=({k: v.copy() for k, v in state.best_state.items()}
                    if state.best_state is not None else None),
        history=[{"auc": float(r.auc), "logloss": float(r.logloss)}
                 for r in state.history],
        train_losses=list(state.losses),
        epoch_loss=state.epoch_loss,
        num_batches=state.num_batches,
        component_sums={},
        epochs_run=state.epochs_run,
        anomaly_retries=0,
        config={**config, "world_size": world_size},
        completed=state.completed,
    )


def _restore(ckpt: RunCheckpoint, model, optimizer, state: _RankState,
             step_losses: list[float] | None) -> None:
    model.load_state_dict(ckpt.model_state)
    if optimizer is not None:
        optimizer.load_state_dict(ckpt.optimizer_state)
    restore_rng_states(model, ckpt.module_rng_states)
    set_rng_state(state.rng, ckpt.loader_rng_state)
    state.epoch_rng_state = ckpt.loader_rng_state
    state.epoch = ckpt.epoch
    state.batches_done = ckpt.batches_done
    state.step = ckpt.step
    state.best_auc = ckpt.best_auc
    state.best_epoch = ckpt.best_epoch
    state.bad_epochs = ckpt.bad_epochs
    state.best_state = ({k: v.copy() for k, v in ckpt.best_state.items()}
                        if ckpt.best_state is not None else None)
    from ..training.metrics import EvalResult
    state.history = [EvalResult(auc=row["auc"], logloss=row["logloss"])
                     for row in ckpt.history]
    state.losses = list(ckpt.train_losses)
    state.epoch_loss = ckpt.epoch_loss
    state.num_batches = ckpt.num_batches
    state.epochs_run = ckpt.epochs_run
    # Reduced per-step losses live in the manifest commit, not the
    # checkpoint (RunCheckpoint has no such field); JSON float64 round-trips
    # exactly, so the resumed trajectory concatenates bit-identically.
    state.step_losses = list(step_losses) if step_losses is not None else []


def worker_main(rank: int, spec: DistSpec, arena_spec, barriers,
                workdir: str) -> None:
    """Entry point of rank ``rank`` (run in a spawned process)."""
    try:
        _run_rank(rank, spec, arena_spec, barriers, Path(workdir))
    except BrokenBarrierError:
        # A peer died (or the launcher aborted us); the launcher reports the
        # original failure, so exit quietly but non-zero.
        raise SystemExit(3)


def _run_rank(rank: int, spec: DistSpec, arena_spec, barriers,
              workdir: Path) -> None:
    barrier_a, barrier_b, barrier_c = barriers
    timeout = spec.barrier_timeout_s
    set_backend(spec.backend)
    cfg = TrainConfig(**spec.config)
    world = spec.world_size

    train = ShardedCTRDataset(spec.train_dir, cache_shards=spec.cache_shards)
    parts = partition_shards(train.num_shards, world)
    view = ShardPartitionView(train, parts[rank])
    rows = train.shard_rows()
    part_rows = [sum(rows[i] for i in shard_ids) for shard_ids in parts]
    steps = steps_per_epoch(part_rows, cfg.batch_size)

    model = build_model(spec, train.schema)
    params = model.parameters()
    layout = FlatLayout.from_parameters(model.named_parameters())
    arena = SharedArena.attach(arena_spec)
    optimizer = (Adam(params, lr=cfg.learning_rate,
                      weight_decay=cfg.weight_decay) if rank == 0 else None)
    validation = (ShardedCTRDataset(spec.val_dir).materialize()
                  if rank == 0 else None)

    registry = MetricRegistry()
    prefix = f"dist.rank.{rank}"
    steps_counter = registry.counter(f"{prefix}.steps")
    rows_counter = registry.counter(f"{prefix}.rows")
    wait_hist = registry.histogram(f"{prefix}.allreduce_wait_ms")
    reduce_hist = (registry.histogram("dist.reduce_ms") if rank == 0 else None)
    trace = (JsonlTraceWriter(f"{spec.log_jsonl}.rank{rank}")
             if spec.log_jsonl else None)
    obs = ObserverList.build([trace] if trace is not None else [], None)
    view.bind_telemetry(registry=registry, observers=obs)

    store = None
    if spec.checkpoint_dir is not None:
        store = CheckpointStore(rank_checkpoint_dir(spec.checkpoint_dir, rank),
                                keep_last=spec.keep_checkpoints)
    manifest_commits: list[dict] = []
    manifest = (read_manifest(spec.checkpoint_dir)
                if rank == 0 and spec.checkpoint_dir is not None else None)
    if manifest is not None:
        manifest_commits = list(manifest["commits"])

    rng = rank_rng(cfg.seed, rank)
    loader = DataLoader(view, batch_size=cfg.batch_size, shuffle=True, rng=rng)
    state = _RankState(rng)

    if spec.resume_step is not None:
        if store is None:
            raise ValueError("resume_step requires checkpoint_dir")
        ckpt = store.load_step(spec.resume_step)
        step_losses = None
        if rank == 0:
            commit = next((c for c in manifest_commits
                           if c["step"] == spec.resume_step), None)
            step_losses = commit["step_losses"] if commit is not None else []
        _restore(ckpt, model, optimizer, state, step_losses)

    if rank == 0:
        obs.on_run_start(RunStartEvent(
            model=type(model).__name__, num_train=len(train),
            num_validation=len(validation),
            config={**spec.config, "world_size": world,
                    "backend": spec.backend}))

    def commit_manifest(completed: bool) -> None:
        manifest_commits.append({
            "step": state.step, "epoch": state.epoch,
            "batches_done": state.batches_done, "completed": completed,
            "step_losses": [float(v) for v in state.step_losses],
        })
        _write_manifest(Path(spec.checkpoint_dir), world, manifest_commits)

    def sync_checkpoint(completed: bool = False) -> None:
        """All ranks persist the current step, then rank 0 commits."""
        store.save(_capture(model, optimizer, state, spec.config, world),
                   is_best=False)
        barrier_c.wait(timeout=timeout)
        if rank == 0:
            commit_manifest(completed)

    # Startup broadcast: every rank opens on rank 0's exact initial weights
    # (they are already identical by construction — same seed, same backend —
    # but routing them through the float64 buffer makes that a checked
    # invariant rather than an assumption).
    if rank == 0:
        layout.pack_params(params, arena.params)
    barrier_a.wait(timeout=timeout)
    if rank != 0:
        layout.unpack_params(arena.params, params)

    model.train()
    run_start = time.perf_counter()
    epoch_seconds: list[float] = []
    while True:
        skip = state.batches_done
        if skip == 0:
            state.epoch_rng_state = rng_state(rng)
            state.epoch_loss = 0.0
            state.num_batches = 0
            if rank == 0:
                obs.on_epoch_start(EpochStartEvent(epoch=state.epoch))
        else:
            # Mid-epoch resume: rewind to the epoch-start RNG so the
            # permutation replays identically, then skip trained batches.
            set_rng_state(rng, state.epoch_rng_state)
        state.epochs_run = state.epoch + 1
        epoch_start = time.perf_counter()
        batch_iter = loader.iter_batches(skip=skip)
        for _ in range(steps - skip):
            batch = next(batch_iter)
            for p in params:
                p.grad = None
            loss = model.training_loss(batch)
            loss_value = loss.item()
            loss.backward()
            layout.pack_grads(params, arena.grad_slot(rank))
            arena.losses[rank] = loss_value
            if spec.fail_at is not None and spec.fail_at == (rank, state.step):
                # Chaos hook: die exactly where it hurts — gradients
                # published, barrier not yet reached.  SIGKILL means no
                # finally-blocks, no flush: the real failure mode.
                os.kill(os.getpid(), signal.SIGKILL)
            wait_start = time.perf_counter()
            barrier_a.wait(timeout=timeout)
            wait_ms = (time.perf_counter() - wait_start) * 1e3
            if rank == 0:
                reduce_start = time.perf_counter()
                grad_norm = apply_update(optimizer, layout,
                                         arena.grad_slots(), cfg.grad_clip)
                mean_loss = reduce_mean([float(v) for v in arena.losses])
                layout.pack_params(params, arena.params)
                arena.ctl[CTL_LOSS] = mean_loss
                arena.ctl[CTL_GRAD_NORM] = grad_norm
                reduce_hist.record((time.perf_counter() - reduce_start) * 1e3)
            barrier_b.wait(timeout=timeout)
            if rank != 0:
                layout.unpack_params(arena.params, params)
            mean_loss = float(arena.ctl[CTL_LOSS])
            state.step += 1
            state.batches_done += 1
            state.epoch_loss += mean_loss
            state.num_batches += 1
            if rank == 0:
                state.step_losses.append(mean_loss)
            steps_counter.inc()
            rows_counter.inc(len(batch.labels))
            wait_hist.record(wait_ms)
            obs.on_dist_sync(DistSyncEvent(
                rank=rank, world_size=world, step=state.step,
                epoch=state.epoch, wait_ms=wait_ms, loss=mean_loss))
            if (store is not None and spec.checkpoint_every
                    and state.step % spec.checkpoint_every == 0):
                sync_checkpoint()
        epoch_seconds.append(time.perf_counter() - epoch_start)

        # Epoch end: rank 0 evaluates and owns the selection + stop decision;
        # everyone learns it through the control word after barrier C.
        state.losses.append(state.epoch_loss / max(state.num_batches, 1))
        if rank == 0:
            result = evaluate(model, validation, batch_size=cfg.eval_batch_size)
            state.history.append(result)
            obs.on_eval_end(EvalEndEvent(
                epoch=state.epoch, split="validation", auc=result.auc,
                logloss=result.logloss, train_loss=state.losses[-1]))
            if improvement(result.auc, state.best_auc):
                state.best_auc = result.auc
                state.best_state = model.state_dict()
                state.best_epoch = state.epoch
                state.bad_epochs = 0
            else:
                state.bad_epochs += 1
            stop = (state.epoch + 1 >= cfg.epochs
                    or state.bad_epochs >= cfg.patience)
            arena.ctl[CTL_STOP] = 1.0 if stop else 0.0
        state.epoch += 1
        state.batches_done = 0
        # The finished epoch's permutation is already drawn; capture the RNG
        # *now* so a resume consumes the next epoch's stream, not a replay.
        state.epoch_rng_state = rng_state(rng)
        if store is not None:
            sync_checkpoint()
        else:
            barrier_c.wait(timeout=timeout)
        if arena.ctl[CTL_STOP] >= 1.0:
            break

    if rank == 0:
        _finish_rank0(spec, model, optimizer, state, params, layout, store,
                      commit_manifest, registry, epoch_seconds,
                      time.perf_counter() - run_start, part_rows, steps,
                      workdir)
    _dump_metrics(registry, rank, workdir)
    if trace is not None:
        trace.close()


def _finish_rank0(spec, model, optimizer, state, params, layout, store,
                  commit_manifest, registry, epoch_seconds, wall_time_s,
                  part_rows, steps, workdir: Path) -> None:
    if state.best_state is None:
        raise RuntimeError(
            "distributed training never produced a finite validation AUC "
            f"({state.epochs_run} epoch(s)); refusing to select final weights")
    model.load_state_dict(state.best_state)
    state.completed = True
    if store is not None:
        # Same step number as the last epoch-end save, so this atomically
        # replaces rank 0's file; the fresh commit flags the run complete.
        store.save(_capture(model, optimizer, state, spec.config,
                            spec.world_size), is_best=True)
        commit_manifest(completed=True)
    atomic_write_npz(workdir / "final_state.npz", state.best_state)
    atomic_write_json(workdir / "result.json", {
        "world_size": spec.world_size,
        "best_epoch": state.best_epoch,
        "epochs_run": state.epochs_run,
        "steps": state.step,
        "steps_per_epoch": steps,
        "partition_rows": [int(r) for r in part_rows],
        "history": [{"auc": float(r.auc), "logloss": float(r.logloss)}
                    for r in state.history],
        "train_losses": [float(v) for v in state.losses],
        "step_losses": [float(v) for v in state.step_losses],
        "epoch_seconds": [float(s) for s in epoch_seconds],
        "wall_time_s": float(wall_time_s),
        "completed": True,
    })


def _dump_metrics(registry: MetricRegistry, rank: int, workdir: Path) -> None:
    atomic_write_json(workdir / f"metrics-rank{rank}.json",
                      registry.snapshot())
