"""InfoNCE contrastive loss with in-batch negatives (Eq. 15-16).

For a batch of paired views ``⟨z^1_x, z^2_x⟩`` the positive is the pair from
the same sample and the negatives are the second views of every *other*
sample in the batch.  Similarity is cosine, scaled by temperature τ.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn.functional import l2_normalize

__all__ = ["info_nce"]


def info_nce(view1: Tensor, view2: Tensor, temperature: float,
             false_negatives: np.ndarray | None = None) -> Tensor:
    """Mean InfoNCE loss over the batch.

    Args:
        view1: ``(B, D)`` encoded first views.
        view2: ``(B, D)`` encoded second views.
        temperature: The softmax temperature τ (> 0).
        false_negatives: Optional ``(B, B)`` boolean mask; ``[i, j]`` True
            removes sample ``j``'s second view from sample ``i``'s negative
            set.  Used by the feature-level loss, where low-cardinality
            fields (a handful of category ids) make id-identical "negatives"
            frequent — repelling those would scramle the small embedding
            table (the SupCon de-duplication fix).  The diagonal (the
            positive) is always kept.

    Returns:
        Scalar tensor; lower is better, bounded below by 0 as the positive
        pair dominates all in-batch negatives.
    """
    if view1.shape != view2.shape:
        raise ValueError(f"view shapes differ: {view1.shape} vs {view2.shape}")
    if view1.ndim != 2:
        raise ValueError(f"expected (B, D) views, got {view1.shape}")
    if temperature <= 0:
        raise ValueError("temperature must be positive")

    z1 = l2_normalize(view1, axis=-1)
    z2 = l2_normalize(view2, axis=-1)
    logits = (z1 @ z2.swapaxes(0, 1)) * (1.0 / temperature)  # (B, B)
    if false_negatives is not None:
        batch = view1.shape[0]
        if false_negatives.shape != (batch, batch):
            raise ValueError("false_negatives mask must be (B, B)")
        drop = np.array(false_negatives, dtype=bool)
        np.fill_diagonal(drop, False)  # never drop the positive
        logits = logits + Tensor(np.where(drop, -1e9, 0.0))
    # log-sum-exp over each row, numerically stabilised.
    shifted = logits - Tensor(logits.data.max(axis=1, keepdims=True))
    log_denominator = (shifted.exp().sum(axis=1, keepdims=True)).log() \
        + Tensor(logits.data.max(axis=1, keepdims=True))
    batch = view1.shape[0]
    index = np.arange(batch)
    diagonal = logits[index, index]
    return (log_denominator.squeeze(-1) - diagonal).mean()
