"""Interest-dependency distance distributions (paper §V-B future work).

The paper samples the augmentation distance ``h`` uniformly from ``[1, H]``
and notes that "other complex distributions (e.g., Gaussian distribution)
are also applicable, and we leave them to future works".  This module
implements that future work:

* ``uniform``   — the paper's default.
* ``gaussian``  — a discretised half-Gaussian centred at 1: short distances
  dominate, long distances appear with decaying probability (closeness decays
  smoothly in time).
* ``geometric`` — P(h) ∝ (1-p)^{h-1}: the memoryless analogue, matching the
  geometric session lengths of the InterestWorld simulator.

All samplers take the generator explicitly and return an integer in
``[1, max_distance]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DISTANCE_DISTRIBUTIONS", "sample_distance"]


def _uniform(max_distance: int, rng: np.random.Generator) -> int:
    return int(rng.integers(1, max_distance + 1))


def _gaussian(max_distance: int, rng: np.random.Generator,
              sigma_scale: float = 0.6) -> int:
    sigma = max(1e-6, sigma_scale * max_distance)
    support = np.arange(1, max_distance + 1)
    weights = np.exp(-0.5 * ((support - 1) / sigma) ** 2)
    weights /= weights.sum()
    return int(rng.choice(support, p=weights))


def _geometric(max_distance: int, rng: np.random.Generator,
               success: float = 0.5) -> int:
    support = np.arange(1, max_distance + 1)
    weights = (1.0 - success) ** (support - 1)
    weights /= weights.sum()
    return int(rng.choice(support, p=weights))


DISTANCE_DISTRIBUTIONS = {
    "uniform": _uniform,
    "gaussian": _gaussian,
    "geometric": _geometric,
}


def sample_distance(distribution: str, max_distance: int,
                    rng: np.random.Generator) -> int:
    """Draw an augmentation distance ``h ∈ [1, max_distance]``."""
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    try:
        sampler = DISTANCE_DISTRIBUTIONS[distribution]
    except KeyError:
        raise KeyError(f"unknown distance distribution {distribution!r}; "
                       f"choose from {tuple(DISTANCE_DISTRIBUTIONS)}") from None
    return sampler(max_distance, rng)
