"""Alternative multi-interest extractors for Table VIII: self-attention & LSTM.

Both produce a single interest map of the same ``(B, J, L, K)`` layout as a
width-1 CNN branch, so the downstream augmentation and encoders are reused
unchanged.  The paper's Figure 5 shows why they underperform: every output
position aggregates (nearly) the whole sequence, so adjacent positions are
almost identical and the contrastive pairs carry no information — our
diagnostics reproduce that collapse.
"""

from __future__ import annotations

import numpy as np

from ..nn import LSTM, Module, MultiHeadSelfAttention, Tensor, stack

__all__ = ["SelfAttentionExtractor", "LSTMExtractor"]


class SelfAttentionExtractor(Module):
    """Per-field self-attention over the time axis (MISS-SA)."""

    def __init__(self, embedding_dim: int, rng: np.random.Generator,
                 num_heads: int = 2):
        super().__init__()
        self.attention = MultiHeadSelfAttention(embedding_dim, num_heads, rng,
                                                head_dim=embedding_dim // num_heads
                                                if embedding_dim % num_heads == 0
                                                else embedding_dim)
        if self.attention.out_features != embedding_dim:
            raise ValueError("self-attention must preserve the embedding width")

    def forward(self, c: Tensor, mask: np.ndarray | None = None) -> list[Tensor]:
        num_fields = c.shape[1]
        rows = [self.attention(c[:, j, :, :], mask) for j in range(num_fields)]
        return [stack(rows, axis=1)]


class LSTMExtractor(Module):
    """Per-field LSTM over the time axis (MISS-LSTM); weights shared across
    fields so the parameter count stays comparable to the CNN kernels."""

    def __init__(self, embedding_dim: int, rng: np.random.Generator):
        super().__init__()
        self.lstm = LSTM(embedding_dim, embedding_dim, rng)

    def forward(self, c: Tensor, mask: np.ndarray | None = None) -> list[Tensor]:
        num_fields = c.shape[1]
        rows = []
        for j in range(num_fields):
            outputs, _ = self.lstm(c[:, j, :, :], mask)
            rows.append(outputs)
        return [stack(rows, axis=1)]
