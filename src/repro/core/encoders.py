"""The interest and feature view encoders Enc^i(·) and Enc^if(·) (Eq. 13-14).

The paper uses two small MLPs — layers {20, 20} for the interest encoder and
{10, 10} for the feature encoder — and leaves fancier encoders to future
work.  Both views of a pair pass through the *same* encoder (SimCLR style).
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Module, Tensor

__all__ = ["ViewEncoder", "FieldAwareViewEncoder"]


class ViewEncoder(Module):
    """Shared MLP applied to each view of every pair."""

    def __init__(self, in_features: int, layer_sizes: tuple[int, ...],
                 rng: np.random.Generator):
        super().__init__()
        if not layer_sizes:
            raise ValueError("encoder needs at least one layer")
        self.in_features = in_features
        self.mlp = MLP(in_features, list(layer_sizes), rng, activation="relu",
                       output_activation=None)
        self.out_features = layer_sizes[-1]

    def forward(self, view: Tensor) -> Tensor:
        if view.shape[-1] != self.in_features:
            raise ValueError(
                f"view width {view.shape[-1]} != encoder input {self.in_features}")
        return self.mlp(view)

    def encode_pair(self, view1: Tensor, view2: Tensor) -> tuple[Tensor, Tensor]:
        """Encode both views with shared weights."""
        return self(view1), self(view2)


class FieldAwareViewEncoder(Module):
    """Enc^if with per-field input projections (CLIP-style heads).

    Feature-level views pair representations of *different* fields (item id
    vs. category).  Aligning the raw embeddings directly would collapse every
    item onto its category anchor; instead each field row gets its own linear
    projection before the shared MLP, so the alignment constraint lives in
    projection space and the embedding tables keep their resolution.
    """

    def __init__(self, embedding_dim: int, num_fields: int,
                 layer_sizes: tuple[int, ...], rng: np.random.Generator):
        super().__init__()
        if num_fields < 1:
            raise ValueError("num_fields must be >= 1")
        from ..nn import Dense  # local import to avoid cycle at module load
        self.projections = [Dense(embedding_dim, embedding_dim, rng)
                            for _ in range(num_fields)]
        self.shared = ViewEncoder(embedding_dim, layer_sizes, rng)
        self.num_fields = num_fields
        self.out_features = self.shared.out_features

    def forward(self, view: Tensor, field_index: int) -> Tensor:
        if not 0 <= field_index < self.num_fields:
            raise IndexError(f"field index {field_index} out of range")
        return self.shared(self.projections[field_index](view))

    def encode_pair(self, view1: Tensor, view2: Tensor,
                    field1: int, field2: int) -> tuple[Tensor, Tensor]:
        return self(view1, field1), self(view2, field2)
