"""Plug-and-play attachment of MISS to any deep CTR model (§IV-C).

:class:`MISSEnhancedModel` wraps a base model, shares its embedder with a
:class:`MISSModule`, and optimises the multi-task objective of Eq. 17:
``L = L_logloss + α1·L_ssl + α2·L'_ssl``.  Prediction is entirely delegated
to the base model — at inference time MISS costs nothing.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..models.base import DeepCTRModel
from ..nn import Tensor
from .config import MISSConfig
from .miss import MISSModule

__all__ = ["MISSEnhancedModel", "attach_miss"]


class MISSEnhancedModel(DeepCTRModel):
    """A base CTR model with the MISS SSL losses attached."""

    def __init__(self, base: DeepCTRModel, config: MISSConfig,
                 rng: np.random.Generator | None = None):
        if not isinstance(base, DeepCTRModel):
            raise TypeError(
                f"MISS attaches to embedding-based models (DeepCTRModel); "
                f"{type(base).__name__} has no shared embedder to enhance")
        # Deliberately skip DeepCTRModel.__init__: we adopt the base model's
        # schema and embedder rather than creating fresh ones.
        super(DeepCTRModel, self).__init__(base.schema)
        self.embedding_dim = base.embedding_dim
        self.base = base
        self.embedder = base.embedder  # shared tables: SSL shapes them directly
        self.config = config
        self.ssl = MISSModule(base.schema, base.embedding_dim, config,
                              rng or np.random.default_rng(config.seed))
        #: Per-component values of the last ``training_loss`` call (floats,
        #: detached) — the telemetry layer reads these after each step.
        self.last_loss_components: dict[str, float] | None = None

    def predict_logits(self, batch: Batch) -> Tensor:
        return self.base.predict_logits(batch)

    def ssl_loss(self, batch: Batch) -> Tensor:
        """The weighted SSL term alone (used by the pre-training strategy)."""
        c = self.embedder.sequence_embeddings(batch)
        return self.ssl(c, batch.mask, batch.sequences)

    def ctr_loss(self, batch: Batch) -> Tensor:
        """The base model's own loss (includes e.g. DIEN's auxiliary loss)."""
        return self.base.training_loss(batch)

    def training_loss(self, batch: Batch) -> Tensor:
        """Eq. 17: joint CTR + SSL objective.

        Also refreshes :attr:`last_loss_components` with the unweighted value
        of each term (base logloss, interest SSL, feature SSL) so observers
        can chart how the multi-task balance evolves.
        """
        ctr = self.ctr_loss(batch)
        c = self.embedder.sequence_embeddings(batch)
        interest, feature = self.ssl.ssl_losses(c, batch.mask, batch.sequences)
        total = (ctr + self.config.alpha_interest * interest
                 + self.config.alpha_feature * feature)
        self.last_loss_components = {
            "logloss": float(ctr.item()),
            "ssl_interest": float(interest.item()),
            "ssl_feature": float(feature.item()),
        }
        return total

    def named_parameters(self, prefix: str = ""):
        # The shared embedder lives inside ``base``; expose each parameter
        # exactly once (``self.embedder`` is the same object).
        seen: set[int] = set()
        for name, p in super().named_parameters(prefix=prefix):
            if id(p) in seen:
                continue
            seen.add(id(p))
            yield name, p


def attach_miss(base: DeepCTRModel, config: MISSConfig | None = None,
                seed: int = 0) -> MISSEnhancedModel:
    """Convenience wrapper: ``attach_miss(DINModel(...))`` → DIN-MISS."""
    config = config or MISSConfig(seed=seed)
    return MISSEnhancedModel(base, config, np.random.default_rng(seed))
