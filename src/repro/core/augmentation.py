"""The random view-selection functions RS^i(·) and RS^if(·) (paper §V-B, §V-D).

Interest-level augmentation (Eq. 21) exploits the closeness assumption: two
interest representations produced by the *same* convolution branch at time
distance ``h ∈ [1, H]`` are treated as two views of one interest.  Uniformly
sampled ``h`` covers both short-range (h=1) and long-range (h→H) dependencies.

Feature-level augmentation (Eq. 24) samples, within one ``Ĝ_{m,n}`` and one
time position, two field rows as views — the paper's "totally random select"
over the (independent) feature axis.

Selection is *per sample*: every row of the batch draws its own time
position, so one pair already covers B distinct sequence locations.
Histories are front-padded, so when the batch validity mask is supplied each
row's positions are confined to windows that never touch its padding.

Each sample records which window (fields × time span) produced its views, so
the loss layer can identify id-identical "negatives" across the batch and
exclude them from the InfoNCE denominator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Tensor
from .distances import sample_distance

__all__ = ["InterestViewSample", "FeatureViewSample",
           "sample_interest_pairs", "sample_feature_pairs"]


@dataclass
class InterestViewSample:
    """One RS^i draw: views ``(B, J·K)`` plus their window coordinates."""

    view1: Tensor
    view2: Tensor
    left: np.ndarray      # (B,) start column of view1's window
    right: np.ndarray     # (B,) start column of view2's window
    width: int            # kernel width m (window covers [l, l+m-1])

    @property
    def pair(self) -> tuple[Tensor, Tensor]:
        return self.view1, self.view2


@dataclass
class FeatureViewSample:
    """One RS^if draw: views ``(B, K)`` plus window and field coordinates."""

    view1: Tensor
    view2: Tensor
    row1: int             # first field row index (covers [row, row+n-1])
    row2: int
    positions: np.ndarray  # (B,) start column shared by both views
    width: int            # horizontal kernel width m
    height: int           # vertical kernel height n

    @property
    def pair(self) -> tuple[Tensor, Tensor]:
        return self.view1, self.view2


def _per_sample_starts(mask: np.ndarray | None, batch: int,
                       out_len: int) -> np.ndarray:
    """First valid map position per sample for a kernel of this output size.

    Padding is a prefix, so sample ``b``'s valid window starts are
    ``[first_valid_b, out_len - 1]``; rows with no valid window fall back to
    position 0 (their views are padding embeddings — harmless noise).
    """
    if mask is None:
        return np.zeros(batch, dtype=np.int64)
    first_valid = np.where(mask.any(axis=1), mask.argmax(axis=1), 0)
    return np.minimum(first_valid, out_len - 1).astype(np.int64)


def _gather_views(g: Tensor, positions: np.ndarray) -> Tensor:
    """Per-sample time gather: ``(B, J, L', K)`` + ``(B,)`` → ``(B, J·K)``."""
    batch = g.shape[0]
    index = (np.arange(batch), slice(None), positions)
    return g[index].flatten_from(1)


def sample_interest_pairs(interest_maps: list[Tensor], num_pairs: int,
                          max_distance: int, rng: np.random.Generator,
                          mask: np.ndarray | None = None,
                          seq_len: int | None = None,
                          distribution: str = "uniform"
                          ) -> list[InterestViewSample]:
    """RS^i: ``num_pairs`` view pairs ⟨t_l, t_{l+h}⟩ from random branches.

    Each view is the flattened ``(B, J·K)`` interest representation
    ``Flat(G_m[:, :, l, :])`` of Eq. 20.  The distance ``h`` is drawn
    uniformly from ``[1, H]`` per pair; rows whose valid window is shorter
    than ``h`` use the largest distance they can accommodate.
    """
    if num_pairs < 1:
        raise ValueError("num_pairs must be >= 1")
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    if not interest_maps:
        raise ValueError("no interest maps to sample from")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        seq_len = mask.shape[1]

    samples: list[InterestViewSample] = []
    for _ in range(num_pairs):
        g = interest_maps[int(rng.integers(len(interest_maps)))]
        batch, _, out_len, _ = g.shape
        width = (seq_len - out_len + 1) if seq_len is not None else 1
        starts = _per_sample_starts(mask, batch, out_len)
        span = out_len - 1 - starts  # max distance available per sample
        h = sample_distance(distribution, max_distance, rng)
        h_eff = np.minimum(h, np.maximum(span, 0))
        slack = out_len - 1 - starts - h_eff
        offsets = (rng.random(batch) * (slack + 1)).astype(np.int64)
        left = starts + offsets
        right = left + h_eff
        samples.append(InterestViewSample(
            view1=_gather_views(g, left), view2=_gather_views(g, right),
            left=left, right=right, width=width))
    return samples


def sample_feature_pairs(fine_maps: list[Tensor], num_pairs: int,
                         rng: np.random.Generator,
                         mask: np.ndarray | None = None,
                         seq_len: int | None = None,
                         num_fields: int | None = None
                         ) -> list[FeatureViewSample]:
    """RS^if: ``num_pairs`` pairs of ``(B, K)`` feature-level views.

    Both views come from the same ``Ĝ_{m,n}`` and, per sample, the same time
    position (hence the same interest) but two random field rows, exposing
    the intra-item correlation between item attributes.  With a single field
    row the views coincide, which still regularises via the encoder noise.
    """
    if num_pairs < 1:
        raise ValueError("num_pairs must be >= 1")
    if not fine_maps:
        raise ValueError("no fine-grained maps to sample from")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        seq_len = mask.shape[1]

    samples: list[FeatureViewSample] = []
    for _ in range(num_pairs):
        g = fine_maps[int(rng.integers(len(fine_maps)))]
        batch, num_rows, out_len, _ = g.shape
        width = (seq_len - out_len + 1) if seq_len is not None else 1
        height = (num_fields - num_rows + 1) if num_fields is not None else 1
        starts = _per_sample_starts(mask, batch, out_len)
        slack = out_len - 1 - starts
        positions = starts + (rng.random(batch) * (slack + 1)).astype(np.int64)
        row1 = int(rng.integers(num_rows))
        if num_rows > 1:
            row2 = int(rng.integers(num_rows - 1))
            if row2 >= row1:
                row2 += 1
        else:
            row2 = row1
        index1 = (np.arange(batch), row1, positions)
        index2 = (np.arange(batch), row2, positions)
        samples.append(FeatureViewSample(
            view1=g[index1], view2=g[index2], row1=row1, row2=row2,
            positions=positions, width=width, height=height))
    return samples
