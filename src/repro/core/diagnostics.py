"""Training-time diagnostics: the view-pair similarity trace of Figure 5."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.batching import Batch
from ..models.base import CTRModel
from ..nn import no_grad
from ..obs.events import BaseObserver, BatchEndEvent
from .plugin import MISSEnhancedModel

__all__ = ["SimilarityTracker"]


@dataclass
class SimilarityTracker(BaseObserver):
    """Records the mean cosine similarity of augmented view pairs per step.

    A :class:`~repro.obs.RunObserver`: pass it via the trainer's
    ``observers=[tracker]``.  It also remains directly callable with
    ``(model, batch, step)``, so the legacy ``on_batch_end`` hook keeps
    working.  Afterwards ``steps`` and ``similarities`` hold the Figure 5
    series for one extractor.
    """

    every: int = 1
    steps: list[int] = field(default_factory=list)
    similarities: list[float] = field(default_factory=list)

    def on_batch_end(self, event: BatchEndEvent) -> None:
        self(event.model, event.batch, event.step)

    def __call__(self, model: CTRModel, batch: Batch, step: int) -> None:
        if step % self.every:
            return
        if not isinstance(model, MISSEnhancedModel):
            raise TypeError("SimilarityTracker requires a MISS-enhanced model")
        with no_grad():
            c = model.embedder.sequence_embeddings(batch)
            similarity = model.ssl.pair_similarity(c, mask=batch.mask)
        self.steps.append(step)
        self.similarities.append(similarity)

    def smoothed(self, window: int = 5) -> np.ndarray:
        """Moving average of the trace (the paper plots batch averages)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        values = np.asarray(self.similarities, dtype=np.float64)
        if values.size == 0:
            return values
        kernel = np.ones(min(window, values.size)) / min(window, values.size)
        return np.convolve(values, kernel, mode="valid")
