"""The MISS self-supervised component (Figure 3, left side).

Pipeline per batch: sequential embeddings ``C`` → multi-interest extraction →
interest-level augmentation → shared encoder → InfoNCE (Eq. 15), and in
parallel the fine-grained branch → feature-level augmentation → encoder →
InfoNCE (Eq. 16).  The module is model-agnostic: it only needs the embedding
tensor ``C``, which every :class:`~repro.models.base.DeepCTRModel` exposes.

When the raw id sequences are supplied, in-batch negatives whose underlying
id window is identical to the anchor's are excluded from the InfoNCE
denominator (SupCon-style de-duplication).  This matters most for the
feature-level loss: low-cardinality fields such as item category collide
constantly inside a batch, and repelling id-identical views would scramble
the small embedding tables.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import DatasetSchema
from ..nn import Module, Tensor, concatenate, get_backend
from ..nn import functional as F
from ..obs.timers import phase
from .augmentation import (
    FeatureViewSample,
    InterestViewSample,
    sample_feature_pairs,
    sample_interest_pairs,
)
from .config import MISSConfig
from .encoders import FieldAwareViewEncoder, ViewEncoder
from .transformer_encoder import TransformerViewEncoder
from .extractors import FineGrainedExtractor, MultiInterestExtractor
from .extractors_alt import LSTMExtractor, SelfAttentionExtractor
from .losses import info_nce

__all__ = ["MISSModule"]


def _id_blocks(sequences: np.ndarray, row_start: int, height: int,
               positions: np.ndarray, width: int) -> np.ndarray:
    """Flattened id window per sample: ``(B, height·width)``.

    ``sequences`` is the raw ``(B, J, L)`` id tensor; the window covers field
    rows ``[row_start, row_start+height)`` and time columns
    ``[position, position+width)`` for each sample.
    """
    batch = sequences.shape[0]
    cols = positions[:, None] + np.arange(width)[None, :]
    rows = np.arange(row_start, row_start + height)
    block = sequences[np.arange(batch)[:, None, None],
                      rows[None, :, None], cols[:, None, :]]
    return block.reshape(batch, -1)


def _collisions(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(B, B)`` mask: ``[i, j]`` True iff ``a[i]`` equals ``b[j]``."""
    return (a[:, None, :] == b[None, :, :]).all(axis=2)


def _split_rows(z: Tensor, count: int) -> list[Tensor]:
    """Split ``z`` into ``count`` equal row blocks (inverse of concatenate).

    Cheaper than ``__getitem__`` for partitioning: each block's backward
    writes straight into the matching rows of ``z.grad`` instead of scattering
    through a freshly allocated full-size buffer per block.
    """
    size = z.shape[0] // count
    parts = []
    for i in range(count):
        start, stop = i * size, (i + 1) * size
        part_data = z.data[start:stop]

        def backward(grad: np.ndarray, start: int = start, stop: int = stop) -> None:
            if z.grad is None:
                z.grad = np.zeros_like(z.data)
            z.grad[start:stop] += grad

        parts.append(Tensor._make(part_data, (z,), "split_rows", backward))
    return parts


class MISSModule(Module):
    """Multi-interest self-supervision over sequence embeddings."""

    def __init__(self, schema: DatasetSchema, embedding_dim: int,
                 config: MISSConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.schema = schema
        self.embedding_dim = embedding_dim
        num_fields = schema.num_sequential

        if config.extractor == "cnn":
            self.extractor = MultiInterestExtractor(config.effective_width, rng)
            num_branches = config.effective_width
        elif config.extractor == "sa":
            self.extractor = SelfAttentionExtractor(embedding_dim, rng)
            num_branches = 1
        else:  # "lstm"
            self.extractor = LSTMExtractor(embedding_dim, rng)
            num_branches = 1

        if config.use_fine_grained:
            self.fine_extractor = FineGrainedExtractor(
                num_branches, config.max_kernel_height, rng)
        else:
            self.fine_extractor = None

        if config.interest_encoder == "transformer":
            self.interest_encoder = TransformerViewEncoder(
                num_fields, embedding_dim, config.interest_encoder_sizes, rng)
        else:
            self.interest_encoder = ViewEncoder(
                num_fields * embedding_dim, config.interest_encoder_sizes, rng)
        if config.field_aware_encoder:
            self.feature_encoder = FieldAwareViewEncoder(
                embedding_dim, num_fields, config.feature_encoder_sizes, rng)
        else:
            self.feature_encoder = ViewEncoder(
                embedding_dim, config.feature_encoder_sizes, rng)
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def interest_maps(self, c: Tensor) -> list[Tensor]:
        """``[G_1..G_M]`` (or a single map for the SA/LSTM extractors)."""
        return self.extractor(c)

    def _sample_level_views(self, c: Tensor, mask: np.ndarray | None
                            ) -> tuple[Tensor, Tensor]:
        """The MISS/M fallback: one global interest per sample, two dropout
        views — exactly the sample-level contrast the paper argues against."""
        if mask is not None:
            weights = mask.astype(np.float64)
            denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
            pooled = (c * Tensor((weights / denom)[:, None, :, None])).sum(axis=2)
        else:
            pooled = c.mean(axis=2)
        flat = pooled.flatten_from(1)  # (B, J*K)
        view1 = F.dropout(flat, 0.2, self._rng, training=True)
        view2 = F.dropout(flat, 0.2, self._rng, training=True)
        return view1, view2

    # ------------------------------------------------------------------
    # False-negative masks
    # ------------------------------------------------------------------
    def _interest_false_negatives(self, sample: InterestViewSample,
                                  sequences: np.ndarray | None
                                  ) -> np.ndarray | None:
        if sequences is None or not self.config.dedup_false_negatives:
            return None
        num_fields = sequences.shape[1]
        block1 = _id_blocks(sequences, 0, num_fields, sample.left, sample.width)
        block2 = _id_blocks(sequences, 0, num_fields, sample.right, sample.width)
        return _collisions(block2, block2) | _collisions(block1, block2)

    def _feature_false_negatives(self, sample: FeatureViewSample,
                                 sequences: np.ndarray | None
                                 ) -> np.ndarray | None:
        if sequences is None or not self.config.dedup_false_negatives:
            return None
        block1 = _id_blocks(sequences, sample.row1, sample.height,
                            sample.positions, sample.width)
        block2 = _id_blocks(sequences, sample.row2, sample.height,
                            sample.positions, sample.width)
        return _collisions(block2, block2) | _collisions(block1, block2)

    # ------------------------------------------------------------------
    # View encoding (optionally batched across pairs)
    # ------------------------------------------------------------------
    def _encode_interest_views(self, samples: list[InterestViewSample]
                               ) -> list[tuple[Tensor, Tensor]]:
        """Encode every interest view pair with the shared encoder.

        Under a backend that batches SSL views, all ``2·P`` views go through
        the encoder as one ``(2·P·B, J·K)`` forward (the encoder is a plain
        per-row MLP, so this is mathematically identical) and are split back
        afterwards.  Kept per-pair on the reference backend to preserve the
        seed's exact floating-point reduction order.
        """
        encoder = self.interest_encoder
        if not (get_backend().batches_ssl_views and type(encoder) is ViewEncoder):
            return [encoder.encode_pair(*sample.pair) for sample in samples]
        views: list[Tensor] = []
        for sample in samples:
            views.extend(sample.pair)
        encoded = encoder(concatenate(views, axis=0))
        parts = _split_rows(encoded, len(views))
        return [(parts[2 * i], parts[2 * i + 1]) for i in range(len(samples))]

    def _encode_feature_views(self, samples: list[FeatureViewSample]
                              ) -> list[tuple[Tensor, Tensor]]:
        """Same batching for the feature-level encoder.

        The field-aware encoder applies its per-field projections per view
        (they are field-specific by design) and batches only the shared MLP.
        """
        encoder = self.feature_encoder
        if not get_backend().batches_ssl_views:
            pass
        elif isinstance(encoder, FieldAwareViewEncoder):
            projected: list[Tensor] = []
            for sample in samples:
                projected.append(encoder.projections[sample.row1](sample.view1))
                projected.append(encoder.projections[sample.row2](sample.view2))
            parts = _split_rows(encoder.shared(concatenate(projected, axis=0)),
                                len(projected))
            return [(parts[2 * i], parts[2 * i + 1]) for i in range(len(samples))]
        elif type(encoder) is ViewEncoder:
            views: list[Tensor] = []
            for sample in samples:
                views.extend((sample.view1, sample.view2))
            parts = _split_rows(encoder(concatenate(views, axis=0)), len(views))
            return [(parts[2 * i], parts[2 * i + 1]) for i in range(len(samples))]
        out: list[tuple[Tensor, Tensor]] = []
        for sample in samples:
            if isinstance(encoder, FieldAwareViewEncoder):
                out.append(encoder.encode_pair(sample.view1, sample.view2,
                                               sample.row1, sample.row2))
            else:
                out.append(encoder.encode_pair(sample.view1, sample.view2))
        return out

    # ------------------------------------------------------------------
    # Losses
    # ------------------------------------------------------------------
    def ssl_losses(self, c: Tensor, mask: np.ndarray | None = None,
                   sequences: np.ndarray | None = None
                   ) -> tuple[Tensor, Tensor]:
        """``(L_ssl, L'_ssl)`` of Eq. 15-16 for one batch.

        The feature-level loss is a constant zero tensor under the /F
        ablation so Eq. 17 keeps its shape.
        """
        cfg = self.config
        if not cfg.use_multi_interest:
            view1, view2 = self._sample_level_views(c, mask)
            z1, z2 = self.interest_encoder.encode_pair(view1, view2)
            interest_loss = info_nce(z1, z2, cfg.temperature)
            return interest_loss, Tensor(0.0)

        with phase("model.ssl.mie"):
            maps = self.interest_maps(c)
        seq_len = c.shape[2]
        with phase("model.ssl.augment"):
            samples = sample_interest_pairs(maps, cfg.num_interest_pairs,
                                            cfg.effective_distance, self._rng,
                                            mask=mask, seq_len=seq_len,
                                            distribution=cfg.distance_distribution)
        with phase("model.ssl.infonce"):
            interest_loss = None
            for sample, (z1, z2) in zip(samples,
                                        self._encode_interest_views(samples)):
                term = info_nce(z1, z2, cfg.temperature,
                                self._interest_false_negatives(sample, sequences))
                interest_loss = term if interest_loss is None else interest_loss + term
            interest_loss = interest_loss * (1.0 / len(samples))

        if self.fine_extractor is None:
            return interest_loss, Tensor(0.0)

        with phase("model.ssl.mimfe"):
            fine_maps = self.fine_extractor(maps)
        with phase("model.ssl.augment"):
            fine_samples = sample_feature_pairs(
                fine_maps, cfg.num_feature_pairs, self._rng, mask=mask,
                seq_len=seq_len, num_fields=c.shape[1])
        with phase("model.ssl.infonce"):
            feature_loss = None
            for sample, (z1, z2) in zip(fine_samples,
                                        self._encode_feature_views(fine_samples)):
                term = info_nce(z1, z2, cfg.temperature,
                                self._feature_false_negatives(sample, sequences))
                feature_loss = term if feature_loss is None else feature_loss + term
            feature_loss = feature_loss * (1.0 / len(fine_samples))
        return interest_loss, feature_loss

    def forward(self, c: Tensor, mask: np.ndarray | None = None,
                sequences: np.ndarray | None = None) -> Tensor:
        """Weighted SSL loss ``α1·L_ssl + α2·L'_ssl``."""
        interest_loss, feature_loss = self.ssl_losses(c, mask, sequences)
        return (self.config.alpha_interest * interest_loss
                + self.config.alpha_feature * feature_loss)

    # ------------------------------------------------------------------
    # Diagnostics (Figure 5)
    # ------------------------------------------------------------------
    def pair_similarity(self, c: Tensor, num_pairs: int | None = None,
                        mask: np.ndarray | None = None) -> float:
        """Mean cosine similarity of freshly sampled interest view pairs.

        The paper's Figure 5 plots this during training: the CNN extractor
        stays near 0.7-0.8 (informative pairs) while SA/LSTM collapse to ~1.
        """
        cfg = self.config
        maps = self.interest_maps(c)
        samples = sample_interest_pairs(maps, num_pairs or cfg.num_interest_pairs,
                                        cfg.effective_distance, self._rng,
                                        mask=mask, seq_len=c.shape[2])
        sims = [float(F.cosine_similarity(s.view1.detach(),
                                          s.view2.detach()).mean().data)
                for s in samples]
        return float(np.mean(sims))
