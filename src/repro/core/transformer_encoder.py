"""Transformer view encoder (paper §IV-B3 future work).

The paper implements Enc^i and Enc^if as small MLPs and "leave[s] the
exploration of other encoder structures to future works", citing Transformer
encoders in CL4SRec/BERT4Rec.  This module implements that extension: the
flattened interest view ``(B, J·K)`` is reshaped into its ``J`` field tokens,
passed through a small pre-norm-free Transformer block (multi-head
self-attention over fields + a position-wise feed-forward), mean-pooled, and
projected to the contrastive code.

Select it with ``MISSConfig(interest_encoder="transformer")``.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Dense, Module, MultiHeadSelfAttention, Tensor

__all__ = ["TransformerViewEncoder"]


class TransformerViewEncoder(Module):
    """Self-attention over the J field tokens of an interest view."""

    def __init__(self, num_fields: int, embedding_dim: int,
                 layer_sizes: tuple[int, ...], rng: np.random.Generator,
                 num_heads: int = 2):
        super().__init__()
        if not layer_sizes:
            raise ValueError("encoder needs at least one layer")
        self.num_fields = num_fields
        self.embedding_dim = embedding_dim
        self.in_features = num_fields * embedding_dim
        self.attention = MultiHeadSelfAttention(embedding_dim, num_heads, rng)
        attn_width = self.attention.out_features
        self.feed_forward = Dense(attn_width, attn_width, rng, activation="relu")
        self.head = MLP(attn_width, list(layer_sizes), rng, activation="relu")
        self.out_features = layer_sizes[-1]

    def forward(self, view: Tensor) -> Tensor:
        if view.shape[-1] != self.in_features:
            raise ValueError(
                f"view width {view.shape[-1]} != encoder input {self.in_features}")
        batch = view.shape[0]
        tokens = view.reshape((batch, self.num_fields, self.embedding_dim))
        attended = self.attention(tokens)
        transformed = self.feed_forward(attended) + attended  # residual FFN
        pooled = transformed.mean(axis=1)
        return self.head(pooled)

    def encode_pair(self, view1: Tensor, view2: Tensor) -> tuple[Tensor, Tensor]:
        """Encode both views with shared weights (SimCLR convention)."""
        return self(view1), self(view2)
