"""The MISS framework: the paper's primary contribution."""

from .augmentation import (
    FeatureViewSample,
    InterestViewSample,
    sample_feature_pairs,
    sample_interest_pairs,
)
from .config import MISSConfig
from .diagnostics import SimilarityTracker
from .distances import DISTANCE_DISTRIBUTIONS, sample_distance
from .encoders import FieldAwareViewEncoder, ViewEncoder
from .extractors import FineGrainedExtractor, MultiInterestExtractor
from .extractors_alt import LSTMExtractor, SelfAttentionExtractor
from .losses import info_nce
from .miss import MISSModule
from .plugin import MISSEnhancedModel, attach_miss
from .transformer_encoder import TransformerViewEncoder

__all__ = [
    "MISSConfig", "MISSModule", "MISSEnhancedModel", "attach_miss",
    "MultiInterestExtractor", "FineGrainedExtractor",
    "SelfAttentionExtractor", "LSTMExtractor",
    "ViewEncoder", "FieldAwareViewEncoder",
    "InterestViewSample", "FeatureViewSample",
    "sample_interest_pairs", "sample_feature_pairs",
    "info_nce", "SimilarityTracker",
    "DISTANCE_DISTRIBUTIONS", "sample_distance", "TransformerViewEncoder",
]
