"""The CNN multi-interest extractors MIE(·) and MIMFE(·) (paper §V-A, §V-C).

:class:`MultiInterestExtractor` implements Eq. 18-20: ``M`` horizontal
convolution branches over the sequential-embedding tensor ``C ∈ (B,J,L,K)``,
producing one ``G_m ∈ (B,J,L-m+1,K)`` per branch.  Width-1 kernels capture
point-wise interests, wider kernels union-wise interests.

:class:`FineGrainedExtractor` implements Eq. 22-23: ``N`` vertical branches
over each ``G_m``, producing ``Ĝ_{m,n} ∈ (B,J-n+1,L-m+1,K)`` to model
intra-item correlations between the J sequential fields.
"""

from __future__ import annotations

import numpy as np

from ..nn import HorizontalConv, Module, ModuleList, Tensor, VerticalConv

__all__ = ["MultiInterestExtractor", "FineGrainedExtractor"]


class MultiInterestExtractor(Module):
    """MIE(·): horizontal convolution branches with widths 1..M."""

    def __init__(self, max_width: int, rng: np.random.Generator):
        super().__init__()
        if max_width < 1:
            raise ValueError("max_width must be >= 1")
        self.max_width = max_width
        self.branches = ModuleList([
            HorizontalConv(width, rng) for width in range(1, max_width + 1)
        ])

    def forward(self, c: Tensor) -> list[Tensor]:
        """Branch outputs ``[G_1, ..., G_M]``; skips branches wider than L."""
        seq_len = c.shape[2]
        outputs = []
        for branch in self.branches:
            if branch.width <= seq_len:
                outputs.append(branch(c))
        if not outputs:
            raise ValueError(f"sequence length {seq_len} shorter than every kernel")
        return outputs

    def num_interests(self, seq_len: int) -> int:
        """|T| = Σ_m (L - m + 1), the paper's interest count."""
        return sum(seq_len - width + 1
                   for width in range(1, self.max_width + 1) if width <= seq_len)


class FineGrainedExtractor(Module):
    """MIMFE(·): vertical convolution branches with heights 1..N.

    One set of vertical kernels is instantiated per horizontal branch
    (the paper indexes them ``ĝ_{m,n}``).
    """

    def __init__(self, max_width: int, max_height: int, rng: np.random.Generator):
        super().__init__()
        if max_height < 1:
            raise ValueError("max_height must be >= 1")
        self.max_height = max_height
        self.branches = ModuleList([
            ModuleList([VerticalConv(height, rng)
                        for height in range(1, max_height + 1)])
            for _ in range(max_width)
        ])

    def forward(self, interest_maps: list[Tensor]) -> list[Tensor]:
        """All ``Ĝ_{m,n}`` with n no larger than the field count J."""
        outputs = []
        for m, g in enumerate(interest_maps):
            num_fields = g.shape[1]
            for conv in self.branches[m]:
                if conv.height <= num_fields:
                    outputs.append(conv(g))
        if not outputs:
            raise ValueError("no vertical kernel fits the field count")
        return outputs

    def omega(self, num_fields: int) -> int:
        """Ω = Σ_n (J - n + 1), feature representations per interest."""
        return sum(num_fields - height + 1
                   for height in range(1, self.max_height + 1)
                   if height <= num_fields)
