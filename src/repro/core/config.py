"""Configuration of the MISS framework, including every ablation switch.

The paper's Table VII names its variants by the practice that is *removed*:

=================  ==============================================
Flag removed       Effect here
=================  ==============================================
``F`` (fine)       ``use_fine_grained=False`` — no MIMFE, no L'_ssl
``U`` (union)      ``use_union_wise=False`` — only width-1 kernels
``L`` (long)       ``use_long_range=False`` — view distance fixed to h=1
``M`` (multi)      ``use_multi_interest=False`` — one global interest per
                   sample, i.e. the sample-level contrast MISS argues against
=================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MISSConfig"]


@dataclass(frozen=True)
class MISSConfig:
    """Hyper-parameters of the MISS SSL component (paper §VI-A5 defaults)."""

    max_kernel_width: int = 3        # M: horizontal conv branches, tuned in {1..4}
    max_kernel_height: int = 2       # N: vertical conv branches, tuned in {1, 2}
    max_distance: int = 3            # H: max augmentation distance, tuned in {1..4}
    num_interest_pairs: int = 8      # P: interest-level view pairs per batch
    num_feature_pairs: int = 8       # Q: feature-level view pairs per batch
    temperature: float = 0.1         # τ, turning point in Fig. 7
    alpha_interest: float = 1.0      # α1 in Eq. 17
    alpha_feature: float = 1.0       # α2 in Eq. 17 (paper sets α1 = α2)
    interest_encoder_sizes: tuple[int, ...] = (20, 20)
    feature_encoder_sizes: tuple[int, ...] = (10, 10)
    extractor: str = "cnn"           # "cnn" | "sa" | "lstm" (Table VIII)
    # Future-work extensions (paper §IV-B3 and §V-B)
    interest_encoder: str = "mlp"    # "mlp" | "transformer"
    distance_distribution: str = "uniform"  # "uniform" | "gaussian" | "geometric"
    # Harness choices introduced by this reproduction (see DESIGN.md §4b);
    # switch off to ablate them.
    dedup_false_negatives: bool = True
    field_aware_encoder: bool = True
    # Ablation switches (Table VII)
    use_fine_grained: bool = True    # F
    use_union_wise: bool = True      # U
    use_long_range: bool = True      # L
    use_multi_interest: bool = True  # M
    seed: int = 0

    def __post_init__(self):
        if self.max_kernel_width < 1 or self.max_kernel_height < 1:
            raise ValueError("kernel branch counts must be >= 1")
        if self.max_distance < 1:
            raise ValueError("max_distance H must be >= 1")
        if self.num_interest_pairs < 1 or self.num_feature_pairs < 1:
            raise ValueError("P and Q must be >= 1")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.extractor not in ("cnn", "sa", "lstm"):
            raise ValueError(f"unknown extractor {self.extractor!r}")
        if self.interest_encoder not in ("mlp", "transformer"):
            raise ValueError(
                f"unknown interest encoder {self.interest_encoder!r}")
        if self.distance_distribution not in ("uniform", "gaussian", "geometric"):
            raise ValueError(
                f"unknown distance distribution {self.distance_distribution!r}")

    # ------------------------------------------------------------------
    # Derived effective settings
    # ------------------------------------------------------------------
    @property
    def effective_width(self) -> int:
        """M after the union-wise ablation."""
        return self.max_kernel_width if self.use_union_wise else 1

    @property
    def effective_distance(self) -> int:
        """H after the long-range ablation."""
        return self.max_distance if self.use_long_range else 1

    # ------------------------------------------------------------------
    # Variant constructors used by the ablation benchmark
    # ------------------------------------------------------------------
    def without(self, *practices: str) -> "MISSConfig":
        """Return a copy with the named practices removed.

        ``config.without("F", "U")`` reproduces the paper's ``MISS/F/U``.
        """
        changes: dict[str, bool] = {}
        for practice in practices:
            key = practice.upper()
            if key == "F":
                changes["use_fine_grained"] = False
            elif key == "U":
                changes["use_union_wise"] = False
            elif key == "L":
                changes["use_long_range"] = False
            elif key == "M":
                changes["use_multi_interest"] = False
            else:
                raise KeyError(f"unknown practice {practice!r}; use F/U/L/M")
        return replace(self, **changes)

    @property
    def variant_name(self) -> str:
        """The paper's variant label, e.g. ``"MISS/F/U"``."""
        suffix = ""
        if not self.use_multi_interest:
            suffix += "/M"
        if not self.use_fine_grained:
            suffix += "/F"
        if not self.use_union_wise:
            suffix += "/U"
        if not self.use_long_range:
            suffix += "/L"
        return "MISS" + suffix
