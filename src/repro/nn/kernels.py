"""Backend-dispatched autograd kernels for the profiled hot paths.

Each function here is a *seam*: it consults the active
:class:`~repro.nn.backend.ArrayOps` and either

* replays the exact multi-node autograd composition the seed implementation
  used (when the backend does not fuse the kernel) — this path is
  bit-identical to the pre-seam code, gradients included, which is what keeps
  the benchmark cache, serving golden parity, and bit-identical resume
  valid on the ``reference`` backend; or
* records a single fused graph node whose forward and backward call straight
  into the backend's optimized kernel.

Layers (:class:`~repro.nn.layers.Dense`,
:class:`~repro.nn.layers.Embedding`, :mod:`repro.nn.conv`, the attention
projections) and :func:`repro.nn.functional.l2_normalize` route through
these functions, so adding a backend never requires touching the layer
definitions again.
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .tensor import Tensor

__all__ = ["conv_window", "embedding_lookup", "linear_act", "l2_normalize"]


def _axis_slice(ndim: int, axis: int, start: int, stop: int) -> tuple:
    key = [slice(None)] * ndim
    key[axis] = slice(start, stop)
    return tuple(key)


def conv_window(x: Tensor, weight: Tensor, axis: int) -> Tensor:
    """Valid-mode convolution of the 1-D kernel ``weight`` along ``axis``.

    This is the workhorse of MIE (``axis=2``, the time axis of
    ``(B, J, L, K)``) and MIMFE (``axis=1``, the field axis).  The output
    length along ``axis`` is ``x.shape[axis] - len(weight) + 1``.
    """
    ops = get_backend()
    width = weight.shape[0]
    out_len = x.shape[axis] - width + 1
    if not ops.fuses_conv:
        # Reference composition: sum of shifted, scaled slices — exactly the
        # seed implementation's graph (same slice keys, same add order).
        result: Tensor | None = None
        for offset in range(width):
            sl = x[_axis_slice(x.ndim, axis, offset, offset + out_len)]
            term = sl * weight[offset]
            result = term if result is None else result + term
        return result

    out_data = ops.conv_window(x.data, weight.data, axis)
    x_data, w_data = x.data, weight.data

    def backward(grad: np.ndarray) -> None:
        gx, gw = ops.conv_window_backward(grad, x_data, w_data, axis)
        if x.requires_grad:
            x._accumulate(gx)
        if weight.requires_grad:
            weight._accumulate(gw)

    return Tensor._make(out_data, (x, weight), "conv_window", backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather with a dense scatter-add backward into ``table``.

    The fused path replaces the reference ``np.add.at`` scatter with a
    single flat ``bincount`` segment-sum and adopts the freshly built dense
    gradient instead of copying it through ``zeros_like``-then-add.
    """
    ops = get_backend()
    indices = np.asarray(indices, dtype=np.int64)
    if not ops.fuses_embedding:
        return table.take(indices, axis=0)

    out_data = np.take(table.data, indices, axis=0)
    num_rows, dim = table.shape

    def backward(grad: np.ndarray) -> None:
        dense = ops.scatter_rows(grad.reshape(-1, dim),
                                 indices.reshape(-1), num_rows)
        if table.grad is None:
            table.grad = dense  # freshly allocated: safe to adopt
        else:
            ops.grad_add(table.grad, dense)

    return Tensor._make(out_data, (table,), "embedding", backward)


def linear_act(x: Tensor, weight: Tensor, bias: Tensor | None = None,
               relu: bool = False) -> Tensor:
    """``relu(x @ weight + bias)`` (ReLU and bias optional).

    Accepts inputs of any rank; the contraction is over the last axis.  The
    fused path is one graph node with an in-place bias add and ReLU, and a
    backward that collapses rank-N inputs into a single pair of GEMMs.
    """
    ops = get_backend()
    if not ops.fuses_linear:
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out.relu() if relu else out

    bias_data = bias.data if bias is not None else None
    out_data = ops.linear(x.data, weight.data, bias_data, relu)
    x_data, w_data = x.data, weight.data

    def backward(grad: np.ndarray) -> None:
        gx, gw, gb = ops.linear_backward(
            grad, x_data, w_data, out_data,
            has_bias=bias is not None and bias.requires_grad, relu=relu,
            need_gx=x.requires_grad, need_gw=weight.requires_grad)
        if gx is not None:
            x._accumulate(gx)
        if gw is not None:
            weight._accumulate(gw)
        if gb is not None:
            bias._accumulate(gb)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, "linear_act", backward)


def l2_normalize(x: Tensor, axis: int, eps: float) -> Tensor:
    """``x / (||x||_2 + eps)`` along ``axis`` (the InfoNCE normaliser)."""
    ops = get_backend()
    if not ops.fuses_l2norm:
        norm = (x * x).sum(axis=axis, keepdims=True).sqrt()
        return x / (norm + eps)

    out_data, norm = ops.l2_normalize(x.data, axis, eps)
    x_data = x.data

    def backward(grad: np.ndarray) -> None:
        x._accumulate(ops.l2_normalize_backward(grad, x_data, norm, axis,
                                                eps))

    return Tensor._make(out_data, (x,), "l2_normalize", backward)
