"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the whole reproduction: the paper relies on
PyTorch/TensorFlow, which are unavailable offline, so we implement a small but
complete autograd engine.  A :class:`Tensor` wraps a ``numpy.ndarray`` and
records the operations applied to it; calling :meth:`Tensor.backward` walks the
recorded graph in reverse topological order and accumulates gradients.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` reduces a
  gradient back to the shape of the operand that was broadcast.
* Graph recording can be suspended with :func:`no_grad` (used during
  evaluation), which makes inference allocation-free apart from numpy.
* The engine is deliberately eager: the benchmark harness uses batch sizes
  of at most a few hundred with embedding width 10, where numpy's vectorised
  kernels dominate the runtime anyway.  Grad mode is tracked per thread so
  the serving engine can run ``no_grad`` forwards on worker threads without
  disturbing training on the main thread.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from .backend import get_backend

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
]

# Grad mode is per-thread: the serving engine runs no_grad forwards on
# worker threads concurrently with (potentially grad-recording) work on the
# main thread, and a process-global flag would let one thread's restore
# clobber another's state.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording on the calling thread.

    Use around evaluation loops so that forward passes do not retain
    references to intermediate arrays.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autodiff."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = (), _op: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents = _parents if self.requires_grad else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, op={self._op!r})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction utilities
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires,
                     _parents=tuple(p for p in parents if p.requires_grad), _op=op)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        ops = get_backend()
        if self.grad is None:
            self.grad = ops.grad_init(grad, self.data)
        else:
            ops.grad_add(self.grad, grad)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

        ops = get_backend()
        if ops.pools_gradients:
            # Interior-node gradients are dead once the walk completes; hand
            # their buffers back so the next backward pass reuses them
            # instead of re-allocating.  Leaves (`_backward is None`) keep
            # their grads for the optimizer; so does the root.
            for node in topo:
                if node is self or node._backward is None:
                    continue
                buffer = node.grad
                if buffer is not None:
                    node.grad = None
                    ops.release_grad(buffer)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), "pow", backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.expand_dims(grad, -1) * b
                elif a.ndim == 1:
                    ga = grad @ np.swapaxes(b, -1, -2)
                    ga = ga.reshape(a.shape) if ga.shape != a.shape else ga
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.expand_dims(a, -1) * grad
                elif b.ndim == 1:
                    gb = np.swapaxes(a, -1, -2) @ grad if grad.ndim > 1 else a.T @ grad
                    gb = _unbroadcast(gb, b.shape)
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), "log", backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), "sqrt", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), "tanh", backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), "sigmoid", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), "relu", backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), "abs", backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), "clip", backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o)
            # Split gradient between ties, matching the subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), "max", backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), "reshape", backward)

    def flatten_from(self, start_axis: int) -> "Tensor":
        """Collapse all axes from ``start_axis`` onward into one."""
        new_shape = self.shape[:start_axis] + (-1,)
        return self.reshape(new_shape)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), "transpose", backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), "expand_dims", backward)

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis))

        return Tensor._make(out_data, (self,), "squeeze", backward)

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))

        return Tensor._make(out_data.copy(), (self,), "broadcast_to", backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), "getitem", backward)

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Differentiable gather along ``axis`` (used for embedding lookup)."""
        indices = np.asarray(indices)
        out_data = np.take(self.data, indices, axis=axis)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if axis == 0:
                np.add.at(full, indices.reshape(-1),
                          grad.reshape((-1,) + self.shape[1:]))
            else:  # pragma: no cover - embedding always gathers on axis 0
                moved = np.moveaxis(full, axis, 0)
                np.add.at(moved, indices.reshape(-1),
                          np.moveaxis(grad, axis, 0).reshape((-1,) + moved.shape[1:]))
            self._accumulate(full)

        return Tensor._make(out_data, (self,), "take", backward)


def as_tensor(value) -> Tensor:
    """Coerce scalars/arrays/tensors to :class:`Tensor` without copying tensors."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``numpy.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), "concatenate", backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``numpy.stack``."""
    tensors = [as_tensor(t) for t in tensors]
    return concatenate([t.expand_dims(axis) for t in tensors], axis=axis)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable ``numpy.where`` with a non-differentiable condition."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~condition), b.shape))

    return Tensor._make(out_data, (a, b), "where", backward)


def maximum(a, b) -> Tensor:
    """Differentiable elementwise maximum."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data >= b.data, a, b)


def minimum(a, b) -> Tensor:
    """Differentiable elementwise minimum."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data <= b.data, a, b)
