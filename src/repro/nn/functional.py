"""Functional neural-network operations composed from autograd primitives."""

from __future__ import annotations

import numpy as np

from . import kernels
from .tensor import Tensor, maximum

__all__ = [
    "softmax",
    "log_softmax",
    "masked_softmax",
    "binary_cross_entropy_with_logits",
    "cosine_similarity",
    "l2_normalize",
    "dropout",
    "one_hot",
]

_EPS = 1e-8


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is False.

    Rows whose mask is entirely False produce all-zero probabilities rather
    than NaNs, which is the convention attention-pooling layers rely on for
    fully padded behaviour sequences.
    """
    mask = np.asarray(mask, dtype=bool)
    neg = np.where(mask, 0.0, -1e9)
    shifted = x + Tensor(neg)
    probs = softmax(shifted, axis=axis)
    # Zero out fully-masked rows (their softmax would be uniform noise).
    any_valid = mask.any(axis=axis, keepdims=True)
    return probs * Tensor(np.where(any_valid, 1.0, 0.0))


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy computed directly from logits.

    Uses the stable formulation ``max(z, 0) - z*y + log(1 + exp(-|z|))``.
    """
    targets = np.asarray(targets, dtype=np.float64)
    zeros = Tensor(np.zeros_like(logits.data))
    losses = maximum(logits, zeros) - logits * Tensor(targets) + (
        (-logits.abs()).exp() + 1.0).log()
    return losses.mean()


def l2_normalize(x: Tensor, axis: int = -1) -> Tensor:
    """Normalise ``x`` to unit L2 norm along ``axis``."""
    return kernels.l2_normalize(x, axis, _EPS)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: at train time scale the kept units by ``1/(1-rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(keep)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """Dense one-hot encoding used by the shallow LR/FM baselines."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (depth,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
