"""Horizontal and vertical convolutions from the MISS paper (Eq. 19 and 22).

The paper's kernels are deliberately tiny: a horizontal kernel
``g_m ∈ R^{1×m×1}`` has only ``m`` scalar weights and slides along the time
axis of the sequential-embedding tensor ``C ∈ R^{J×L×K}``; a vertical kernel
``ĝ_{m,n} ∈ R^{n×1×1}`` has ``n`` weights and slides along the field axis.
Because the kernels never exceed width 4, the convolution is implemented as a
sum of shifted slices, which keeps everything inside the autograd engine with
no im2col machinery.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["HorizontalConv", "VerticalConv"]


class HorizontalConv(Module):
    """Width-``m`` convolution along the time (L) axis of ``(B, J, L, K)``.

    Produces ``(B, J, L - m + 1, K)``.  Width 1 yields the paper's
    *point-wise* interest representations, width > 1 the *union-wise* ones.
    """

    def __init__(self, width: int, rng: np.random.Generator, activation: bool = True):
        super().__init__()
        if width < 1:
            raise ValueError(f"kernel width must be >= 1, got {width}")
        self.width = width
        self.activation = activation
        # Initialise near an averaging kernel so early interest representations
        # resemble local means of the behaviour embeddings.
        self.weight = Parameter(np.full(width, 1.0 / width) + rng.normal(0, 0.05, width))

    def forward(self, c: Tensor) -> Tensor:
        if c.ndim != 4:
            raise ValueError(f"expected (B, J, L, K) input, got shape {c.shape}")
        seq_len = c.shape[2]
        if seq_len < self.width:
            raise ValueError(
                f"sequence length {seq_len} shorter than kernel width {self.width}")
        result = kernels.conv_window(c, self.weight, axis=2)
        return result.relu() if self.activation else result


class VerticalConv(Module):
    """Height-``n`` convolution along the field (J) axis of ``(B, J, L', K)``.

    Produces ``(B, J - n + 1, L', K)``.  Height 1 keeps single-feature
    representations, height > 1 mixes adjacent sequential fields to model the
    paper's *intra-item* correlations.
    """

    def __init__(self, height: int, rng: np.random.Generator, activation: bool = True):
        super().__init__()
        if height < 1:
            raise ValueError(f"kernel height must be >= 1, got {height}")
        self.height = height
        self.activation = activation
        self.weight = Parameter(np.full(height, 1.0 / height) + rng.normal(0, 0.05, height))

    def forward(self, g: Tensor) -> Tensor:
        if g.ndim != 4:
            raise ValueError(f"expected (B, J, L', K) input, got shape {g.shape}")
        num_fields = g.shape[1]
        if num_fields < self.height:
            raise ValueError(
                f"field count {num_fields} smaller than kernel height {self.height}")
        result = kernels.conv_window(g, self.weight, axis=1)
        return result.relu() if self.activation else result
