"""Module system: parameter containers with recursive discovery.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this
reproduction needs: parameter registration by attribute assignment, recursive
``parameters()`` / ``named_parameters()``, train/eval mode propagation, and
``state_dict`` round-tripping for the pre-training strategy of Table IX.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Buffer", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model weight."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Buffer:
    """Non-trainable state saved alongside parameters (e.g. running stats).

    Buffers participate in ``state_dict``/``load_state_dict`` so that
    checkpoint restore reproduces evaluation-time behaviour exactly, but they
    receive no gradients and are ignored by optimisers.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = np.asarray(value, dtype=np.float64)


class Module:
    """Base class for all neural-network components."""

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Parameter and submodule discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{path}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, Buffer]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Buffer):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_buffers(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Buffer):
                        yield f"{path}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_buffers(prefix=f"{path}.{i}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights (used by complexity tests)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval modes
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # Gradient and state management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({f"{name}@buffer": b.value.copy()
                      for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        params = dict(self.named_parameters())
        buffers = {f"{name}@buffer": b for name, b in self.named_buffers()}
        own: dict[str, object] = {**params, **buffers}
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, array in state.items():
            if name not in own:
                continue
            target = own[name]
            if isinstance(target, Buffer):
                if target.value.shape != array.shape:
                    raise ValueError(
                        f"shape mismatch for buffer {name}: model "
                        f"{target.value.shape} vs state {array.shape}")
                target.value = np.array(array, dtype=np.float64)
            else:
                if target.shape != array.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: model {target.shape} vs "
                        f"state {array.shape}")
                target.data = np.array(array, dtype=np.float64)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """An indexable container whose entries are registered submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]
