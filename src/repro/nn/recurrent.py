"""Recurrent cells: LSTM, GRU, and DIEN's attention-gated AUGRU.

All cells operate on ``(B, L, K)`` inputs and honour a boolean validity mask
``(B, L)`` so that padded time steps leave the hidden state untouched.  The
time loop is a plain Python loop — behaviour sequences in the reproduction
are at most a few dozen steps, so per-step numpy kernels dominate.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, where

__all__ = ["LSTM", "GRU", "AUGRU"]


def _step_mask(mask_column: np.ndarray, new: Tensor, old: Tensor) -> Tensor:
    """Keep ``new`` where the step is valid, otherwise carry ``old`` forward."""
    return where(mask_column[:, None], new, old)


class LSTM(Module):
    """Single-layer LSTM returning per-step hidden states and the final state."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_h = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        if mask is None:
            mask = np.ones((batch, seq_len), dtype=bool)
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        hidden = self.hidden_size
        outputs = []
        for t in range(seq_len):
            gates = x[:, t, :] @ self.w_x + h @ self.w_h + self.bias
            i = gates[:, :hidden].sigmoid()
            f = gates[:, hidden:2 * hidden].sigmoid()
            g = gates[:, 2 * hidden:3 * hidden].tanh()
            o = gates[:, 3 * hidden:].sigmoid()
            c_new = f * c + i * g
            h_new = o * c_new.tanh()
            c = _step_mask(mask[:, t], c_new, c)
            h = _step_mask(mask[:, t], h_new, h)
            outputs.append(h.expand_dims(1))
        from .tensor import concatenate
        return concatenate(outputs, axis=1), h


class GRU(Module):
    """Single-layer GRU; used by DIEN's interest-extraction layer."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.w_h = Parameter(init.xavier_uniform((hidden_size, 3 * hidden_size), rng))
        self.bias = Parameter(np.zeros(3 * hidden_size))

    def _cell(self, x_t: Tensor, h: Tensor, update_scale: Tensor | None = None) -> Tensor:
        hidden = self.hidden_size
        gx = x_t @ self.w_x + self.bias
        gh = h @ self.w_h
        r = (gx[:, :hidden] + gh[:, :hidden]).sigmoid()
        z = (gx[:, hidden:2 * hidden] + gh[:, hidden:2 * hidden]).sigmoid()
        if update_scale is not None:
            z = z * update_scale
        n = (gx[:, 2 * hidden:] + r * gh[:, 2 * hidden:]).tanh()
        return (1.0 - z) * h + z * n

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        if mask is None:
            mask = np.ones((batch, seq_len), dtype=bool)
        h = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(seq_len):
            h_new = self._cell(x[:, t, :], h)
            h = _step_mask(mask[:, t], h_new, h)
            outputs.append(h.expand_dims(1))
        from .tensor import concatenate
        return concatenate(outputs, axis=1), h


class AUGRU(GRU):
    """GRU with Attentional Update gate (DIEN's interest-evolution layer).

    The per-step attention score (relevance of the behaviour to the candidate
    item) rescales the update gate, so irrelevant behaviours barely move the
    interest state.
    """

    def forward(self, x: Tensor, attention: Tensor, mask: np.ndarray | None = None
                ) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        if mask is None:
            mask = np.ones((batch, seq_len), dtype=bool)
        if attention.shape[:2] != (batch, seq_len):
            raise ValueError(
                f"attention shape {attention.shape} does not match input {x.shape}")
        h = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(seq_len):
            score = attention[:, t].expand_dims(-1)
            h_new = self._cell(x[:, t, :], h, update_scale=score)
            h = _step_mask(mask[:, t], h_new, h)
            outputs.append(h.expand_dims(1))
        from .tensor import concatenate
        return concatenate(outputs, axis=1), h
