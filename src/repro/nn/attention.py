"""Attention mechanisms used across the model zoo.

* :class:`LocalActivationUnit` — DIN's candidate-aware behaviour pooling
  (the LAUP of Eq. 4).
* :class:`MultiHeadSelfAttention` — AutoInt's interaction layer and the
  MISS-SA extractor ablation.
* :class:`DotProductAttention` — soft search used by SIM(soft) and DMR.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .kernels import linear_act
from .layers import MLP
from .module import Module, Parameter
from .tensor import Tensor, concatenate

__all__ = ["LocalActivationUnit", "MultiHeadSelfAttention", "DotProductAttention"]


class LocalActivationUnit(Module):
    """DIN's local activation unit: candidate-conditioned adaptive pooling.

    For every behaviour embedding ``e`` and candidate embedding ``c`` the unit
    scores ``MLP([e, c, e - c, e * c])`` and pools the sequence with the
    masked-softmax of those scores.
    """

    def __init__(self, embedding_dim: int, rng: np.random.Generator,
                 hidden_sizes: tuple[int, ...] = (36, 1)):
        super().__init__()
        self.embedding_dim = embedding_dim
        self.scorer = MLP(4 * embedding_dim, list(hidden_sizes), rng,
                          activation="sigmoid", output_activation=None)

    def scores(self, sequence: Tensor, candidate: Tensor, mask: np.ndarray) -> Tensor:
        """Return normalised attention weights ``(B, L)``."""
        batch, seq_len, _ = sequence.shape
        cand = candidate.expand_dims(1).broadcast_to((batch, seq_len, self.embedding_dim))
        features = concatenate(
            [sequence, cand, sequence - cand, sequence * cand], axis=-1)
        raw = self.scorer(features).squeeze(-1)
        return F.masked_softmax(raw, mask, axis=-1)

    def forward(self, sequence: Tensor, candidate: Tensor, mask: np.ndarray) -> Tensor:
        """Pool ``(B, L, K)`` behaviours into ``(B, K)`` given the candidate."""
        weights = self.scores(sequence, candidate, mask)
        return (sequence * weights.expand_dims(-1)).sum(axis=1)


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention over a set/sequence ``(B, L, K)``."""

    def __init__(self, embedding_dim: int, num_heads: int, rng: np.random.Generator,
                 head_dim: int | None = None, residual: bool = True):
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.num_heads = num_heads
        self.head_dim = head_dim or max(1, embedding_dim // num_heads)
        inner = self.num_heads * self.head_dim
        self.residual = residual
        self.w_query = Parameter(init.xavier_uniform((embedding_dim, inner), rng))
        self.w_key = Parameter(init.xavier_uniform((embedding_dim, inner), rng))
        self.w_value = Parameter(init.xavier_uniform((embedding_dim, inner), rng))
        self.w_res = Parameter(init.xavier_uniform((embedding_dim, inner), rng))
        self.out_features = inner

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, length, _ = x.shape
        heads, depth = self.num_heads, self.head_dim

        def split(t: Tensor) -> Tensor:
            # (B, L, H*D) -> (B, H, L, D)
            return t.reshape((batch, length, heads, depth)).transpose((0, 2, 1, 3))

        q = split(linear_act(x, self.w_query))
        k = split(linear_act(x, self.w_key))
        v = split(linear_act(x, self.w_value))
        logits = (q @ k.transpose((0, 1, 3, 2))) * (1.0 / np.sqrt(depth))
        if mask is not None:
            attend = np.broadcast_to(mask[:, None, None, :], logits.shape)
            weights = F.masked_softmax(logits, attend, axis=-1)
        else:
            weights = F.softmax(logits, axis=-1)
        attended = weights @ v  # (B, H, L, D)
        merged = attended.transpose((0, 2, 1, 3)).reshape((batch, length, heads * depth))
        if self.residual:
            merged = (merged + linear_act(x, self.w_res)).relu()
        return merged


class DotProductAttention(Module):
    """Scaled dot-product attention of a single query over a sequence.

    Used by SIM(soft) for relevance search over long histories and by DMR for
    user-to-item matching.
    """

    def __init__(self, embedding_dim: int, rng: np.random.Generator):
        super().__init__()
        self.scale = 1.0 / np.sqrt(embedding_dim)
        self.w_query = Parameter(init.xavier_uniform((embedding_dim, embedding_dim), rng))

    def scores(self, sequence: Tensor, query: Tensor, mask: np.ndarray) -> Tensor:
        projected = linear_act(query, self.w_query)  # (B, K)
        logits = (sequence * projected.expand_dims(1)).sum(axis=-1) * self.scale
        return F.masked_softmax(logits, mask, axis=-1)

    def forward(self, sequence: Tensor, query: Tensor, mask: np.ndarray) -> Tensor:
        weights = self.scores(sequence, query, mask)
        return (sequence * weights.expand_dims(-1)).sum(axis=1)
