"""Optimisers: SGD and Adam (the paper trains everything with Adam)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.parameters = list(parameters)
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _grad(self, p: Parameter) -> np.ndarray | None:
        """Return the effective gradient including L2 regularisation."""
        if p.grad is None:
            return None
        if self.weight_decay:
            return p.grad + self.weight_decay * p.data
        return p.grad


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = self._grad(p)
            if grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.betas = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = self._grad(p)
            if grad is None:
                continue
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
