"""Optimisers: SGD and Adam (the paper trains everything with Adam)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.parameters = list(parameters)
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _grad(self, p: Parameter) -> np.ndarray | None:
        """Return the effective gradient including L2 regularisation."""
        if p.grad is None:
            return None
        if self.weight_decay:
            return p.grad + self.weight_decay * p.data
        return p.grad

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Restorable snapshot: hyper-parameters + slot arrays (copies).

        Layout: scalar fields at the top level, every per-parameter slot
        array under ``"arrays"`` keyed ``"<slot>.<index>"`` — flat names so
        checkpoint stores can serialise them directly into an ``.npz``.
        """
        return {"kind": type(self).__name__, "lr": float(self.lr),
                "weight_decay": float(self.weight_decay), "arrays": {}}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._check_kind(state)
        self.lr = float(state["lr"])
        self.weight_decay = float(state["weight_decay"])

    def _check_kind(self, state: dict) -> None:
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(f"optimizer state is for {kind!r}, "
                             f"not {type(self).__name__}")

    def _load_slots(self, state: dict, slots: dict[str, list[np.ndarray]]
                    ) -> None:
        """Copy ``arrays`` entries into per-parameter slot lists, validated."""
        arrays = state.get("arrays", {})
        for slot_name, slot in slots.items():
            for i, current in enumerate(slot):
                key = f"{slot_name}.{i}"
                if key not in arrays:
                    raise ValueError(f"optimizer state missing array {key!r}")
                incoming = np.asarray(arrays[key])
                if incoming.shape != current.shape:
                    raise ValueError(
                        f"optimizer state shape mismatch for {key!r}: "
                        f"{incoming.shape} vs {current.shape}")
                slot[i] = incoming.astype(current.dtype, copy=True)


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = self._grad(p)
            if grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["momentum"] = float(self.momentum)
        state["arrays"] = {f"velocity.{i}": v.copy()
                           for i, v in enumerate(self._velocity)}
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state.get("momentum", self.momentum))
        self._load_slots(state, {"velocity": self._velocity})


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.betas = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = self._grad(p)
            if grad is None:
                continue
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["betas"] = [float(b) for b in self.betas]
        state["eps"] = float(self.eps)
        state["t"] = int(self._t)
        arrays = {f"m.{i}": m.copy() for i, m in enumerate(self._m)}
        arrays.update({f"v.{i}": v.copy() for i, v in enumerate(self._v)})
        state["arrays"] = arrays
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.betas = tuple(float(b) for b in state.get("betas", self.betas))
        self.eps = float(state.get("eps", self.eps))
        self._t = int(state["t"])
        self._load_slots(state, {"m": self._m, "v": self._v})


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
