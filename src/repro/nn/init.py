"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment in the benchmark harness is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "normal", "zeros", "uniform"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform initialisation, the default for dense layers."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming uniform initialisation for ReLU stacks."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small-variance Gaussian, the conventional embedding-table init."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, limit: float = 0.05) -> np.ndarray:
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape)
