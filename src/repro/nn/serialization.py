"""Checkpointing: save/load a module's state dict as a compressed ``.npz``.

Used for the pre-training workflow of Table IX (pre-train once, fine-tune
many configurations) and for shipping trained models between processes.
Parameters and buffers are stored flat under their dotted names; loading is
strict by default so silent architecture drift cannot go unnoticed.

Writes go through :func:`repro.resilience.atomic.atomic_write_npz` (temp file
+ fsync + rename), so a crash mid-save can never leave a truncated archive in
place of a previous good one.  Full training-run state (optimiser, RNG,
counters) lives in :class:`repro.resilience.CheckpointStore`; this module
remains the thin weights-only format.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..resilience.atomic import atomic_write_npz
from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__repro_checkpoint_version__"
_VERSION = 1


def save_checkpoint(module: Module, path: str | Path) -> Path:
    """Write ``module.state_dict()`` to ``path`` (``.npz`` appended if absent).

    Returns the resolved path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"state dict may not use the reserved key {_META_KEY}")
    atomic_write_npz(path, {**state, _META_KEY: np.array(_VERSION)},
                     compressed=True)
    return path


def load_checkpoint(module: Module, path: str | Path, strict: bool = True) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint` into ``module``."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        version = int(archive[_META_KEY]) if _META_KEY in archive else 0
        if version > _VERSION:
            raise ValueError(
                f"checkpoint version {version} is newer than supported "
                f"({_VERSION}); upgrade the library")
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
    module.load_state_dict(state, strict=strict)
