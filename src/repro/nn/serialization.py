"""Checkpointing: save/load a module's state dict as a compressed ``.npz``.

Used for the pre-training workflow of Table IX (pre-train once, fine-tune
many configurations) and for shipping trained models between processes.
Parameters and buffers are stored flat under their dotted names; loading is
strict by default so silent architecture drift cannot go unnoticed.

Writes go through :func:`repro.resilience.atomic.atomic_write_npz` (temp file
+ fsync + rename), so a crash mid-save can never leave a truncated archive in
place of a previous good one.  Full training-run state (optimiser, RNG,
counters) lives in :class:`repro.resilience.CheckpointStore`; this module
remains the thin weights-only format.

Load failures carry enough context to act on from a serving process: a shape
mismatch names the offending parameter and both shapes, and a key mismatch
lists the missing/unexpected names — each prefixed with the checkpoint path.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..resilience.atomic import atomic_write_npz
from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "read_state"]

_META_KEY = "__repro_checkpoint_version__"
_VERSION = 1


def save_checkpoint(module: Module, path: str | Path) -> Path:
    """Write ``module.state_dict()`` to ``path`` (``.npz`` appended if absent).

    Returns the resolved path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"state dict may not use the reserved key {_META_KEY}")
    atomic_write_npz(path, {**state, _META_KEY: np.array(_VERSION)},
                     compressed=True)
    return path


def read_state(path: str | Path) -> dict[str, np.ndarray]:
    """Load the raw named arrays of a checkpoint without touching a module.

    Resolves the same ``.npz`` suffix convention as :func:`load_checkpoint`
    and strips the version metadata; the serving artifact loader uses this to
    verify content digests before any weights reach a model.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        version = int(archive[_META_KEY]) if _META_KEY in archive else 0
        if version > _VERSION:
            raise ValueError(
                f"checkpoint {path}: version {version} is newer than "
                f"supported ({_VERSION}); upgrade the library")
        return {name: archive[name] for name in archive.files
                if name != _META_KEY}


def load_checkpoint(module: Module, path: str | Path, strict: bool = True) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint` into ``module``.

    On mismatch the error names the checkpoint file and the offending
    parameter (with the model-side and checkpoint-side shapes), so a failed
    load in a serving context points straight at the drifted weight.
    """
    state = read_state(path)
    try:
        module.load_state_dict(state, strict=strict)
    except (KeyError, ValueError) as exc:
        # KeyError wraps its message in quotes when rendered; re-raise both
        # kinds as ValueError so the path + parameter detail reads cleanly.
        raise ValueError(
            f"checkpoint {path} does not match {type(module).__name__}: "
            f"{exc.args[0] if exc.args else exc}") from exc
