"""Numpy-backed neural-network substrate (autograd engine, layers, optimisers).

This subpackage replaces the PyTorch/TensorFlow dependency of the original
MISS implementation with a self-contained reverse-mode autodiff framework.
"""

from . import functional
from . import kernels
from .attention import DotProductAttention, LocalActivationUnit, MultiHeadSelfAttention
from .backend import (
    ArrayOps,
    available_backends,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from .conv import HorizontalConv, VerticalConv
from .layers import (
    MLP,
    Dense,
    Dice,
    Dropout,
    Embedding,
    Identity,
    PReLU,
    Sequential,
    get_activation,
)
from .module import Buffer, Module, ModuleList, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import AUGRU, GRU, LSTM
from .serialization import load_checkpoint, save_checkpoint
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    stack,
    where,
)

__all__ = [
    "functional", "kernels",
    "ArrayOps", "available_backends", "get_backend", "set_backend",
    "use_backend", "resolve_backend",
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "concatenate", "stack", "where", "maximum", "minimum",
    "Module", "ModuleList", "Parameter", "Buffer",
    "Dense", "Embedding", "Dropout", "MLP", "Sequential",
    "PReLU", "Dice", "Identity", "get_activation",
    "HorizontalConv", "VerticalConv",
    "LSTM", "GRU", "AUGRU",
    "LocalActivationUnit", "MultiHeadSelfAttention", "DotProductAttention",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "save_checkpoint", "load_checkpoint",
]
