"""Core layers: dense, embedding, MLP, dropout, and CTR-specific activations."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import functional as F
from . import init
from . import kernels
from .module import Buffer, Module, ModuleList, Parameter
from .tensor import Tensor, maximum

__all__ = [
    "Dense",
    "Embedding",
    "Dropout",
    "MLP",
    "Sequential",
    "PReLU",
    "Dice",
    "Identity",
    "get_activation",
]


class Identity(Module):
    """No-op layer, useful as a default activation placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dense(Module):
    """Fully connected layer ``y = x @ W + b``.

    Works on inputs of any rank; the contraction is over the last axis.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True, activation: str | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        # Linear and ReLU epilogues can run inside the fused linear kernel;
        # anything else (prelu/dice/...) stays a separate module application.
        self._act_name = activation
        self.activation = get_activation(activation, out_features, rng)

    def forward(self, x: Tensor) -> Tensor:
        if self._act_name in (None, "linear", "relu"):
            return kernels.linear_act(x, self.weight, self.bias,
                                      relu=self._act_name == "relu")
        out = kernels.linear_act(x, self.weight, self.bias, relu=False)
        return self.activation(out)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Index 0 is reserved as padding by the data pipeline; its row is still
    trainable but attention masks prevent it from influencing pooled
    representations.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator,
                 std: float = 0.01):
        super().__init__()
        if num_embeddings <= 0:
            raise ValueError("num_embeddings must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=std))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        # Single bounds pass: reinterpreting int64 as uint64 wraps negatives
        # to >= 2**63, so one max() catches both ends of the valid range.
        if indices.size and indices.view(np.uint64).max() >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}")
        return kernels.embedding_lookup(self.weight, indices)


class Dropout(Module):
    """Inverted dropout layer driven by an explicit RNG for reproducibility."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, self.training)


class PReLU(Module):
    """Parametric ReLU with a single learnable slope per channel."""

    def __init__(self, num_channels: int, initial: float = 0.25):
        super().__init__()
        self.alpha = Parameter(np.full(num_channels, initial))

    def forward(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (x - positive) * self.alpha
        return positive + negative


class Dice(Module):
    """Data-adaptive activation from the DIN paper.

    ``Dice(x) = p(x) * x + (1 - p(x)) * alpha * x`` where ``p(x)`` is a
    sigmoid of the batch-standardised input.  Running statistics are kept with
    momentum so evaluation is deterministic.
    """

    def __init__(self, num_channels: int, epsilon: float = 1e-8, momentum: float = 0.99):
        super().__init__()
        self.alpha = Parameter(np.zeros(num_channels))
        self.epsilon = epsilon
        self.momentum = momentum
        self.running_mean = Buffer(np.zeros(num_channels))
        self.running_var = Buffer(np.ones(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            axes = tuple(range(x.ndim - 1))
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean.value = (self.momentum * self.running_mean.value
                                       + (1 - self.momentum) * mean)
            self.running_var.value = (self.momentum * self.running_var.value
                                      + (1 - self.momentum) * var)
        else:
            mean, var = self.running_mean.value, self.running_var.value
        standardized = (x - Tensor(mean)) / Tensor(np.sqrt(var + self.epsilon))
        gate = standardized.sigmoid()
        return gate * x + (1.0 - gate) * self.alpha * x


_SIMPLE_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": lambda x: x.relu(),
    "sigmoid": lambda x: x.sigmoid(),
    "tanh": lambda x: x.tanh(),
    "softplus": lambda x: ((-x.abs()).exp() + 1.0).log() + maximum(x, Tensor(np.zeros(1))),
}


class _Lambda(Module):
    def __init__(self, fn: Callable[[Tensor], Tensor]):
        super().__init__()
        self._fn = fn

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


def get_activation(name: str | None, num_channels: int, rng: np.random.Generator) -> Module:
    """Resolve an activation by name to a module instance."""
    if name is None or name == "linear":
        return Identity()
    if name in _SIMPLE_ACTIVATIONS:
        return _Lambda(_SIMPLE_ACTIVATIONS[name])
    if name == "prelu":
        return PReLU(num_channels)
    if name == "dice":
        return Dice(num_channels)
    raise ValueError(f"unknown activation: {name!r}")


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = ModuleList(modules)

    def forward(self, x):
        for module in self.steps:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron as in Eq. (5)-(6) of the paper.

    ``layer_sizes`` excludes the input width.  The final layer uses
    ``output_activation`` (default: linear, so downstream losses can work on
    logits).
    """

    def __init__(self, in_features: int, layer_sizes: Sequence[int],
                 rng: np.random.Generator, activation: str = "relu",
                 output_activation: str | None = None, dropout: float = 0.0):
        super().__init__()
        if not layer_sizes:
            raise ValueError("layer_sizes must be non-empty")
        self.layers = ModuleList()
        widths = [in_features, *layer_sizes]
        for i, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
            is_last = i == len(layer_sizes) - 1
            act = output_activation if is_last else activation
            self.layers.append(Dense(fan_in, fan_out, rng, activation=act))
            if dropout > 0.0 and not is_last:
                self.layers.append(Dropout(dropout, rng))
        self.out_features = layer_sizes[-1]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
