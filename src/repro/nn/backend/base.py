"""The ``ArrayOps`` seam: every hot-path kernel the nn stack may delegate.

A backend is an object that (a) advertises which kernels it *fuses* via the
``fuses_*`` capability flags and (b) implements the fused forward/backward
pairs for the kernels it claims.  The autograd glue in
:mod:`repro.nn.kernels` consults the active backend per call: when a
capability flag is off it builds the bit-identical composed graph the seed
implementation used (per-offset convolution slices, ``np.add.at`` embedding
scatter, separate matmul/add/relu nodes), and when it is on it records a
single graph node whose forward/backward call straight into the backend.

Gradient accumulation is also routed through the backend
(:meth:`ArrayOps.grad_init` / :meth:`ArrayOps.grad_add` /
:meth:`ArrayOps.release_grad`), so a backend can substitute in-place adds and
a reusable buffer pool for the seed's ``zeros_like``-then-add allocation
pattern without :class:`~repro.nn.tensor.Tensor` knowing.

The contract every fused kernel must honour (enforced by the gradcheck suite
in ``tests/test_backend_gradcheck.py``): forward values and gradients agree
with the reference composition to float64 round-off (``rtol=1e-9``) for all
shapes the models produce, including the degenerate ``J=1``/``L=1`` and
partial-mask cases of MIE/MIMFE.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayOps"]


class ArrayOps:
    """Abstract backend.  Subclasses override flags and fused kernels.

    The base class implements the *reference* gradient-accumulation
    semantics (allocate zeros, add) so that a backend which fuses nothing is
    bit-identical to the seed implementation.
    """

    #: Registry name; set by subclasses.
    name = "abstract"

    # Capability flags — ``repro.nn.kernels`` consults these per call.
    fuses_conv = False          # windowed MIE/MIMFE convolutions
    fuses_embedding = False     # embedding backward scatter
    fuses_linear = False        # linear (+bias) (+relu) forward/backward
    fuses_l2norm = False        # InfoNCE L2 normalisation
    pools_gradients = False     # in-place grad accumulation + buffer pool
    batches_ssl_views = False   # MISS: encode all SSL views in one forward

    # ------------------------------------------------------------------
    # Gradient accumulation (reference semantics; see FusedOps for pooling)
    # ------------------------------------------------------------------
    def grad_init(self, grad: np.ndarray, like: np.ndarray) -> np.ndarray:
        """First accumulation into a fresh gradient buffer for ``like``."""
        out = np.zeros_like(like)
        out += grad
        return out

    def grad_add(self, acc: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Accumulate ``grad`` into the existing buffer ``acc``."""
        acc += grad
        return acc

    def release_grad(self, grad: np.ndarray) -> None:
        """Return a no-longer-needed gradient buffer to the backend."""

    def clear_pool(self) -> None:
        """Drop any reusable buffers the backend is holding."""

    # ------------------------------------------------------------------
    # Fused kernels — only called when the matching ``fuses_*`` flag is on.
    # ------------------------------------------------------------------
    def conv_window(self, x: np.ndarray, w: np.ndarray,
                    axis: int) -> np.ndarray:
        """Windowed 1-D convolution of ``w`` along ``axis`` (valid mode)."""
        raise NotImplementedError

    def conv_window_backward(self, grad: np.ndarray, x: np.ndarray,
                             w: np.ndarray, axis: int,
                             ) -> tuple[np.ndarray, np.ndarray]:
        """``(dL/dx, dL/dw)`` of :meth:`conv_window`."""
        raise NotImplementedError

    def scatter_rows(self, grad: np.ndarray, indices: np.ndarray,
                     num_rows: int) -> np.ndarray:
        """Dense ``(num_rows, K)`` segment-sum of ``grad`` rows by index."""
        raise NotImplementedError

    def linear(self, x: np.ndarray, w: np.ndarray, b: np.ndarray | None,
               relu: bool) -> np.ndarray:
        """``act(x @ w + b)`` with ``act`` = ReLU or identity."""
        raise NotImplementedError

    def linear_backward(self, grad: np.ndarray, x: np.ndarray, w: np.ndarray,
                        out: np.ndarray, *, has_bias: bool, relu: bool,
                        need_gx: bool, need_gw: bool,
                        ) -> tuple[np.ndarray | None, np.ndarray | None,
                                   np.ndarray | None]:
        """``(dL/dx, dL/dw, dL/db)`` of :meth:`linear` (entries may be None)."""
        raise NotImplementedError

    def l2_normalize(self, x: np.ndarray, axis: int,
                     eps: float) -> tuple[np.ndarray, np.ndarray]:
        """``(x / (||x|| + eps), ||x||)`` along ``axis`` (norm keeps dims)."""
        raise NotImplementedError

    def l2_normalize_backward(self, grad: np.ndarray, x: np.ndarray,
                              norm: np.ndarray, axis: int,
                              eps: float) -> np.ndarray:
        """``dL/dx`` of :meth:`l2_normalize`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<ArrayOps {self.name!r}>"
