"""The fused backend: optimized kernels for the profiled hot paths.

Four kernel families replace the reference compositions:

* **Windowed convolutions** (MIE horizontal / MIMFE vertical): the per-offset
  Python loop of scaled slices becomes one ``sliding_window_view`` plus a
  single GEMM (``tensordot`` over the window axis); the input gradient is the
  same GEMM against the flipped kernel over a zero-padded window view.
* **Embedding backward**: the ``np.add.at`` scatter (notoriously slow —
  element-at-a-time ufunc inner loop) becomes one flat ``np.bincount``
  segment-sum over ``index * K + column``.
* **Fused linear**: ``relu(x @ w + b)`` runs as one node with in-place bias
  add and ReLU; the backward collapses rank-N inputs to a single pair of
  GEMMs instead of a batched matmul followed by an axis reduction.
* **Gradient buffers**: first-accumulation allocates from a small per-shape
  buffer pool (``memcpy`` into a recycled buffer instead of
  ``zeros_like`` + add), subsequent accumulations are in-place ``np.add``;
  ``Tensor.backward`` releases interior-node buffers back to the pool.

Everything is float64 and deterministic; agreement with the reference
composition (values and gradients, to round-off) is enforced by the
gradcheck suite.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import ArrayOps

__all__ = ["FusedOps"]


class _BufferPool:
    """Bounded per-(shape, dtype) free-list of gradient buffers.

    Buffers enter via :meth:`release` (from ``Tensor.backward`` clearing
    interior nodes and from ``zero_grad``) and leave via :meth:`acquire`.
    The cap bounds worst-case memory; arrays beyond it are simply dropped
    for the garbage collector.  A lock keeps the free-list consistent if a
    grad-recording forward ever runs off the main thread.
    """

    __slots__ = ("_buffers", "_cap", "_lock", "hits", "misses")

    def __init__(self, cap_per_key: int = 4):
        self._buffers: dict[tuple, list[np.ndarray]] = {}
        self._cap = cap_per_key
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        with self._lock:
            stack = self._buffers.get(key)
            if stack:
                self.hits += 1
                return stack.pop()
            self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        if array.base is not None:  # views are never safe to recycle
            return
        key = (array.shape, array.dtype.str)
        with self._lock:
            stack = self._buffers.setdefault(key, [])
            if len(stack) < self._cap:
                stack.append(array)

    def clear(self) -> None:
        with self._lock:
            self._buffers.clear()

    def size(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._buffers.values())


class FusedOps(ArrayOps):
    """Optimized kernels + pooled gradient buffers."""

    name = "fused"
    fuses_conv = True
    fuses_embedding = True
    fuses_linear = True
    fuses_l2norm = True
    pools_gradients = True
    batches_ssl_views = True

    def __init__(self):
        self.pool = _BufferPool()

    # ------------------------------------------------------------------
    # Gradient accumulation with buffer pooling
    # ------------------------------------------------------------------
    def grad_init(self, grad: np.ndarray, like: np.ndarray) -> np.ndarray:
        out = self.pool.acquire(like.shape, like.dtype)
        np.copyto(out, grad)
        return out

    def grad_add(self, acc: np.ndarray, grad: np.ndarray) -> np.ndarray:
        np.add(acc, grad, out=acc)
        return acc

    def release_grad(self, grad: np.ndarray) -> None:
        self.pool.release(grad)

    def clear_pool(self) -> None:
        self.pool.clear()

    # ------------------------------------------------------------------
    # Windowed convolution: stride tricks + one GEMM
    # ------------------------------------------------------------------
    def conv_window(self, x: np.ndarray, w: np.ndarray,
                    axis: int) -> np.ndarray:
        width = w.shape[0]
        if width == 1:
            return x * w[0]
        windows = sliding_window_view(x, width, axis=axis)
        return np.tensordot(windows, w, axes=([windows.ndim - 1], [0]))

    def conv_window_backward(self, grad: np.ndarray, x: np.ndarray,
                             w: np.ndarray, axis: int,
                             ) -> tuple[np.ndarray, np.ndarray]:
        width = w.shape[0]
        if width == 1:
            return grad * w[0], np.array([float(np.vdot(grad, x))])
        windows = sliding_window_view(x, width, axis=axis)
        # dL/dw[m] = Σ grad · x[window shifted by m]: one GEMV over all
        # output positions at once.
        gw = np.tensordot(grad, windows,
                          axes=(list(range(grad.ndim)),
                                list(range(grad.ndim))))
        # dL/dx[l] = Σ_m grad[l - m] · w[m]: a *full* correlation, i.e. the
        # same windowed GEMM against the flipped kernel over zero-padded
        # grad.
        pad = [(0, 0)] * grad.ndim
        pad[axis] = (width - 1, width - 1)
        padded = np.pad(grad, pad)
        gwin = sliding_window_view(padded, width, axis=axis)
        gx = np.tensordot(gwin, w[::-1].copy(),
                          axes=([gwin.ndim - 1], [0]))
        return gx, gw

    # ------------------------------------------------------------------
    # Embedding backward: one flat bincount segment-sum
    # ------------------------------------------------------------------
    def scatter_rows(self, grad: np.ndarray, indices: np.ndarray,
                     num_rows: int) -> np.ndarray:
        k = grad.shape[1]
        flat = (indices[:, None] * k + np.arange(k)[None, :]).ravel()
        dense = np.bincount(flat, weights=grad.ravel(),
                            minlength=num_rows * k)
        return dense.reshape(num_rows, k)

    # ------------------------------------------------------------------
    # Fused linear (+bias) (+ReLU)
    # ------------------------------------------------------------------
    def linear(self, x: np.ndarray, w: np.ndarray, b: np.ndarray | None,
               relu: bool) -> np.ndarray:
        out = x @ w
        if b is not None:
            out += b
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    def linear_backward(self, grad: np.ndarray, x: np.ndarray, w: np.ndarray,
                        out: np.ndarray, *, has_bias: bool, relu: bool,
                        need_gx: bool, need_gw: bool,
                        ) -> tuple[np.ndarray | None, np.ndarray | None,
                                   np.ndarray | None]:
        g = grad * (out > 0) if relu else grad
        if x.ndim == 2:
            g2, x2 = g, x
        else:
            g2 = g.reshape(-1, g.shape[-1])
            x2 = x.reshape(-1, x.shape[-1])
        gx = None
        if need_gx:
            gx = g2 @ w.T
            if x.ndim != 2:
                gx = gx.reshape(x.shape)
        gw = x2.T @ g2 if need_gw else None
        gb = g2.sum(axis=0) if has_bias else None
        return gx, gw, gb

    # ------------------------------------------------------------------
    # Fused L2 normalisation (InfoNCE Eq. 15/16 hot path)
    # ------------------------------------------------------------------
    def l2_normalize(self, x: np.ndarray, axis: int,
                     eps: float) -> tuple[np.ndarray, np.ndarray]:
        norm = np.sqrt(np.sum(x * x, axis=axis, keepdims=True))
        return x / (norm + eps), norm

    def l2_normalize_backward(self, grad: np.ndarray, x: np.ndarray,
                              norm: np.ndarray, axis: int,
                              eps: float) -> np.ndarray:
        # Matches the reference composition, including its sqrt-backward
        # clamp: d||x||/dx uses max(||x||, 1e-12) in the denominator.
        scale = norm + eps
        dot = np.sum(grad * x, axis=axis, keepdims=True)
        safe = np.maximum(norm, 1e-12)
        return grad / scale - x * (dot / (scale * scale * safe))
