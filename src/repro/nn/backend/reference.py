"""The reference backend: fuse nothing, behave exactly like the seed code.

Every capability flag is off, so :mod:`repro.nn.kernels` builds the original
multi-node autograd compositions — per-offset convolution slices,
``Tensor.take`` with its ``np.add.at`` scatter, separate matmul/add/relu
nodes — and gradient accumulation keeps the seed's ``zeros_like``-then-add
semantics inherited from :class:`~repro.nn.backend.base.ArrayOps`.  This is
the backend the benchmark cache, the serving golden-parity suite, and
bit-identical resume were recorded against; it must never drift.
"""

from __future__ import annotations

from .base import ArrayOps

__all__ = ["ReferenceOps"]


class ReferenceOps(ArrayOps):
    """Bit-identical to the pre-backend-seam implementation."""

    name = "reference"
