"""Pluggable array-math backends (see DESIGN.md §10).

The process-wide default backend is resolved once at import from the
``REPRO_BACKEND`` environment variable (``reference`` when unset) and can be
replaced with :func:`set_backend` (the CLI's ``--backend`` flag does this).
:func:`use_backend` pushes a *thread-local* override for a scope — the
serving session uses it to pin scoring to the backend an artifact was
exported under, without disturbing other threads.

``get_backend()`` is called on the hot path (every gradient accumulation),
so it is a two-lookup fast path: thread-local stack top, else the process
default.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Iterator

from .base import ArrayOps
from .fused import FusedOps
from .reference import ReferenceOps

__all__ = [
    "ArrayOps",
    "ReferenceOps",
    "FusedOps",
    "BACKEND_NAMES",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
]

_REGISTRY: dict[str, type[ArrayOps]] = {
    ReferenceOps.name: ReferenceOps,
    FusedOps.name: FusedOps,
}
BACKEND_NAMES = tuple(sorted(_REGISTRY))

_INSTANCES: dict[str, ArrayOps] = {}
_TLS = threading.local()


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return BACKEND_NAMES


def resolve_backend(backend: str | ArrayOps) -> ArrayOps:
    """Coerce a name or instance to the (cached) backend instance."""
    if isinstance(backend, ArrayOps):
        return backend
    try:
        cls = _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown array backend {backend!r}; "
            f"available: {', '.join(BACKEND_NAMES)}") from None
    if backend not in _INSTANCES:
        _INSTANCES[backend] = cls()
    return _INSTANCES[backend]


_DEFAULT: ArrayOps = resolve_backend(
    os.environ.get("REPRO_BACKEND", ReferenceOps.name))


def get_backend() -> ArrayOps:
    """The backend active on the calling thread."""
    stack = getattr(_TLS, "stack", None)
    if stack:
        return stack[-1]
    return _DEFAULT


def set_backend(backend: str | ArrayOps) -> ArrayOps:
    """Replace the process-wide default backend; returns the instance."""
    global _DEFAULT
    _DEFAULT = resolve_backend(backend)
    return _DEFAULT


@contextlib.contextmanager
def use_backend(backend: str | ArrayOps) -> Iterator[ArrayOps]:
    """Thread-local backend override for the duration of the block."""
    ops = resolve_backend(backend)
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(ops)
    try:
        yield ops
    finally:
        stack.pop()
