"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table III-style statistics and structural diagnostics for the three
    simulated worlds.
``train``
    Train one model (optionally MISS-enhanced) on one dataset and report
    calibrated test AUC/Logloss.
``compare``
    Train a list of models on one dataset and print a ranked comparison.
``inspect-run``
    Summarise a JSONL run trace written via ``--log-jsonl``.
``export``
    Train a model and freeze it into a serving artifact directory
    (weights + digest-pinned manifest).
``serve``
    Load an artifact and serve ``POST /score`` with micro-batching, an LRU
    row cache, and graceful SIGTERM drain.
``predict``
    Offline scoring: run rows from a JSON file (or a dataset split) through
    the same :class:`~repro.serving.InferenceSession` the server uses.
``bench-serve``
    Drive the engine at a target QPS and print a latency/throughput report.
``bench-ops``
    Microbenchmark the fused array kernels against the reference backend and
    write ``BENCH_ops.json``.
``bench-pipeline``
    Benchmark batch assembly over the sharded on-disk format — sequential
    loader vs. ``PrefetchLoader`` at several worker counts — and write
    ``BENCH_pipeline.json``.
``stream-train``
    Online learning: replay a synthetic click stream through the live
    router, train incrementally with prequential validation, detect drift,
    and auto-promote recovered models into the registry.
``bench-stream``
    Benchmark the streaming loop (windows/sec) and its drift-detection
    latency across scripted scenarios; write ``BENCH_stream.json``.

Every command accepts ``--backend {reference,fused}`` to pick the array-math
backend (default: the ``REPRO_BACKEND`` environment variable, else
``reference``).

``train`` and ``compare`` accept ``--log-jsonl PATH`` (write a
schema-versioned JSONL run trace) and ``--verbose`` (throttled console
progress) — see the Observability section of README.md.

Observability extras:

* ``--trace-jsonl PATH`` (``train``/``serve``/``bench-serve``/
  ``bench-pipeline``) records per-request/per-window **spans**; head
  sampling via ``--trace-sample RATE``; render with
  ``repro inspect-run PATH --spans``.
* ``--profile PATH`` (``train`` and the ``bench-*`` verbs) runs a sampling
  profiler and writes flamegraph-ready collapsed stacks to PATH.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

import numpy as np

from .bench.micro import render_report, run_micro
from .bench.pipeline import render_pipeline_report, run_pipeline_bench
from .bench.stream import SCENARIOS, render_stream_report, run_stream_bench
from .core import MISSConfig, attach_miss
from .data import (
    DATASET_NAMES,
    ShardCorruptError,
    ShardedCTRDataset,
    compute_stats,
    load_dataset,
    make_config,
    write_shards,
)
from .data.analysis import diagnose_world
from .data.synthetic import InterestWorld
from .models import MODEL_NAMES, create_model, supports_miss
from .obs import (
    ConsoleReporter,
    JsonlTraceWriter,
    MetricRegistry,
    ObserverList,
    SamplingProfiler,
    Tracer,
    read_trace,
    render_spans,
    render_stream,
    render_summary,
    set_tracer,
    summarize_spans,
    summarize_stream,
    summarize_trace,
)
from .nn.backend import BACKEND_NAMES, get_backend, set_backend
from .resilience import NumericalAnomalyError, TrainingInterrupted
from .serving import (
    AdmissionController,
    ArtifactError,
    CircuitBreaker,
    InferenceSession,
    ModelRegistry,
    RegistryError,
    RetryPolicy,
    ScoringEngine,
    ScoringServer,
    dataset_rows,
    export_artifact,
    run_http_load,
    run_load,
)
from .data.processing import build_ctr_data
from .serving.router import ModelRouter
from .streaming import (
    ClickStream,
    DriftMonitor,
    IncrementalConfig,
    IncrementalTrainer,
    OnlineLoop,
    PromotionConfig,
    PromotionController,
    StreamConfig,
)
from .training import TrainConfig, Trainer, calibrated_eval, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of MISS (ICDE 2022): multi-interest "
                    "self-supervised learning for CTR prediction.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=list(BACKEND_NAMES), default=None,
                       help="array-math backend (default: $REPRO_BACKEND, "
                            "else 'reference')")

    def add_trace_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-jsonl", metavar="PATH", default=None,
                       help="record spans (per-request / per-window latency "
                            "decomposition) to a JSONL trace; view with "
                            "`repro inspect-run PATH --spans`")
        p.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="head-sampling rate in [0, 1]: keep this "
                            "fraction of traces, whole (default 1.0)")

    def add_profile_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profile", metavar="PATH", default=None,
                       help="sample all threads' stacks while running and "
                            "write flamegraph-ready collapsed stacks to "
                            "PATH")

    datasets = sub.add_parser("datasets", help="describe the simulated worlds")
    datasets.add_argument("--scale", type=float, default=0.3,
                          help="world size multiplier (default 0.3)")
    datasets.add_argument("--seed", type=int, default=0)

    def add_common(p: argparse.ArgumentParser) -> None:
        add_backend(p)
        p.add_argument("--dataset", choices=DATASET_NAMES,
                       default="amazon-cds")
        p.add_argument("--scale", type=float, default=0.4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epochs", type=int, default=12)
        p.add_argument("--learning-rate", type=float, default=1e-2)
        p.add_argument("--alpha", type=float, default=0.5,
                       help="SSL loss weight α1 = α2 for the MISS variant")
        p.add_argument("--temperature", type=float, default=0.1,
                       help="InfoNCE temperature τ for the MISS variant")
        p.add_argument("--batch-size", type=int, default=128, metavar="N",
                       help="training batch size (default 128, the paper's; "
                            "per-rank with --num-procs, so the global batch "
                            "scales with the worker count)")
        p.add_argument("--eval-batch-size", type=int, default=512,
                       metavar="N",
                       help="rows per evaluation forward (default 512; "
                            "metrics are bit-identical for any value)")
        p.add_argument("--log-jsonl", metavar="PATH", default=None,
                       help="write a JSONL run trace to PATH "
                            "(inspect with `repro inspect-run PATH`)")
        p.add_argument("--verbose", action="store_true",
                       help="print throttled per-step/per-epoch progress")
        p.add_argument("--num-workers", type=int, default=0, metavar="N",
                       help="background batch-assembly threads (0 = "
                            "in-line; epoch order and resume stay "
                            "bit-identical for any value)")
        p.add_argument("--prefetch-depth", type=int, default=2, metavar="D",
                       help="batches per worker window when --num-workers "
                            "> 0 (default 2)")
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="on-disk preprocessing cache: reuse processed "
                            "splits keyed by raw-data/config digests")

    train = sub.add_parser("train", help="train one model")
    add_common(train)
    add_trace_options(train)
    add_profile_option(train)
    train.add_argument("--model", choices=MODEL_NAMES, default="DIN")
    train.add_argument("--miss", action="store_true",
                       help="attach the MISS SSL component")
    train.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="write atomic, checksummed run checkpoints to "
                            "DIR (every --checkpoint-every steps and each "
                            "epoch end); SIGINT/SIGTERM then checkpoint and "
                            "exit cleanly")
    train.add_argument("--resume", action="store_true",
                       help="continue from the latest valid checkpoint in "
                            "--checkpoint-dir (bit-identical to an "
                            "uninterrupted run)")
    train.add_argument("--checkpoint-every", type=int, metavar="N",
                       default=200,
                       help="steps between mid-epoch checkpoints "
                            "(default 200; epoch ends always checkpoint)")
    train.add_argument("--keep-checkpoints", type=int, metavar="K", default=3,
                       help="retention: keep the last K checkpoints plus the "
                            "best one (default 3)")
    train.add_argument("--anomaly-guard", action="store_true",
                       help="detect NaN/Inf loss or gradients and loss "
                            "spikes; roll back to the last good checkpoint "
                            "with learning-rate backoff before giving up")
    train.add_argument("--shard-dir", metavar="DIR", default=None,
                       help="train from a sharded on-disk dataset in DIR "
                            "(written on first use; verified by checksum "
                            "on every load)")
    train.add_argument("--num-procs", type=int, metavar="N", default=1,
                       help="data-parallel worker processes (default 1 = "
                            "the plain in-process trainer); each rank owns "
                            "a disjoint shard partition and --batch-size "
                            "is per-rank, so the global batch scales N-fold")
    train.add_argument("--dist-emulate", action="store_true",
                       help="run the --num-procs rank schedule inside one "
                            "process (the bit-identity comparator; no "
                            "checkpointing)")

    compare = sub.add_parser("compare", help="train several models")
    add_common(compare)
    compare.add_argument("--models", nargs="+", default=["DIN", "DeepFM"],
                         choices=list(MODEL_NAMES),
                         help="baselines to run; MISS is attached to the "
                              "first embedding-based one")
    compare.add_argument("--shard-dir", metavar="DIR", default=None,
                         help="train every model from the same sharded "
                              "on-disk dataset in DIR")

    inspect = sub.add_parser("inspect-run",
                             help="summarise a JSONL run trace")
    inspect.add_argument("trace", help="path written via --log-jsonl")
    inspect.add_argument("--spans", action="store_true",
                         help="render span timelines and critical paths "
                              "(traces recorded via --trace-jsonl)")
    inspect.add_argument("--stream", action="store_true",
                         help="render a streaming run: prequential AUC per "
                              "window, drift markers, promotion/rollback "
                              "timeline (traces from `stream-train "
                              "--log-jsonl`)")

    export = sub.add_parser(
        "export", help="train a model and freeze it as a serving artifact")
    add_common(export)
    export.add_argument("--model", choices=MODEL_NAMES, default="DIN")
    export.add_argument("--miss", action="store_true",
                        help="attach the MISS SSL component before training")
    export.add_argument("--out", metavar="DIR", required=True,
                        help="artifact directory to create (manifest.json + "
                             "weights.npz)")

    def add_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--max-batch-size", type=int, default=64, metavar="N",
                       help="micro-batch flush size (default 64)")
        p.add_argument("--max-wait-ms", type=float, default=2.0, metavar="MS",
                       help="max time a request waits for batch-mates "
                            "(default 2ms)")
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="scoring worker threads (default 1)")
        p.add_argument("--cache-size", type=int, default=4096, metavar="N",
                       help="LRU row-cache capacity; 0 disables (default "
                            "4096)")

    serve = sub.add_parser(
        "serve", help="serve POST /score from an exported artifact or a "
                      "model registry")
    add_backend(serve)
    serve.add_argument("--artifact", metavar="DIR", default=None,
                       help="exported artifact directory (or use --registry)")
    serve.add_argument("--registry", metavar="DIR", default=None,
                       help="model registry: serve its production version "
                            "and honour its shadow/challenger roles; "
                            "enables POST /admin/reload by version")
    serve.add_argument("--shadow", metavar="VERSION", default=None,
                       help="score this registry version off the critical "
                            "path for every request (requires --registry)")
    serve.add_argument("--ab", metavar="VERSION:FRACTION", default=None,
                       help="A/B-route FRACTION of requests to this "
                            "registry version (requires --registry)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (0 picks a free one; default 8321)")
    add_engine_options(serve)
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="admission control: shed (429 + Retry-After) "
                            "when more than N rows are in flight "
                            "(default: unbounded)")
    serve.add_argument("--request-timeout-s", type=float, default=30.0,
                       metavar="S",
                       help="server-side cap on one request's end-to-end "
                            "budget; X-Deadline-Ms can only shorten it "
                            "(default 30)")
    serve.add_argument("--breaker-threshold", type=float, default=None,
                       metavar="F",
                       help="enable the circuit breaker: trip to a "
                            "degraded 503 /healthz when the failure "
                            "fraction over the window reaches F")
    serve.add_argument("--breaker-window-s", type=float, default=10.0,
                       metavar="S", help="breaker sliding window "
                                         "(default 10s)")
    serve.add_argument("--breaker-cooldown-s", type=float, default=5.0,
                       metavar="S", help="breaker open-state cooldown "
                                         "before a probe (default 5s)")
    serve.add_argument("--breaker-min-requests", type=int, default=10,
                       metavar="N", help="minimum outcomes in the window "
                                         "before the breaker may trip "
                                         "(default 10)")
    serve.add_argument("--log-jsonl", metavar="PATH", default=None,
                       help="write serving events (request/batch/completion) "
                            "as a JSONL trace")
    serve.add_argument("--verbose", action="store_true",
                       help="print per-flush progress lines")
    add_trace_options(serve)

    registry = sub.add_parser(
        "registry", help="manage a versioned model registry "
                         "(publish/promote/shadow/ab/list)")
    registry.add_argument("--registry", metavar="DIR", required=True,
                          help="registry root directory (created on first "
                               "publish)")
    registry_sub = registry.add_subparsers(dest="registry_command",
                                           required=True)
    reg_publish = registry_sub.add_parser(
        "publish", help="copy + verify an exported artifact into the "
                        "registry as an immutable version")
    reg_publish.add_argument("--artifact", metavar="DIR", required=True)
    reg_publish.add_argument("--version", metavar="V", default=None,
                             help="version name (default: next vN)")
    reg_publish.add_argument("--promote", action="store_true",
                             help="also make it the production version")
    reg_promote = registry_sub.add_parser(
        "promote", help="make a published version the production model")
    reg_promote.add_argument("--version", metavar="V", required=True)
    reg_shadow = registry_sub.add_parser(
        "shadow", help="set (or clear) the shadow version")
    reg_shadow.add_argument("--version", metavar="V", default=None,
                            help="omit to clear the shadow role")
    reg_ab = registry_sub.add_parser(
        "ab", help="set (or clear) the A/B challenger and its traffic "
                   "fraction")
    reg_ab.add_argument("--version", metavar="V", default=None,
                        help="omit to clear the challenger role")
    reg_ab.add_argument("--fraction", type=float, default=0.1,
                        help="fraction of requests routed to the "
                             "challenger (default 0.1)")
    registry_sub.add_parser("list", help="print versions and role state")

    predict = sub.add_parser(
        "predict", help="score rows offline through the serving session")
    add_backend(predict)
    predict.add_argument("--artifact", metavar="DIR", required=True)
    source = predict.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", metavar="FILE",
                        help="JSON file: {\"rows\": [...]} or a bare list "
                             "of row objects")
    source.add_argument("--dataset", choices=DATASET_NAMES,
                        help="score a simulated dataset split instead of a "
                             "file")
    predict.add_argument("--split", choices=["train", "validation", "test"],
                         default="test")
    predict.add_argument("--scale", type=float, default=0.4)
    predict.add_argument("--seed", type=int, default=0)
    predict.add_argument("--limit", type=int, default=None, metavar="N",
                         help="score only the first N rows")
    predict.add_argument("--output", metavar="FILE", default=None,
                         help="write the JSON result here instead of stdout")

    bench_serve = sub.add_parser(
        "bench-serve", help="load-test the scoring engine at a target QPS")
    add_backend(bench_serve)
    bench_serve.add_argument("--artifact", metavar="DIR", required=True)
    bench_serve.add_argument("--dataset", choices=DATASET_NAMES,
                             default="amazon-cds",
                             help="source of request rows")
    bench_serve.add_argument("--split",
                             choices=["train", "validation", "test"],
                             default="test")
    bench_serve.add_argument("--scale", type=float, default=0.4)
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--qps", type=float, default=200.0,
                             help="target request rate (default 200)")
    bench_serve.add_argument("--requests", type=int, default=1000,
                             help="total requests to send (default 1000)")
    bench_serve.add_argument("--repeat-fraction", type=float, default=0.2,
                             help="fraction of re-sent rows, to exercise "
                                  "the cache (default 0.2)")
    bench_serve.add_argument("--reload-under-load", action="store_true",
                             help="fleet scenario: drive a live HTTP server "
                                  "and hot-swap the model --swaps times "
                                  "mid-run; the report must show zero "
                                  "dropped and zero 5xx responses")
    bench_serve.add_argument("--swaps", type=int, default=3, metavar="N",
                             help="hot-swap reloads during "
                                  "--reload-under-load (default 3)")
    add_engine_options(bench_serve)
    add_trace_options(bench_serve)
    add_profile_option(bench_serve)

    bench_ops = sub.add_parser(
        "bench-ops",
        help="microbenchmark fused kernels vs. the reference backend")
    bench_ops.add_argument("--repeats", type=int, default=20, metavar="N",
                           help="timing repetitions per kernel/backend "
                                "(best-of-N; default 20)")
    bench_ops.add_argument("--seed", type=int, default=0)
    bench_ops.add_argument("--out", metavar="FILE", default="BENCH_ops.json",
                           help="JSON report path (default BENCH_ops.json)")
    add_profile_option(bench_ops)

    bench_pipe = sub.add_parser(
        "bench-pipeline",
        help="benchmark sequential vs. prefetching batch assembly over the "
             "sharded on-disk format")
    bench_pipe.add_argument("--dataset", choices=DATASET_NAMES,
                            default="amazon-cds")
    bench_pipe.add_argument("--scale", type=float, default=0.4)
    bench_pipe.add_argument("--seed", type=int, default=0)
    bench_pipe.add_argument("--rows", type=int, default=16384, metavar="N",
                            help="train split is tiled to ~N rows so the "
                                 "shard set exceeds any cache (default "
                                 "16384)")
    bench_pipe.add_argument("--batch-size", type=int, default=256,
                            metavar="B")
    bench_pipe.add_argument("--shard-size", type=int, default=512,
                            metavar="R", help="rows per shard (default 512)")
    bench_pipe.add_argument("--prefetch-depth", type=int, default=8,
                            metavar="D",
                            help="batches per worker window (default 8)")
    bench_pipe.add_argument("--workers", type=int, nargs="+",
                            default=[1, 2, 4], metavar="N",
                            help="prefetch worker counts to time "
                                 "(default 1 2 4)")
    bench_pipe.add_argument("--repeats", type=int, default=3, metavar="N",
                            help="epochs per configuration, best-of-N "
                                 "(default 3)")
    bench_pipe.add_argument("--out", metavar="FILE",
                            default="BENCH_pipeline.json",
                            help="JSON report path "
                                 "(default BENCH_pipeline.json)")
    add_trace_options(bench_pipe)
    add_profile_option(bench_pipe)

    bench_dist = sub.add_parser(
        "bench-distributed",
        help="benchmark data-parallel training throughput at several "
             "worker counts and assert process-vs-emulation bit-identity")
    bench_dist.add_argument("--dataset", choices=DATASET_NAMES,
                            default="amazon-cds")
    bench_dist.add_argument("--scale", type=float, default=0.4)
    bench_dist.add_argument("--seed", type=int, default=0)
    bench_dist.add_argument("--rows", type=int, default=8192, metavar="N",
                            help="train split is tiled to ~N rows "
                                 "(default 8192)")
    bench_dist.add_argument("--num-shards", type=int, default=8, metavar="S",
                            help="training shard count; partitions must "
                                 "cover it (default 8)")
    bench_dist.add_argument("--batch-size", type=int, default=64,
                            metavar="B", help="per-rank micro-batch "
                                              "(default 64)")
    bench_dist.add_argument("--epochs", type=int, default=2,
                            help="epochs per configuration; the best "
                                 "epoch's step loop is scored (default 2)")
    bench_dist.add_argument("--procs", type=int, nargs="+",
                            default=[1, 2, 4], metavar="N",
                            help="worker counts to time (default 1 2 4; "
                                 "must include 1)")
    bench_dist.add_argument("--out", metavar="FILE",
                            default="BENCH_distributed.json",
                            help="JSON report path "
                                 "(default BENCH_distributed.json)")

    stream = sub.add_parser(
        "stream-train",
        help="online learning over a synthetic click stream: serve through "
             "the live router, train incrementally, detect drift, "
             "auto-promote")
    add_backend(stream)
    stream.add_argument("--registry", metavar="DIR", required=True,
                        help="model registry: warm-start from its "
                             "production version and publish candidates "
                             "back into it")
    stream.add_argument("--bootstrap-epochs", type=int, default=0,
                        metavar="N",
                        help="when the registry has no production model, "
                             "train one offline for N epochs, publish and "
                             "promote it first (0 = require an existing "
                             "production version)")
    stream.add_argument("--model", choices=MODEL_NAMES, default="DIN",
                        help="model for --bootstrap-epochs (default DIN)")
    stream.add_argument("--dataset", choices=DATASET_NAMES,
                        default="amazon-cds")
    stream.add_argument("--scale", type=float, default=0.2)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--windows", type=int, default=30, metavar="N",
                        help="stream length in micro-batch windows "
                             "(default 30)")
    stream.add_argument("--impressions", type=int, default=64, metavar="N",
                        help="impressions per window; rows = 2x (default 64)")
    stream.add_argument("--stream-seed", type=int, default=11)
    stream.add_argument("--drift-window", type=int, default=None,
                        metavar="W",
                        help="resample interests for --drift-fraction of "
                             "users at window W")
    stream.add_argument("--drift-fraction", type=float, default=0.5)
    stream.add_argument("--cold-fraction", type=float, default=0.0,
                        help="hold out this fraction of users to arrive "
                             "cold during the stream")
    stream.add_argument("--cold-start-window", type=int, default=0)
    stream.add_argument("--cold-per-window", type=int, default=2)
    stream.add_argument("--cold-activity", type=float, default=1.0,
                        help="impression weight of a newly arrived user vs. "
                             "a warm one (default 1.0)")
    stream.add_argument("--noise-rate", type=float, default=0.0,
                        help="base label flip rate")
    stream.add_argument("--noise-burst", metavar="START:END", default=None,
                        help="window interval with the flip rate raised to "
                             "--noise-burst-rate")
    stream.add_argument("--noise-burst-rate", type=float, default=0.35)
    stream.add_argument("--learning-rate", type=float, default=5e-3)
    stream.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="checkpoint the incremental trainer after "
                             "every window")
    stream.add_argument("--resume", action="store_true",
                        help="continue from the latest window checkpoint in "
                             "--checkpoint-dir")
    stream.add_argument("--export-every", type=int, default=10, metavar="K",
                        help="publish a challenger every K windows; 0 "
                             "disables scheduled exports (drift recovery "
                             "still exports; default 10)")
    stream.add_argument("--export-dir", metavar="DIR", default=None,
                        help="where candidate artifacts are exported "
                             "(default: a temporary directory)")
    stream.add_argument("--log-jsonl", metavar="PATH", default=None,
                        help="write stream_window/drift_detected/promotion "
                             "events; view with `repro inspect-run PATH "
                             "--stream`")
    stream.add_argument("--verbose", action="store_true",
                        help="print per-window progress lines")
    add_trace_options(stream)
    add_profile_option(stream)

    bench_stream = sub.add_parser(
        "bench-stream",
        help="benchmark the streaming loop: throughput and drift-detection "
             "latency per scenario")
    bench_stream.add_argument("--scenarios", nargs="+",
                              default=list(SCENARIOS),
                              choices=list(SCENARIOS),
                              help="scenarios to run (default: all)")
    bench_stream.add_argument("--seed", type=int, default=0)
    bench_stream.add_argument("--windows", type=int, default=26, metavar="N")
    bench_stream.add_argument("--impressions", type=int, default=100,
                              metavar="N")
    bench_stream.add_argument("--epochs", type=int, default=10, metavar="N",
                              help="offline bootstrap epochs (default 10)")
    bench_stream.add_argument("--out", metavar="FILE",
                              default="BENCH_stream.json",
                              help="JSON report path "
                                   "(default BENCH_stream.json)")
    add_profile_option(bench_stream)
    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'Dataset':<14}{'#Users':>8}{'#Items':>8}{'#Fields':>9}"
          f"{'closeness':>11}{'recurrence':>12}{'med.freq':>10}")
    for name in DATASET_NAMES:
        data = load_dataset(name, scale=args.scale, seed=args.seed)
        stats = compute_stats(data)
        world = InterestWorld(make_config(name, scale=args.scale,
                                          seed=args.seed))
        diag = diagnose_world(world)
        print(f"{name:<14}{stats.num_users:>8}{stats.num_items:>8}"
              f"{stats.num_fields:>9}{diag.closeness:>11.3f}"
              f"{diag.recurrence:>12.3f}{diag.item_frequency_median:>10.1f}")
    return 0


def _build_observers(args: argparse.Namespace) -> ObserverList:
    """Sinks requested on the command line (empty list disables telemetry)."""
    observers = ObserverList()
    if args.log_jsonl:
        try:
            observers.append(JsonlTraceWriter(args.log_jsonl))
        except OSError as exc:
            raise SystemExit(f"--log-jsonl: cannot open {args.log_jsonl}: "
                             f"{exc.strerror or exc}")
    if args.verbose:
        observers.append(ConsoleReporter())
    return observers


def _close_observers(observers: ObserverList) -> None:
    for obs in observers.observers:
        if isinstance(obs, JsonlTraceWriter):
            obs.close()


def _build_tracer(args: argparse.Namespace,
                  observers: ObserverList | None = None):
    """(tracer, writer-to-close) for ``--trace-jsonl``.

    When the span path equals ``--log-jsonl``'s, the existing writer is
    shared (spans are additive events in the same schema), and the caller
    must not close it twice — hence the second element is ``None`` then.
    """
    path = getattr(args, "trace_jsonl", None)
    if not path:
        return None, None
    sink = None
    if observers is not None:
        for obs in observers.observers:
            if isinstance(obs, JsonlTraceWriter) and obs.path == path:
                sink = obs
                break
    owned = None
    if sink is None:
        try:
            sink = owned = JsonlTraceWriter(path)
        except OSError as exc:
            raise SystemExit(f"--trace-jsonl: cannot open {path}: "
                             f"{exc.strerror or exc}")
    try:
        tracer = Tracer(sink, sample_rate=args.trace_sample)
    except ValueError as exc:
        if owned is not None:
            owned.close()
        raise SystemExit(f"--trace-sample: {exc}")
    return tracer, owned


@contextmanager
def _maybe_profile(args: argparse.Namespace):
    """Run the block under a sampling profiler when ``--profile`` was given;
    write collapsed stacks on exit."""
    path = getattr(args, "profile", None)
    if not path:
        yield None
        return
    profiler = SamplingProfiler()
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        profiler.write_collapsed(path)
        print(f"profile: {profiler.summary()}", file=sys.stderr)
        print(f"collapsed stacks written to {path} "
              f"(flamegraph.pl-compatible)", file=sys.stderr)


def _build_model(model_name: str, args: argparse.Namespace, data,
                 miss: bool):
    """(model, display label, MISS config or None) for one training run."""
    model = create_model(model_name, data.schema, seed=args.seed + 1)
    if not miss:
        return model, model_name, None
    miss_config = MISSConfig(
        alpha_interest=args.alpha,
        alpha_feature=args.alpha,
        temperature=args.temperature,
        seed=args.seed + 2)
    return (attach_miss(model, miss_config), f"{model_name}-MISS",
            miss_config)


def _prepare_shards(args: argparse.Namespace, data):
    """Open (or first write) the sharded training split for ``--shard-dir``.

    Returns ``None`` when sharding is not requested, else a
    checksum-verified :class:`ShardedCTRDataset` whose schema must match the
    freshly processed data — a stale directory from another dataset/scale
    fails loudly instead of training on the wrong rows.
    """
    if not getattr(args, "shard_dir", None):
        return None
    directory = Path(args.shard_dir)
    if not (directory / "index.json").exists():
        write_shards(data.train, directory)
        print(f"wrote training shards to {directory}")
    try:
        sharded = ShardedCTRDataset(directory, cache_shards=8)
    except ShardCorruptError as exc:
        raise SystemExit(f"--shard-dir: {exc}")
    if sharded.schema != data.schema:
        raise SystemExit(
            f"--shard-dir: {directory} holds shards for schema "
            f"{sharded.schema.name!r}, which does not match the requested "
            f"dataset; point at an empty directory to (re)shard")
    if len(sharded) != len(data.train):
        raise SystemExit(
            f"--shard-dir: {directory} holds {len(sharded)} rows but the "
            f"processed train split has {len(data.train)}; point at an "
            f"empty directory to (re)shard")
    return sharded


def _train_one(model_name: str, args: argparse.Namespace, data,
               miss: bool = False, observers: ObserverList | None = None,
               train=None):
    model, label, _ = _build_model(model_name, args, data, miss)
    config = TrainConfig(epochs=args.epochs, learning_rate=args.learning_rate,
                         weight_decay=1e-5, patience=4, seed=args.seed,
                         batch_size=getattr(args, "batch_size", 128),
                         eval_batch_size=args.eval_batch_size,
                         num_workers=args.num_workers,
                         prefetch_depth=args.prefetch_depth)
    # Resilience flags exist on the `train` subcommand only; `compare` runs
    # several models into one directory-less session.
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    result = run_experiment(model, data, config, model_name=label,
                            train=train,
                            observers=observers,
                            checkpoint_dir=checkpoint_dir,
                            resume=getattr(args, "resume", False),
                            checkpoint_every=(getattr(args,
                                                      "checkpoint_every",
                                                      None)
                                              if checkpoint_dir else None),
                            keep_checkpoints=getattr(args,
                                                     "keep_checkpoints", 3),
                            anomaly_guard=getattr(args, "anomaly_guard",
                                                  False))
    return result


def _train_distributed(args: argparse.Namespace, data) -> int:
    from dataclasses import asdict

    from .distributed import DistSpec, DistributedRunError, \
        prepare_dist_data, run_distributed

    if args.num_procs < 1:
        raise SystemExit("--num-procs must be >= 1")
    if args.anomaly_guard:
        raise SystemExit("--anomaly-guard is not supported with --num-procs "
                         "> 1 (the guard's rollback protocol is "
                         "single-process)")
    if args.num_workers > 0:
        raise SystemExit("--num-workers prefetching and --num-procs are "
                         "mutually exclusive; ranks already overlap I/O")
    if args.dist_emulate and (args.resume or args.checkpoint_dir):
        raise SystemExit("--dist-emulate runs start-to-finish without "
                         "checkpoints; drop --resume/--checkpoint-dir or "
                         "use process mode")
    base = Path(args.shard_dir) if args.shard_dir else \
        Path(tempfile.mkdtemp(prefix="repro-dist-data-"))
    # Size shards so every rank owns several (partition granularity AND the
    # cache-locality win need shard count >= a few multiples of world size).
    target_shards = max(8, args.num_procs * 4)
    shard_size = max(1, -(-len(data.train) // target_shards))
    train_dir, val_dir = prepare_dist_data(data.train, data.validation, base,
                                           shard_size=shard_size)
    miss_config = None
    if args.miss:
        miss_config = MISSConfig(alpha_interest=args.alpha,
                                 alpha_feature=args.alpha,
                                 temperature=args.temperature,
                                 seed=args.seed + 2)
    spec = DistSpec(
        model_name=args.model,
        miss=asdict(miss_config) if miss_config is not None else None,
        model_seed=args.seed + 1,
        backend=get_backend().name,
        train_dir=str(train_dir), val_dir=str(val_dir),
        config=dict(epochs=args.epochs, learning_rate=args.learning_rate,
                    weight_decay=1e-5, patience=4, seed=args.seed,
                    batch_size=args.batch_size,
                    eval_batch_size=args.eval_batch_size),
        world_size=args.num_procs,
        cache_shards=8,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=(args.checkpoint_every if args.checkpoint_dir
                          else None),
        keep_checkpoints=args.keep_checkpoints,
        log_jsonl=args.log_jsonl)
    try:
        result = run_distributed(spec, resume=args.resume,
                                 emulate=args.dist_emulate)
    except DistributedRunError as exc:
        print(f"train: {exc}", file=sys.stderr)
        if args.checkpoint_dir:
            print("train: rerun with --resume to continue bit-identically",
                  file=sys.stderr)
        return 1
    # Load the selected weights into a fresh model for the calibrated
    # test-split evaluation every training entry point reports.
    from .distributed import build_model
    model = build_model(spec, data.schema)
    model.load_state_dict(result.final_state)
    model.eval()
    validation, test = calibrated_eval(model, data,
                                       batch_size=args.eval_batch_size)
    label = f"{args.model}-MISS" if args.miss else args.model
    mode = result.mode if result.mode != "process" else \
        f"{result.world_size} procs"
    print(f"{label} on {args.dataset} [{mode}]: best epoch "
          f"{result.best_epoch}, {result.steps} steps, "
          f"wall {result.wall_time_s:.1f}s")
    print(f"{label} on {args.dataset}: test {test}")
    if args.log_jsonl:
        print(f"per-rank traces written to {args.log_jsonl}.rank<r>")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                        cache_dir=args.cache_dir)
    if args.num_procs > 1 or args.dist_emulate:
        return _train_distributed(args, data)
    observers = _build_observers(args)
    tracer, owned_writer = _build_tracer(args, observers)
    if tracer is not None:
        set_tracer(tracer)  # PrefetchLoader picks it up via get_tracer()
    try:
        with _maybe_profile(args):
            result = _train_one(args.model, args, data, miss=args.miss,
                                observers=observers,
                                train=_prepare_shards(args, data))
    except TrainingInterrupted as exc:
        print(f"train: {exc}", file=sys.stderr)
        if exc.checkpoint is not None:
            print("train: rerun with --resume to continue bit-identically",
                  file=sys.stderr)
        return exc.exit_code
    except NumericalAnomalyError as exc:
        print(f"train: numerical anomaly not recoverable: {exc}",
              file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            set_tracer(None)
        if owned_writer is not None:
            owned_writer.close()
        _close_observers(observers)
    print(f"{result.model_name} on {args.dataset}: test {result.test}")
    if args.log_jsonl:
        print(f"run trace written to {args.log_jsonl}")
    if args.trace_jsonl:
        print(f"span trace written to {args.trace_jsonl} "
              f"(view: repro inspect-run {args.trace_jsonl} --spans)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                        cache_dir=args.cache_dir)
    observers = _build_observers(args)
    shards = _prepare_shards(args, data)
    try:
        results = [_train_one(name, args, data, observers=observers,
                              train=shards)
                   for name in args.models]
        # Add the MISS-enhanced variant of the first model that can host the
        # plug-in (explicit capability check: MISS needs a shared embedder).
        for name in args.models:
            if supports_miss(name):
                results.append(_train_one(name, args, data, miss=True,
                                          observers=observers, train=shards))
                break
    finally:
        _close_observers(observers)
    results.sort(key=lambda r: r.auc, reverse=True)
    print(f"{'Model':<16}{'AUC':>9}{'Logloss':>10}")
    for result in results:
        print(f"{result.model_name:<16}{result.auc:>9.4f}"
              f"{result.logloss:>10.4f}")
    return 0


def _cmd_inspect_run(args: argparse.Namespace) -> int:
    try:
        if args.stream:
            print(render_stream(summarize_stream(read_trace(args.trace))))
        elif args.spans:
            trees = summarize_spans(read_trace(args.trace))
            print(render_spans(trees))
        else:
            print(render_summary(summarize_trace(args.trace)))
    except (OSError, ValueError) as exc:
        print(f"inspect-run: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                        cache_dir=args.cache_dir)
    model, label, miss_config = _build_model(args.model, args, data,
                                             miss=args.miss)
    config = TrainConfig(epochs=args.epochs, learning_rate=args.learning_rate,
                         weight_decay=1e-5, patience=4, seed=args.seed,
                         eval_batch_size=args.eval_batch_size,
                         num_workers=args.num_workers,
                         prefetch_depth=args.prefetch_depth)
    observers = _build_observers(args)
    try:
        result = run_experiment(model, data, config, model_name=label,
                                observers=observers)
    finally:
        _close_observers(observers)
    # ``run_experiment`` leaves the best-epoch weights loaded in ``model``;
    # that is exactly the state worth freezing.
    path = export_artifact(model, args.out, model_name=args.model,
                           miss_config=miss_config, metadata={
                               "label": label,
                               "dataset": args.dataset,
                               "scale": args.scale,
                               "seed": args.seed,
                               "epochs": args.epochs,
                               "test_auc": result.test.auc,
                               "test_logloss": result.test.logloss,
                           })
    print(f"{label} on {args.dataset}: test {result.test}")
    print(f"artifact written to {path}")
    return 0


def _load_session(artifact: str) -> InferenceSession:
    try:
        return InferenceSession.load(artifact)
    except (ArtifactError, OSError) as exc:
        raise SystemExit(f"cannot load artifact {artifact}: {exc}")


def _parse_ab(value: str) -> tuple[str, float]:
    version, sep, fraction = value.partition(":")
    if not sep or not version:
        raise SystemExit("--ab expects VERSION:FRACTION, e.g. v2:0.1")
    try:
        return version, float(fraction)
    except ValueError:
        raise SystemExit(f"--ab fraction {fraction!r} is not a number")


def _cmd_serve(args: argparse.Namespace) -> int:
    if (args.artifact is None) == (args.registry is None):
        raise SystemExit("serve: pass exactly one of --artifact or "
                         "--registry")
    if (args.shadow or args.ab) and not args.registry:
        raise SystemExit("serve: --shadow/--ab need --registry (roles name "
                         "registry versions)")
    model_registry = None
    version = "v0"
    if args.registry:
        model_registry = ModelRegistry(args.registry)
        try:
            version = model_registry.production()
            session = _load_session(model_registry.path(version))
        except RegistryError as exc:
            raise SystemExit(f"serve: {exc}")
    else:
        session = _load_session(args.artifact)
    admission = (AdmissionController(args.max_inflight)
                 if args.max_inflight else None)
    breaker = None
    if args.breaker_threshold is not None:
        breaker = CircuitBreaker(failure_threshold=args.breaker_threshold,
                                 min_requests=args.breaker_min_requests,
                                 window_s=args.breaker_window_s,
                                 cooldown_s=args.breaker_cooldown_s)
    observers = _build_observers(args)
    tracer, owned_writer = _build_tracer(args, observers)
    server = ScoringServer(
        session, host=args.host, port=args.port,
        max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms,
        num_workers=args.workers, cache_size=args.cache_size,
        registry=MetricRegistry(), observers=observers.observers,
        tracer=tracer, version=version, admission=admission,
        breaker=breaker, model_registry=model_registry,
        request_timeout_s=args.request_timeout_s)
    if model_registry is not None:
        state = model_registry.state()
        shadow = args.shadow or state.get("shadow")
        if shadow:
            server.router.set_shadow(
                _load_session(model_registry.path(shadow)), shadow)
        if args.ab:
            challenger, fraction = _parse_ab(args.ab)
        else:
            challenger = state.get("challenger")
            fraction = state.get("challenger_fraction", 0.0)
        if challenger:
            server.router.set_challenger(
                _load_session(model_registry.path(challenger)), challenger,
                fraction)
    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    previous = {sig: signal.signal(sig, request_stop)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    server.start()
    print(f"serving {session.model_name} at {server.url} "
          f"(batch<= {args.max_batch_size}, wait<= {args.max_wait_ms}ms, "
          f"workers={args.workers}, cache={args.cache_size})")
    sys.stdout.flush()
    try:
        stop.wait()
        print("shutdown requested; draining in-flight requests...",
              file=sys.stderr)
        server.close(drain=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if owned_writer is not None:
            owned_writer.close()
        _close_observers(observers)
    print("drained; bye", file=sys.stderr)
    return 0


def _read_rows_file(path: str) -> list:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"predict: cannot read {path}: {exc}")
    rows = payload.get("rows") if isinstance(payload, dict) else payload
    if not isinstance(rows, list) or not rows:
        raise SystemExit(
            'predict: input must be {"rows": [...]} or a non-empty list')
    return rows


def _cmd_predict(args: argparse.Namespace) -> int:
    session = _load_session(args.artifact)
    if args.input:
        rows = _read_rows_file(args.input)
        if args.limit is not None:
            rows = rows[:args.limit]
        try:
            logits = session.score_rows(rows)
        except ValueError as exc:
            raise SystemExit(f"predict: {exc}")
    else:
        data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        split = data.splits[args.split]
        if args.limit is not None and args.limit < len(split):
            split = split.subset(np.arange(args.limit))
        logits = session.score_batch(split.as_single_batch())
    probs = session.probabilities(logits)
    payload = json.dumps({
        "model": session.model_name,
        "artifact": str(args.artifact),
        "rows": int(logits.shape[0]),
        "logits": [float(v) for v in logits],
        "probabilities": [float(p) for p in probs],
    }, indent=2)
    if args.output:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {logits.shape[0]} scores to {args.output}")
    else:
        print(payload)
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    registry = ModelRegistry(args.registry)
    try:
        if args.registry_command == "publish":
            version = registry.publish(args.artifact, version=args.version,
                                       promote=args.promote)
            role = " (promoted to production)" if args.promote else ""
            print(f"published {args.artifact} as {version}{role}")
        elif args.registry_command == "promote":
            registry.promote(args.version)
            print(f"production is now {args.version}")
        elif args.registry_command == "shadow":
            registry.set_shadow(args.version)
            print(f"shadow is now {args.version or 'cleared'}")
        elif args.registry_command == "ab":
            registry.set_challenger(args.version, args.fraction)
            if args.version:
                print(f"challenger {args.version} takes "
                      f"{args.fraction:.0%} of traffic")
            else:
                print("challenger cleared")
        else:  # list
            state = registry.state()
            print(f"registry {registry.root}")
            print(f"  production: {state.get('production')}")
            print(f"  shadow:     {state.get('shadow')}")
            challenger = state.get("challenger")
            if challenger:
                print(f"  challenger: {challenger} "
                      f"({state.get('challenger_fraction', 0.0):.0%})")
            else:
                print("  challenger: None")
            for version in registry.versions():
                info = registry.describe(version)
                print(f"  {version}: {info['model']} "
                      f"digest={info['digest'][:12]}… "
                      f"dataset={info['dataset']}")
    except (RegistryError, ArtifactError, OSError) as exc:
        print(f"registry: {exc}", file=sys.stderr)
        return 1
    return 0


def _bench_reload_under_load(args: argparse.Namespace, session, rows) -> int:
    """Hot-swap scenario: live HTTP server + open-loop load + N reloads.

    The pass criterion is printed in the report: zero dropped requests and
    zero 5xx responses across every swap — a reload is only a reload if no
    caller can tell when it happened.
    """
    results: dict = {}
    with ScoringServer(session, port=0,
                       max_batch_size=args.max_batch_size,
                       max_wait_ms=args.max_wait_ms,
                       num_workers=args.workers,
                       cache_size=args.cache_size) as server:
        load_report: dict = {}

        def drive() -> None:
            load_report.update(run_http_load(
                server.url, rows, target_qps=args.qps,
                num_requests=args.requests,
                repeat_fraction=args.repeat_fraction, seed=args.seed,
                retry=RetryPolicy(seed=args.seed)))

        loader = threading.Thread(target=drive, name="bench-http-load")
        loader.start()
        duration_s = args.requests / args.qps
        interval_s = duration_s / (args.swaps + 1)
        swaps = []
        for i in range(args.swaps):
            loader.join(timeout=interval_s)
            if not loader.is_alive():
                break
            swap = server.reload(artifact=args.artifact)
            swaps.append(swap)
        loader.join()
        results = {
            "scenario": "reload-under-load",
            "swaps_requested": args.swaps,
            "swaps_completed": len(swaps),
            "swaps": swaps,
            "load": load_report,
            "pass": (len(swaps) >= args.swaps
                     and load_report.get("ok", 0) > 0
                     and load_report.get("dropped") == 0
                     and load_report.get("http_5xx") == 0),
        }
    print(json.dumps(results, indent=2))
    return 0 if results["pass"] else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    session = _load_session(args.artifact)
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    rows = dataset_rows(data.splits[args.split])
    if args.reload_under_load:
        return _bench_reload_under_load(args, session, rows)
    tracer, owned_writer = _build_tracer(args)
    engine = ScoringEngine(
        session, max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms, num_workers=args.workers,
        cache_size=args.cache_size, tracer=tracer)
    try:
        with _maybe_profile(args):
            report = run_load(engine, rows, target_qps=args.qps,
                              num_requests=args.requests,
                              repeat_fraction=args.repeat_fraction,
                              seed=args.seed)
    finally:
        engine.close(drain=True)
        if owned_writer is not None:
            owned_writer.close()
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_ops(args: argparse.Namespace) -> int:
    with _maybe_profile(args):
        payload = run_micro(repeats=args.repeats, seed=args.seed,
                            out_path=args.out)
    print(render_report(payload))
    print(f"report written to {args.out}")
    return 0


def _cmd_bench_pipeline(args: argparse.Namespace) -> int:
    tracer, owned_writer = _build_tracer(args)
    if tracer is not None:
        set_tracer(tracer)  # PrefetchLoader workers emit pipeline.window
    try:
        with _maybe_profile(args):
            payload = run_pipeline_bench(
                dataset=args.dataset, scale=args.scale, seed=args.seed,
                rows=args.rows, batch_size=args.batch_size,
                shard_size=args.shard_size,
                prefetch_depth=args.prefetch_depth,
                worker_counts=tuple(args.workers), repeats=args.repeats,
                out_path=args.out)
    finally:
        if tracer is not None:
            set_tracer(None)
        if owned_writer is not None:
            owned_writer.close()
    print(render_pipeline_report(payload))
    print(f"report written to {args.out}")
    return 0


def _cmd_bench_distributed(args: argparse.Namespace) -> int:
    from .bench.distributed import (
        render_distributed_report,
        run_distributed_bench,
    )
    payload = run_distributed_bench(
        dataset=args.dataset, scale=args.scale, seed=args.seed,
        rows=args.rows, num_shards=args.num_shards,
        batch_size=args.batch_size, epochs=args.epochs,
        proc_counts=tuple(args.procs), out_path=args.out)
    print(render_distributed_report(payload))
    print(f"report written to {args.out}")
    return 0


def _parse_noise_burst(value: str | None) -> tuple[int, int] | None:
    if value is None:
        return None
    start, sep, end = value.partition(":")
    try:
        if not sep:
            raise ValueError
        return int(start), int(end)
    except ValueError:
        raise SystemExit("--noise-burst expects START:END window indices, "
                         "e.g. 10:16")


def _stream_bootstrap(args: argparse.Namespace, registry: ModelRegistry,
                      processed) -> str:
    """Ensure the registry has a production version; returns its name."""
    try:
        return registry.production()
    except RegistryError:
        if args.bootstrap_epochs < 1:
            raise SystemExit(
                f"stream-train: registry {args.registry} has no production "
                f"version; publish one or pass --bootstrap-epochs N")
    model = create_model(args.model, processed.schema, seed=args.seed + 1)
    trainer = Trainer(TrainConfig(epochs=args.bootstrap_epochs,
                                  batch_size=128, seed=args.seed + 1))
    result = trainer.fit(model, processed.train, processed.validation)
    print(f"bootstrap: {args.model} offline validation {result.validation}")
    with tempfile.TemporaryDirectory(prefix="stream-bootstrap-") as tmp:
        artifact = export_artifact(
            model, Path(tmp) / "artifact", model_name=args.model,
            metadata={"dataset": processed.schema.name,
                      "val_auc": result.validation.auc})
        version = registry.publish(artifact, promote=True)
    print(f"bootstrap: published {version} (production)")
    return version


def _cmd_stream_train(args: argparse.Namespace) -> int:
    world = InterestWorld(make_config(args.dataset, scale=args.scale,
                                      seed=args.seed))
    processed = build_ctr_data(world, seed=args.seed + 1)
    try:
        stream_config = StreamConfig(
            num_windows=args.windows,
            impressions_per_window=args.impressions,
            seed=args.stream_seed,
            drift_window=args.drift_window,
            drift_fraction=args.drift_fraction,
            cold_fraction=args.cold_fraction,
            cold_start_window=args.cold_start_window,
            cold_users_per_window=args.cold_per_window,
            cold_activity=args.cold_activity,
            noise_rate=args.noise_rate,
            noise_burst=_parse_noise_burst(args.noise_burst),
            noise_burst_rate=args.noise_burst_rate)
    except ValueError as exc:
        raise SystemExit(f"stream-train: {exc}")
    stream = ClickStream(world, processed, stream_config)
    registry = ModelRegistry(args.registry)
    version = _stream_bootstrap(args, registry, processed)
    observers = _build_observers(args)
    tracer, owned_writer = _build_tracer(args, observers)
    if tracer is not None:
        set_tracer(tracer)

    def factory(session):
        return ScoringEngine(session, max_batch_size=64, max_wait_ms=0.5,
                             num_workers=1, cache_size=0)

    router = ModelRouter(factory)
    router.deploy_primary(_load_session(registry.path(version)), version)
    trainer = IncrementalTrainer.from_artifact(
        registry.path(version),
        IncrementalConfig(learning_rate=args.learning_rate, seed=args.seed),
        checkpoint_dir=args.checkpoint_dir)
    start_window = 0
    if args.resume:
        if not args.checkpoint_dir:
            raise SystemExit("stream-train: --resume requires "
                             "--checkpoint-dir")
        start_window = trainer.resume()
        if start_window:
            print(f"resuming from window {start_window}")
    export_tmp = None
    if args.export_dir is None:
        export_tmp = tempfile.TemporaryDirectory(prefix="stream-exports-")
        export_dir = export_tmp.name
    else:
        export_dir = args.export_dir
    controller = PromotionController(
        registry, router, PromotionConfig(export_every=args.export_every),
        export_dir=export_dir, model_name=args.model,
        observers=observers)
    loop = OnlineLoop(stream, trainer, router, controller,
                      DriftMonitor(), observers=observers)
    try:
        with _maybe_profile(args):
            result = loop.run(start_window=start_window)
    except NumericalAnomalyError as exc:
        print(f"stream-train: numerical anomaly not recoverable: {exc}",
              file=sys.stderr)
        return 1
    finally:
        router.close()
        if tracer is not None:
            set_tracer(None)
        if owned_writer is not None:
            owned_writer.close()
        _close_observers(observers)
        if export_tmp is not None:
            export_tmp.cleanup()
    print(json.dumps(result.summary(), indent=2))
    if args.log_jsonl:
        print(f"stream trace written to {args.log_jsonl} "
              f"(view: repro inspect-run {args.log_jsonl} --stream)")
    return 0 if result.dropped == 0 else 1


def _cmd_bench_stream(args: argparse.Namespace) -> int:
    with _maybe_profile(args):
        payload = run_stream_bench(
            scenarios=tuple(args.scenarios), seed=args.seed,
            windows=args.windows, impressions=args.impressions,
            epochs=args.epochs, out_path=args.out)
    print(render_stream_report(payload))
    print(f"report written to {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        set_backend(args.backend)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "compare": _cmd_compare, "inspect-run": _cmd_inspect_run,
                "export": _cmd_export, "serve": _cmd_serve,
                "predict": _cmd_predict, "registry": _cmd_registry,
                "bench-serve": _cmd_bench_serve,
                "bench-ops": _cmd_bench_ops,
                "bench-pipeline": _cmd_bench_pipeline,
                "bench-distributed": _cmd_bench_distributed,
                "stream-train": _cmd_stream_train,
                "bench-stream": _cmd_bench_stream}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
