"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table III-style statistics and structural diagnostics for the three
    simulated worlds.
``train``
    Train one model (optionally MISS-enhanced) on one dataset and report
    calibrated test AUC/Logloss.
``compare``
    Train a list of models on one dataset and print a ranked comparison.
``inspect-run``
    Summarise a JSONL run trace written via ``--log-jsonl``.

``train`` and ``compare`` accept ``--log-jsonl PATH`` (write a
schema-versioned JSONL run trace) and ``--verbose`` (throttled console
progress) — see the Observability section of README.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import MISSConfig, attach_miss
from .data import DATASET_NAMES, compute_stats, load_dataset, make_config
from .data.analysis import diagnose_world
from .data.synthetic import InterestWorld
from .models import MODEL_NAMES, create_model, supports_miss
from .obs import (
    ConsoleReporter,
    JsonlTraceWriter,
    ObserverList,
    render_summary,
    summarize_trace,
)
from .resilience import NumericalAnomalyError, TrainingInterrupted
from .training import TrainConfig, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of MISS (ICDE 2022): multi-interest "
                    "self-supervised learning for CTR prediction.")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="describe the simulated worlds")
    datasets.add_argument("--scale", type=float, default=0.3,
                          help="world size multiplier (default 0.3)")
    datasets.add_argument("--seed", type=int, default=0)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=DATASET_NAMES,
                       default="amazon-cds")
        p.add_argument("--scale", type=float, default=0.4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epochs", type=int, default=12)
        p.add_argument("--learning-rate", type=float, default=1e-2)
        p.add_argument("--alpha", type=float, default=0.5,
                       help="SSL loss weight α1 = α2 for the MISS variant")
        p.add_argument("--temperature", type=float, default=0.1,
                       help="InfoNCE temperature τ for the MISS variant")
        p.add_argument("--log-jsonl", metavar="PATH", default=None,
                       help="write a JSONL run trace to PATH "
                            "(inspect with `repro inspect-run PATH`)")
        p.add_argument("--verbose", action="store_true",
                       help="print throttled per-step/per-epoch progress")

    train = sub.add_parser("train", help="train one model")
    add_common(train)
    train.add_argument("--model", choices=MODEL_NAMES, default="DIN")
    train.add_argument("--miss", action="store_true",
                       help="attach the MISS SSL component")
    train.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="write atomic, checksummed run checkpoints to "
                            "DIR (every --checkpoint-every steps and each "
                            "epoch end); SIGINT/SIGTERM then checkpoint and "
                            "exit cleanly")
    train.add_argument("--resume", action="store_true",
                       help="continue from the latest valid checkpoint in "
                            "--checkpoint-dir (bit-identical to an "
                            "uninterrupted run)")
    train.add_argument("--checkpoint-every", type=int, metavar="N",
                       default=200,
                       help="steps between mid-epoch checkpoints "
                            "(default 200; epoch ends always checkpoint)")
    train.add_argument("--keep-checkpoints", type=int, metavar="K", default=3,
                       help="retention: keep the last K checkpoints plus the "
                            "best one (default 3)")
    train.add_argument("--anomaly-guard", action="store_true",
                       help="detect NaN/Inf loss or gradients and loss "
                            "spikes; roll back to the last good checkpoint "
                            "with learning-rate backoff before giving up")

    compare = sub.add_parser("compare", help="train several models")
    add_common(compare)
    compare.add_argument("--models", nargs="+", default=["DIN", "DeepFM"],
                         choices=list(MODEL_NAMES),
                         help="baselines to run; MISS is attached to the "
                              "first embedding-based one")

    inspect = sub.add_parser("inspect-run",
                             help="summarise a JSONL run trace")
    inspect.add_argument("trace", help="path written via --log-jsonl")
    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'Dataset':<14}{'#Users':>8}{'#Items':>8}{'#Fields':>9}"
          f"{'closeness':>11}{'recurrence':>12}{'med.freq':>10}")
    for name in DATASET_NAMES:
        data = load_dataset(name, scale=args.scale, seed=args.seed)
        stats = compute_stats(data)
        world = InterestWorld(make_config(name, scale=args.scale,
                                          seed=args.seed))
        diag = diagnose_world(world)
        print(f"{name:<14}{stats.num_users:>8}{stats.num_items:>8}"
              f"{stats.num_fields:>9}{diag.closeness:>11.3f}"
              f"{diag.recurrence:>12.3f}{diag.item_frequency_median:>10.1f}")
    return 0


def _build_observers(args: argparse.Namespace) -> ObserverList:
    """Sinks requested on the command line (empty list disables telemetry)."""
    observers = ObserverList()
    if args.log_jsonl:
        try:
            observers.append(JsonlTraceWriter(args.log_jsonl))
        except OSError as exc:
            raise SystemExit(f"--log-jsonl: cannot open {args.log_jsonl}: "
                             f"{exc.strerror or exc}")
    if args.verbose:
        observers.append(ConsoleReporter())
    return observers


def _close_observers(observers: ObserverList) -> None:
    for obs in observers.observers:
        if isinstance(obs, JsonlTraceWriter):
            obs.close()


def _train_one(model_name: str, args: argparse.Namespace, data,
               miss: bool = False, observers: ObserverList | None = None):
    model = create_model(model_name, data.schema, seed=args.seed + 1)
    label = model_name
    if miss:
        model = attach_miss(model, MISSConfig(
            alpha_interest=args.alpha,
            alpha_feature=args.alpha,
            temperature=args.temperature,
            seed=args.seed + 2))
        label = f"{model_name}-MISS"
    config = TrainConfig(epochs=args.epochs, learning_rate=args.learning_rate,
                         weight_decay=1e-5, patience=4, seed=args.seed)
    # Resilience flags exist on the `train` subcommand only; `compare` runs
    # several models into one directory-less session.
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    return run_experiment(model, data, config, model_name=label,
                          observers=observers,
                          checkpoint_dir=checkpoint_dir,
                          resume=getattr(args, "resume", False),
                          checkpoint_every=(getattr(args, "checkpoint_every",
                                                    None)
                                            if checkpoint_dir else None),
                          keep_checkpoints=getattr(args, "keep_checkpoints",
                                                   3),
                          anomaly_guard=getattr(args, "anomaly_guard", False))


def _cmd_train(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    observers = _build_observers(args)
    try:
        result = _train_one(args.model, args, data, miss=args.miss,
                            observers=observers)
    except TrainingInterrupted as exc:
        print(f"train: {exc}", file=sys.stderr)
        if exc.checkpoint is not None:
            print(f"train: rerun with --resume to continue bit-identically",
                  file=sys.stderr)
        return exc.exit_code
    except NumericalAnomalyError as exc:
        print(f"train: numerical anomaly not recoverable: {exc}",
              file=sys.stderr)
        return 1
    finally:
        _close_observers(observers)
    print(f"{result.model_name} on {args.dataset}: test {result.test}")
    if args.log_jsonl:
        print(f"run trace written to {args.log_jsonl}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    observers = _build_observers(args)
    try:
        results = [_train_one(name, args, data, observers=observers)
                   for name in args.models]
        # Add the MISS-enhanced variant of the first model that can host the
        # plug-in (explicit capability check: MISS needs a shared embedder).
        for name in args.models:
            if supports_miss(name):
                results.append(_train_one(name, args, data, miss=True,
                                          observers=observers))
                break
    finally:
        _close_observers(observers)
    results.sort(key=lambda r: r.auc, reverse=True)
    print(f"{'Model':<16}{'AUC':>9}{'Logloss':>10}")
    for result in results:
        print(f"{result.model_name:<16}{result.auc:>9.4f}"
              f"{result.logloss:>10.4f}")
    return 0


def _cmd_inspect_run(args: argparse.Namespace) -> int:
    try:
        summary = summarize_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"inspect-run: {exc}", file=sys.stderr)
        return 1
    print(render_summary(summary))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "compare": _cmd_compare, "inspect-run": _cmd_inspect_run}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
