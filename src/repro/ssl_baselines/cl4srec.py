"""CL4SRec (Xie et al., 2020): crop / mask / reorder sample-level augmentation.

For each batch two of the three operators are sampled and applied to the
whole behaviour sequence, producing the pair of views that the contrastive
loss pulls together — regardless of how many distinct interests the sequence
contains, which is exactly the failure mode MISS targets.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..nn import Tensor
from .base import SSLBaselineModel

__all__ = ["CL4SRecModel"]


class CL4SRecModel(SSLBaselineModel):
    """Crop/mask/reorder contrastive learning on behaviour sequences."""

    method_name = "CL4SRec"

    def __init__(self, base, alpha: float = 0.3, temperature: float = 0.1,
                 seed: int = 0, crop_ratio: float = 0.6, mask_ratio: float = 0.3,
                 reorder_ratio: float = 0.3):
        super().__init__(base, alpha=alpha, temperature=temperature, seed=seed)
        self.crop_ratio = crop_ratio
        self.mask_ratio = mask_ratio
        self.reorder_ratio = reorder_ratio

    # ------------------------------------------------------------------
    # Operators (each returns a position mask and a position permutation)
    # ------------------------------------------------------------------
    def _crop(self, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Keep a random contiguous span of the valid positions."""
        batch, length = mask.shape
        out = np.zeros_like(mask)
        for b in range(batch):
            valid = np.flatnonzero(mask[b])
            if valid.size == 0:
                continue
            span = max(1, int(round(valid.size * self.crop_ratio)))
            start = int(self._rng.integers(0, valid.size - span + 1))
            out[b, valid[start:start + span]] = True
        return out, np.arange(length)

    def _mask(self, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Drop a random subset of the valid positions."""
        drop = self._rng.random(mask.shape) < self.mask_ratio
        out = mask & ~drop
        # Keep at least one position per row to avoid empty views.
        empty = ~out.any(axis=1) & mask.any(axis=1)
        for b in np.flatnonzero(empty):
            valid = np.flatnonzero(mask[b])
            out[b, valid[int(self._rng.integers(valid.size))]] = True
        return out, np.arange(mask.shape[1])

    def _reorder(self, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shuffle a contiguous span of positions (via position embeddings)."""
        length = mask.shape[1]
        permutation = np.arange(length)
        span = max(2, int(round(length * self.reorder_ratio)))
        start = int(self._rng.integers(0, length - span + 1))
        segment = permutation[start:start + span].copy()
        self._rng.shuffle(segment)
        permutation[start:start + span] = segment
        return mask.copy(), permutation

    def _apply_random_operator(self, batch: Batch, c: Tensor) -> Tensor:
        operators = [self._crop, self._mask, self._reorder]
        op = operators[int(self._rng.integers(len(operators)))]
        position_mask, permutation = op(batch.mask)
        if np.array_equal(permutation, np.arange(batch.mask.shape[1])):
            return self.pooled_view(c, position_mask)
        return self.reordered_view(c, position_mask, permutation)

    def make_views(self, batch: Batch, c: Tensor) -> tuple[Tensor, Tensor]:
        return (self._apply_random_operator(batch, c),
                self._apply_random_operator(batch, c))
