"""Common scaffolding for the competing SSL methods of Table VI.

Each baseline wraps a base CTR model exactly like MISS does (shared embedder,
multi-task loss), but generates its views with *sample-level* augmentation —
the practice whose weaknesses MISS is designed to fix.  Views are pooled over
positions with learnable position embeddings so that order-sensitive
augmentations (reorder, crop) actually change the representation.
"""

from __future__ import annotations

import numpy as np

from ..core.encoders import ViewEncoder
from ..core.losses import info_nce
from ..data.batching import Batch
from ..models.base import DeepCTRModel
from ..nn import Parameter, Tensor, init

__all__ = ["SSLBaselineModel"]


class SSLBaselineModel(DeepCTRModel):
    """Base-model wrapper with a sample-level contrastive auxiliary loss."""

    method_name = "ssl"

    def __init__(self, base: DeepCTRModel, alpha: float = 0.3,
                 temperature: float = 0.1, seed: int = 0,
                 encoder_sizes: tuple[int, ...] = (20, 20)):
        super(DeepCTRModel, self).__init__(base.schema)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.base = base
        self.embedder = base.embedder
        self.embedding_dim = base.embedding_dim
        self.alpha = alpha
        self.temperature = temperature
        rng = np.random.default_rng(seed)
        self._rng = np.random.default_rng(seed + 1)
        width = base.schema.num_sequential * base.embedding_dim
        self.encoder = ViewEncoder(width, encoder_sizes, rng)
        self.position = Parameter(init.normal(
            (base.schema.max_seq_len, base.embedding_dim), rng, std=0.01))

    # ------------------------------------------------------------------
    # Shared utilities
    # ------------------------------------------------------------------
    def pooled_view(self, c: Tensor, position_mask: np.ndarray) -> Tensor:
        """Pool ``C (B,J,L,K)`` over the selected positions → ``(B, J·K)``.

        ``position_mask`` is ``(B, L)``; position embeddings are added before
        pooling so permutations of the kept positions change the result.
        """
        weights = position_mask.astype(np.float64)
        denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
        pos = self.position.expand_dims(0).expand_dims(0)  # (1,1,L,K)
        enriched = c + pos
        pooled = (enriched * Tensor((weights / denom)[:, None, :, None])).sum(axis=2)
        return pooled.flatten_from(1)

    def reordered_view(self, c: Tensor, position_mask: np.ndarray,
                       permutation: np.ndarray) -> Tensor:
        """Like :meth:`pooled_view` but with positions permuted first."""
        weights = position_mask.astype(np.float64)
        denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
        pos = Tensor(self.position.data[permutation]).expand_dims(0).expand_dims(0)
        enriched = c + pos
        pooled = (enriched * Tensor((weights / denom)[:, None, :, None])).sum(axis=2)
        return pooled.flatten_from(1)

    # ------------------------------------------------------------------
    # The multi-task objective
    # ------------------------------------------------------------------
    def make_views(self, batch: Batch, c: Tensor) -> tuple[Tensor, Tensor]:
        """Produce the two augmented views; implemented per method."""
        raise NotImplementedError

    def ssl_loss(self, batch: Batch) -> Tensor:
        c = self.embedder.sequence_embeddings(batch)
        view1, view2 = self.make_views(batch, c)
        z1, z2 = self.encoder.encode_pair(view1, view2)
        return info_nce(z1, z2, self.temperature)

    def predict_logits(self, batch: Batch) -> Tensor:
        return self.base.predict_logits(batch)

    def training_loss(self, batch: Batch) -> Tensor:
        return self.base.training_loss(batch) + self.alpha * self.ssl_loss(batch)

    def named_parameters(self, prefix: str = ""):
        seen: set[int] = set()
        for name, p in super().named_parameters(prefix=prefix):
            if id(p) in seen:
                continue
            seen.add(id(p))
            yield name, p
