"""Competing SSL enhancement methods (Table VI): Rule, IRSSL, S3Rec, CL4SRec."""

from typing import Callable

from ..models.base import DeepCTRModel
from .base import SSLBaselineModel
from .cl4srec import CL4SRecModel
from .irssl import IRSSLModel
from .rule import RuleSSLModel
from .s3rec import S3RecModel

__all__ = [
    "SSLBaselineModel", "CL4SRecModel", "IRSSLModel", "RuleSSLModel",
    "S3RecModel", "SSL_METHODS", "attach_ssl_baseline",
]

SSL_METHODS: dict[str, Callable[..., SSLBaselineModel]] = {
    "Rule": RuleSSLModel,
    "IRSSL": IRSSLModel,
    "S3Rec": S3RecModel,
    "CL4SRec": CL4SRecModel,
}


def attach_ssl_baseline(method: str, base: DeepCTRModel, alpha: float = 0.3,
                        temperature: float = 0.1, seed: int = 0) -> SSLBaselineModel:
    """Wrap ``base`` with the named SSL method, e.g. ``"CL4SRec"``."""
    if method not in SSL_METHODS:
        raise KeyError(f"unknown SSL method {method!r}; "
                       f"choose from {tuple(SSL_METHODS)}")
    return SSL_METHODS[method](base, alpha=alpha, temperature=temperature, seed=seed)
