"""The rule-based SSL baseline of Table VI.

Segments each behaviour sequence by *item category* — a hand-crafted proxy
for interests — and contrasts two dropout views of one category segment.
Works well when categories track interests (Amazon-Books in the paper) and
poorly when they do not; in our simulator the category → topic mapping is
many-to-one with configurable noise, reproducing that sensitivity.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..nn import Tensor
from ..nn import functional as F
from .base import SSLBaselineModel

__all__ = ["RuleSSLModel"]


class RuleSSLModel(SSLBaselineModel):
    """Category-segmented dropout contrastive learning."""

    method_name = "Rule"

    def __init__(self, base, alpha: float = 0.3, temperature: float = 0.1,
                 seed: int = 0, dropout_rate: float = 0.2,
                 category_field: str = "cate_seq"):
        super().__init__(base, alpha=alpha, temperature=temperature, seed=seed)
        self.dropout_rate = dropout_rate
        self.category_field = category_field

    def _category_segment(self, batch: Batch) -> np.ndarray:
        """Positions belonging to one randomly chosen category per row."""
        j = self.schema.sequential_index(self.category_field)
        categories = batch.sequences[:, j, :]
        segment = np.zeros_like(batch.mask)
        for b in range(batch.mask.shape[0]):
            valid = np.flatnonzero(batch.mask[b])
            if valid.size == 0:
                continue
            present = categories[b, valid]
            chosen = present[int(self._rng.integers(present.size))]
            segment[b] = batch.mask[b] & (categories[b] == chosen)
        return segment

    def make_views(self, batch: Batch, c: Tensor) -> tuple[Tensor, Tensor]:
        segment = self._category_segment(batch)
        pooled = self.pooled_view(c, segment)
        view1 = F.dropout(pooled, self.dropout_rate, self._rng, training=True)
        view2 = F.dropout(pooled, self.dropout_rate, self._rng, training=True)
        return view1, view2
