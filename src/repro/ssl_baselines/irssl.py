"""IRSSL (Yao et al., 2021): SSL via complementary item-feature masking.

The original method augments *item features* in a two-tower retrieval model:
two views of one item mask complementary subsets of its feature fields, and a
contrastive loss ties them together.  Following the paper we port the
item-feature-mask variant: views are built from the *candidate item's*
categorical fields (item id, category, seller where present).  As Table VI
observes, the method "only focuses on item features, thus loses efficacy when
few item features are available" — with two or three item-side fields each
view keeps barely one field, so the signal is weak by construction.
"""

from __future__ import annotations

import numpy as np

from ..core.encoders import ViewEncoder
from ..data.batching import Batch
from ..nn import Tensor, stack
from .base import SSLBaselineModel

__all__ = ["IRSSLModel"]


class IRSSLModel(SSLBaselineModel):
    """Complementary feature masking over the candidate item's fields."""

    method_name = "IRSSL"

    def __init__(self, base, alpha: float = 0.3, temperature: float = 0.1,
                 seed: int = 0):
        super().__init__(base, alpha=alpha, temperature=temperature, seed=seed)
        # Item-side fields: every categorical field except the user id.
        self._item_fields = [name.name for name in base.schema.categorical
                             if name.name != "user"]
        rng = np.random.default_rng(seed + 7)
        width = len(self._item_fields) * base.embedding_dim
        self.encoder = ViewEncoder(width, (20, 20), rng)

    def make_views(self, batch: Batch, c: Tensor) -> tuple[Tensor, Tensor]:
        columns = [self.embedder.candidate_embedding(batch, field)
                   for field in self._item_fields]
        item = stack(columns, axis=1).flatten_from(1)  # (B, F_item*K)

        num_fields = len(self._item_fields)
        keep1 = self._rng.random(num_fields) < 0.5
        if keep1.all() or not keep1.any():
            flip = int(self._rng.integers(num_fields))
            keep1[flip] = not keep1[flip]
        keep2 = ~keep1
        dim = self.embedding_dim
        mask1 = np.repeat(keep1.astype(np.float64), dim)
        mask2 = np.repeat(keep2.astype(np.float64), dim)
        return item * Tensor(mask1), item * Tensor(mask2)
