"""S3Rec (Zhou et al., 2020), sequence-segment MIM variant.

The paper adopts S3Rec's sequence-segment objective (its best-performing MIM
of the four): maximise the mutual information between a random contiguous
segment of the behaviour sequence and the remaining context.  The "obvious
semantic difference between a random segment and the whole behaviour
sequence" biases the correlation learning (paper §VI-C2), which is why it
only edges past the plain base model.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..nn import Tensor
from .base import SSLBaselineModel

__all__ = ["S3RecModel"]


class S3RecModel(SSLBaselineModel):
    """Segment-vs-context mutual information maximisation."""

    method_name = "S3Rec"

    def __init__(self, base, alpha: float = 0.3, temperature: float = 0.1,
                 seed: int = 0, segment_ratio: float = 0.25):
        super().__init__(base, alpha=alpha, temperature=temperature, seed=seed)
        if not 0.0 < segment_ratio < 1.0:
            raise ValueError("segment_ratio must be in (0, 1)")
        self.segment_ratio = segment_ratio

    def make_views(self, batch: Batch, c: Tensor) -> tuple[Tensor, Tensor]:
        mask = batch.mask
        batch_size = mask.shape[0]
        segment = np.zeros_like(mask)
        for b in range(batch_size):
            valid = np.flatnonzero(mask[b])
            if valid.size < 2:
                segment[b] = mask[b]
                continue
            span = max(1, int(round(valid.size * self.segment_ratio)))
            span = min(span, valid.size - 1)
            start = int(self._rng.integers(0, valid.size - span + 1))
            segment[b, valid[start:start + span]] = True
        # Segment vs the *whole* sequence: the semantic gap between a short
        # random segment and the full multi-interest history is the bias the
        # paper blames for S3Rec's limited gains (§VI-C2).
        return self.pooled_view(c, segment), self.pooled_view(c, mask)
