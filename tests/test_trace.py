"""Tests for span tracing (repro.obs.trace), the sampling profiler, the
span timeline renderer, and the check_bench perf-regression guard."""

import json
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (
    JsonlTraceWriter,
    SamplingProfiler,
    SpanRecorder,
    Tracer,
    current_span,
    get_tracer,
    render_spans,
    set_tracer,
    span,
    summarize_spans,
    use_tracer,
)
from repro.obs.trace import _NOOP_SPAN

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import check_bench  # noqa: E402


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
class TestTracer:
    def test_new_trace_vs_child_context(self):
        tracer = Tracer(SpanRecorder())
        root = tracer.make_context()
        child = tracer.make_context(root)
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        other = tracer.make_context()
        assert other.trace_id != root.trace_id

    def test_record_span_emits_child_by_default(self):
        sink = SpanRecorder()
        tracer = Tracer(sink)
        root = tracer.make_context()
        t0 = time.monotonic()
        tracer.record_span("work", root, t0, t0 + 0.25)
        record = sink.records[0]
        assert record["trace_id"] == root.trace_id
        assert record["parent_id"] == root.span_id
        assert record["span_id"] != root.span_id
        assert record["duration_ms"] == pytest.approx(250.0)
        assert record["thread"] == threading.current_thread().name

    def test_record_span_for_the_context_itself(self):
        sink = SpanRecorder()
        tracer = Tracer(sink)
        root = tracer.make_context()
        t0 = time.monotonic()
        tracer.record_span("root", root, t0, t0 + 0.1,
                           span_id=root.span_id, parent_id=None)
        record = sink.records[0]
        assert record["span_id"] == root.span_id
        assert record["parent_id"] is None

    def test_wall_clock_mapping(self):
        tracer = Tracer(SpanRecorder())
        now_mono = time.monotonic()
        mapped = tracer.to_wall(now_mono)
        assert abs(mapped - time.time()) < 1.0

    def test_negative_duration_clamped(self):
        sink = SpanRecorder()
        tracer = Tracer(sink)
        ctx = tracer.make_context()
        t0 = time.monotonic()
        tracer.record_span("x", ctx, t0, t0 - 1.0)
        assert sink.records[0]["duration_ms"] == 0.0

    def test_head_sampling_is_whole_trace(self):
        sink = SpanRecorder()
        tracer = Tracer(sink, sample_rate=0.5, seed=3)
        t0 = time.monotonic()
        decisions = []
        for _ in range(200):
            root = tracer.make_context()
            child = tracer.make_context(root)
            assert child.sampled == root.sampled   # inherited, never re-rolled
            decisions.append(root.sampled)
            tracer.record_span("a", root, t0, t0 + 0.001)
            tracer.record_span("b", child, t0, t0 + 0.001)
        kept = sum(decisions)
        assert 0 < kept < 200
        assert 40 < kept < 160                     # ~0.5 within tolerance
        # Spans exist only for sampled traces, always in pairs.
        assert len(sink.records) == 2 * kept
        assert tracer.traces_sampled == kept

    def test_sample_rate_validation(self):
        with pytest.raises(ValueError):
            Tracer(None, sample_rate=1.5)

    def test_span_scope_nests_via_contextvars(self):
        sink = SpanRecorder()
        tracer = Tracer(sink)
        assert current_span() is None
        with tracer.span("outer") as outer_ctx:
            assert current_span() is outer_ctx
            with tracer.span("inner"):
                pass
        assert current_span() is None
        outer = sink.by_name("outer")[0]
        inner = sink.by_name("inner")[0]
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]

    def test_concurrent_emission_is_complete(self):
        sink = SpanRecorder()
        tracer = Tracer(sink)
        root = tracer.make_context()

        def emit():
            t0 = time.monotonic()
            for _ in range(100):
                tracer.record_span("w", root, t0, t0)

        threads = [threading.Thread(target=emit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink.records) == 400
        assert len({r["span_id"] for r in sink.records}) == 400


class TestGlobalTracerFastPath:
    def test_noop_span_is_a_shared_singleton(self):
        # Matching the phase()/no-observer pattern: with no tracer installed
        # the module-level span() allocates nothing — every call returns the
        # same slotted no-op scope, so permanent instrumentation costs one
        # global load + None check.
        assert get_tracer() is None
        assert span("a") is span("b")
        assert span("a") is _NOOP_SPAN
        with span("anything"):
            pass  # must not raise or record anywhere

    def test_use_tracer_restores_previous(self):
        sink = SpanRecorder()
        tracer = Tracer(sink)
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with span("real"):
                pass
        assert get_tracer() is None
        assert len(sink.by_name("real")) == 1

    def test_set_tracer_explicit(self):
        tracer = Tracer(SpanRecorder())
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is None

    def test_disabled_overhead_within_bound(self):
        # The acceptance bound: instrumentation left on hot paths must cost
        # <= 2% when disabled.  Compare a bare loop against the same loop
        # entering the no-op span; both sides do identical real work.
        def bare(n):
            acc = 0
            for i in range(n):
                acc += i
            return acc

        def instrumented(n):
            acc = 0
            for i in range(n):
                with span("hot"):
                    acc += i
            return acc

        n = 50_000
        bare(n), instrumented(n)                       # warm up
        baseline = min(_time_it(bare, n) for _ in range(5))
        timed = min(_time_it(instrumented, n) for _ in range(5))
        # The no-op adds two empty method calls per iteration; relative to
        # any real unit of work (a numpy op, a dict lookup chain) that is
        # far below 2%.  Against an *empty* loop body it is measurable, so
        # bound the absolute per-iteration cost instead: < 1.5us.
        assert (timed - baseline) / n < 1.5e-6


def _time_it(fn, n):
    start = time.perf_counter()
    fn(n)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# JSONL sink + inspect-run --spans
# ---------------------------------------------------------------------------
class TestSpanInspection:
    def _write_spans(self, path):
        writer = JsonlTraceWriter(str(path))
        tracer = Tracer(writer)
        t0 = time.monotonic()
        for k in range(3):
            root = tracer.make_context()
            tracer.record_span("serve.request", root, t0, t0 + 0.010,
                               span_id=root.span_id, parent_id=None)
            tracer.record_span("serve.queue_wait", root, t0, t0 + 0.002)
            tracer.record_span("serve.forward", root, t0 + 0.003, t0 + 0.009)
        writer.close()
        return path

    def test_spans_share_trace_file_schema(self, tmp_path):
        from repro.obs import read_trace
        path = self._write_spans(tmp_path / "spans.jsonl")
        events = read_trace(str(path))    # validates schema_version per line
        assert all(e["event"] == "span" for e in events)

    def test_summarize_groups_by_trace(self, tmp_path):
        from repro.obs import read_trace
        path = self._write_spans(tmp_path / "spans.jsonl")
        trees = summarize_spans(read_trace(str(path)))
        assert len(trees) == 3
        for tree in trees:
            assert len(tree.spans) == 3
            roots = tree.roots()
            assert len(roots) == 1
            assert roots[0]["name"] == "serve.request"
            path_names = [s["name"] for s in tree.critical_path()]
            assert path_names[0] == "serve.request"
            assert path_names[-1] == "serve.forward"   # longest child

    def test_summarize_rejects_spanless_trace(self):
        with pytest.raises(ValueError, match="no span events"):
            summarize_spans([{"event": "run_start"}])

    def test_render_contains_timeline_and_rollup(self, tmp_path):
        from repro.obs import read_trace
        path = self._write_spans(tmp_path / "spans.jsonl")
        text = render_spans(summarize_spans(read_trace(str(path))))
        assert "3 trace(s), 9 span(s)" in text
        assert "critical path: serve.request -> serve.forward" in text
        assert "Per-span-name rollup:" in text
        assert "█" in text

    def test_inspect_run_cli_spans(self, tmp_path, capsys):
        path = self._write_spans(tmp_path / "spans.jsonl")
        assert main(["inspect-run", str(path), "--spans"]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_inspect_run_cli_spans_on_spanless_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        trace.write_text(json.dumps({"schema_version": 1,
                                     "event": "epoch_start",
                                     "epoch": 0}) + "\n")
        assert main(["inspect-run", str(trace), "--spans"]) == 1
        assert "--trace-jsonl" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------
class TestSamplingProfiler:
    def test_captures_other_threads_with_thread_base_frame(self, tmp_path):
        stop = threading.Event()

        def busy_wait():
            while not stop.is_set():
                sum(range(100))

        worker = threading.Thread(target=busy_wait, name="busy-worker",
                                  daemon=True)
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.001) as profiler:
                time.sleep(0.15)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 10
        collapsed = profiler.collapsed()
        assert collapsed
        # flamegraph.pl format: "frame;frame;...;leaf count".
        for line in collapsed:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
        busy = [line for line in collapsed if line.startswith("busy-worker;")]
        assert busy
        assert any("busy_wait" in line for line in busy)
        out = tmp_path / "deep" / "profile.collapsed"
        written = profiler.write_collapsed(str(out))
        assert written == len(collapsed)
        assert out.read_text().count("\n") == written

    def test_never_samples_itself(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            time.sleep(0.05)
        assert not any("repro-profiler" in line.split(";")[0]
                       for line in profiler.collapsed())

    def test_lifecycle_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)
        profiler = SamplingProfiler()
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        profiler.stop()   # idempotent

    def test_summary_mentions_overhead(self):
        with SamplingProfiler(interval_s=0.005) as profiler:
            time.sleep(0.03)
        text = profiler.summary()
        assert "samples" in text and "overhead" in text
        assert 0.0 <= profiler.overhead_fraction < 0.5


# ---------------------------------------------------------------------------
# check_bench perf-regression guard
# ---------------------------------------------------------------------------
def _ops_report(conv_fused_ms):
    return {"kernels": {
        "mie_mimfe_conv": {"fused_ms": conv_fused_ms, "reference_ms": 24.0,
                           "speedup": 24.0 / conv_fused_ms},
        "l2_normalize": {"fused_ms": 0.8, "reference_ms": 1.2,
                         "speedup": 1.5},
    }}


def _pipeline_report(prefetch_s):
    return {"results": [
        {"mode": "sequential", "num_workers": 0, "epoch_s": 2.0},
        {"mode": "prefetch", "num_workers": 2, "epoch_s": prefetch_s},
    ]}


class TestCheckBench:
    def test_clean_run_passes(self):
        rows = check_bench.check_ops(_ops_report(8.0), _ops_report(8.5))
        assert all(r["ok"] for r in rows)

    def test_two_x_slower_conv_fails(self):
        # The acceptance scenario: doctor the candidate so the conv kernel
        # runs 2x slower; its speedup halves and must trip the guard.
        rows = check_bench.check_ops(_ops_report(8.0), _ops_report(16.0))
        verdicts = {r["metric"]: r["ok"] for r in rows}
        assert verdicts["ops.mie_mimfe_conv"] is False
        assert verdicts["ops.l2_normalize"] is True

    def test_fused_slower_than_reference_always_fails(self):
        # Absolute floor: even a huge tolerance cannot excuse speedup < 1.
        rows = check_bench.check_ops(_ops_report(8.0), _ops_report(30.0),
                                     tolerance=0.99)
        assert not all(r["ok"] for r in rows)

    def test_missing_kernel_fails(self):
        candidate = _ops_report(8.0)
        del candidate["kernels"]["mie_mimfe_conv"]
        rows = check_bench.check_ops(_ops_report(8.0), candidate)
        missing = next(r for r in rows if r["metric"] == "ops.mie_mimfe_conv")
        assert missing["ok"] is False

    def test_pipeline_regression_detected(self):
        good = check_bench.check_pipeline(_pipeline_report(0.25),
                                          _pipeline_report(0.30))
        assert all(r["ok"] for r in good)
        bad = check_bench.check_pipeline(_pipeline_report(0.25),
                                         _pipeline_report(1.8))
        assert not all(r["ok"] for r in bad)
        assert any(r["metric"] == "pipeline.prefetch_best" for r in bad)

    def test_main_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(_ops_report(8.0)))
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_ops_report(8.2)))
        doctored = tmp_path / "bad.json"
        doctored.write_text(json.dumps(_ops_report(16.0)))
        assert check_bench.main(["--baseline-ops", str(baseline),
                                 "--candidate-ops", str(good)]) == 0
        assert "within tolerance" in capsys.readouterr().out
        assert check_bench.main(["--baseline-ops", str(baseline),
                                 "--candidate-ops", str(doctored)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_main_rejects_unreadable_input(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            check_bench.main(["--candidate-ops", str(tmp_path / "none.json"),
                              "--baseline-ops", str(tmp_path / "none.json")])
        assert excinfo.value.code == 2

    def test_real_baselines_self_check(self):
        # The committed baselines compared against themselves must pass:
        # guards the guard against schema drift in BENCH_*.json.
        ops = json.loads((check_bench.REPO_ROOT
                          / "BENCH_ops.json").read_text())
        pipe = json.loads((check_bench.REPO_ROOT
                           / "BENCH_pipeline.json").read_text())
        assert all(r["ok"] for r in check_bench.check_ops(ops, ops))
        assert all(r["ok"] for r in check_bench.check_pipeline(pipe, pipe))
