"""End-to-end integration tests: the full reproduction pipeline at toy scale.

These are the smallest complete runs of the paper's protocol — world
generation → processing → training → calibration → evaluation — asserting
directional outcomes that hold even on toy worlds.
"""

import numpy as np
import pytest

from repro.core import MISSConfig, attach_miss
from repro.data import (
    InterestWorld,
    InterestWorldConfig,
    build_ctr_data,
    downsample,
    flip_labels,
)
from repro.models import create_model
from repro.training import TrainConfig, run_experiment


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=200, num_items=400, num_topics=10,
                                 num_categories=5, min_interactions=3,
                                 interests_per_user=(3, 5), seed=11)
    return build_ctr_data(InterestWorld(config), max_seq_len=16, seed=12)


@pytest.fixture(scope="module")
def config():
    return TrainConfig(epochs=16, learning_rate=1e-2, weight_decay=1e-5,
                       patience=5, seed=0)


@pytest.fixture(scope="module")
def din_result(data, config):
    model = create_model("DIN", data.schema, seed=1)
    return run_experiment(model, data, config, model_name="DIN")


@pytest.fixture(scope="module")
def miss_result(data, config):
    base = create_model("DIN", data.schema, seed=1)
    model = attach_miss(base, MISSConfig(alpha_interest=0.5, alpha_feature=0.5,
                                         seed=2))
    return run_experiment(model, data, config, model_name="DIN-MISS")


class TestHeadlineClaim:
    def test_din_learns_something(self, din_result):
        assert din_result.auc > 0.55

    def test_miss_beats_din(self, din_result, miss_result):
        """The paper's headline: MISS improves the backbone on both metrics."""
        assert miss_result.auc > din_result.auc
        assert miss_result.logloss < din_result.logloss

    def test_metrics_are_calibrated(self, din_result, miss_result):
        # Post-Platt logloss must be no worse than the chance level log(2).
        assert din_result.logloss < np.log(2) + 0.05
        assert miss_result.logloss < np.log(2) + 0.05


class TestCorruptionPipelines:
    def test_downsampled_training_still_works(self, data, config):
        train = downsample(data.train, 0.8, seed=3)
        model = create_model("DIN", data.schema, seed=1)
        result = run_experiment(model, data, config, train=train)
        assert np.isfinite(result.auc)

    def test_label_noise_hurts_plain_model(self, data, config, din_result):
        noisy = flip_labels(data.train, 0.3, seed=4)
        model = create_model("DIN", data.schema, seed=1)
        result = run_experiment(model, data, config, train=noisy)
        assert result.auc < din_result.auc + 0.02  # noise never helps much


class TestDeterminism:
    def test_identical_runs_identical_metrics(self, data, config):
        def run():
            base = create_model("DeepFM", data.schema, seed=5)
            return run_experiment(base, data, config)
        a, b = run(), run()
        assert a.auc == pytest.approx(b.auc, abs=1e-12)
        assert a.logloss == pytest.approx(b.logloss, abs=1e-9)
