"""Tests for the MISS framework: extractors, augmentation, losses, plugin."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FineGrainedExtractor,
    MISSConfig,
    MISSModule,
    MultiInterestExtractor,
    SimilarityTracker,
    attach_miss,
    info_nce,
    sample_feature_pairs,
    sample_interest_pairs,
)
from repro.data import InterestWorld, InterestWorldConfig, build_ctr_data
from repro.models import create_model
from repro.nn import Tensor

RNG = np.random.default_rng(4)


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=30, num_items=80, num_topics=6,
                                 num_categories=3, min_interactions=2, seed=5)
    return build_ctr_data(InterestWorld(config), max_seq_len=10, seed=6)


@pytest.fixture(scope="module")
def batch(data):
    return data.train.batch(np.arange(16))


class TestMISSConfig:
    def test_defaults_match_paper(self):
        config = MISSConfig()
        assert config.max_kernel_width == 3        # M tuned in {1..4}
        assert config.max_kernel_height == 2       # N tuned in {1, 2}
        assert config.max_distance == 3            # H tuned in {1..4}
        assert config.temperature == pytest.approx(0.1)
        assert config.interest_encoder_sizes == (20, 20)
        assert config.feature_encoder_sizes == (10, 10)

    def test_without_builds_variants(self):
        config = MISSConfig().without("F", "U")
        assert not config.use_fine_grained
        assert not config.use_union_wise
        assert config.variant_name == "MISS/F/U"
        assert config.effective_width == 1

    def test_without_unknown_practice(self):
        with pytest.raises(KeyError):
            MISSConfig().without("X")

    def test_long_range_ablation_fixes_distance(self):
        assert MISSConfig().without("L").effective_distance == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MISSConfig(temperature=0.0)
        with pytest.raises(ValueError):
            MISSConfig(extractor="transformer")
        with pytest.raises(ValueError):
            MISSConfig(num_interest_pairs=0)


class TestExtractorCounts:
    def test_interest_count_formula(self):
        """|T| = Σ_m (L - m + 1), Eq. 20."""
        extractor = MultiInterestExtractor(3, np.random.default_rng(0))
        assert extractor.num_interests(seq_len=10) == 10 + 9 + 8
        c = Tensor(RNG.normal(size=(2, 2, 10, 4)))
        maps = extractor(c)
        total = sum(g.shape[2] for g in maps)
        assert total == extractor.num_interests(10)

    def test_omega_formula(self):
        """Ω = Σ_n (J - n + 1), Eq. 23."""
        fine = FineGrainedExtractor(1, 2, np.random.default_rng(0))
        assert fine.omega(num_fields=3) == 3 + 2

    def test_branches_skip_too_wide_kernels(self):
        extractor = MultiInterestExtractor(4, np.random.default_rng(0))
        c = Tensor(RNG.normal(size=(1, 2, 3, 4)))  # L=3 < max width 4
        maps = extractor(c)
        assert len(maps) == 3

    def test_fine_maps_shapes(self):
        extractor = MultiInterestExtractor(2, np.random.default_rng(0))
        fine = FineGrainedExtractor(2, 2, np.random.default_rng(1))
        c = Tensor(RNG.normal(size=(2, 3, 8, 4)))
        fine_maps = fine(extractor(c))
        shapes = {g.shape for g in fine_maps}
        # m in {1,2} x n in {1,2}: (J-n+1, L-m+1) combinations.
        assert (2, 3, 8, 4) in shapes and (2, 2, 7, 4) in shapes


class TestAugmentation:
    def _maps(self, batch_size=6, num_fields=2, length=8, dim=3):
        extractor = MultiInterestExtractor(3, np.random.default_rng(0))
        c = Tensor(RNG.normal(size=(batch_size, num_fields, length, dim)))
        return extractor(c), length

    def test_interest_pair_shapes(self):
        maps, length = self._maps()
        samples = sample_interest_pairs(maps, 5, 3, np.random.default_rng(0),
                                        seq_len=length)
        assert len(samples) == 5
        for s in samples:
            assert s.view1.shape == (6, 2 * 3)
            assert s.view2.shape == s.view1.shape

    def test_interest_distance_bounds(self):
        maps, length = self._maps()
        for _ in range(20):
            samples = sample_interest_pairs(maps, 3, 2, np.random.default_rng(0),
                                            seq_len=length)
            for s in samples:
                distances = s.right - s.left
                assert np.all(distances >= 0)
                assert np.all(distances <= 2)

    def test_mask_confines_positions(self):
        maps, length = self._maps()
        mask = np.zeros((6, length), dtype=bool)
        mask[:, 4:] = True  # only the last 4 positions are valid
        samples = sample_interest_pairs(maps, 8, 3, np.random.default_rng(1),
                                        mask=mask)
        for s in samples:
            assert np.all(s.left >= 4)

    def test_feature_pair_shapes_and_rows(self):
        maps, length = self._maps(num_fields=3)
        fine = FineGrainedExtractor(3, 2, np.random.default_rng(1))
        fine_maps = fine(maps)
        samples = sample_feature_pairs(fine_maps, 6, np.random.default_rng(2),
                                       seq_len=length, num_fields=3)
        for s in samples:
            assert s.view1.shape == (6, 3)
            if s.height == 1:
                assert s.row1 != s.row2  # distinct fields when possible

    def test_invalid_arguments(self):
        maps, length = self._maps()
        with pytest.raises(ValueError):
            sample_interest_pairs(maps, 0, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_interest_pairs([], 2, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_feature_pairs([], 2, np.random.default_rng(0))


class TestInfoNCE:
    def test_identical_views_near_zero_loss(self):
        z = Tensor(RNG.normal(size=(16, 8)))
        loss = info_nce(z, z, temperature=0.05)
        assert loss.item() < 0.1

    def test_random_views_near_log_batch(self):
        z1 = Tensor(RNG.normal(size=(64, 8)))
        z2 = Tensor(RNG.normal(size=(64, 8)))
        loss = info_nce(z1, z2, temperature=10.0)  # washed out => uniform
        assert loss.item() == pytest.approx(np.log(64), rel=0.05)

    def test_loss_decreases_with_alignment(self):
        anchor = RNG.normal(size=(16, 8))
        noisy = anchor + RNG.normal(size=(16, 8))
        aligned = info_nce(Tensor(anchor), Tensor(anchor), 0.1).item()
        misaligned = info_nce(Tensor(anchor), Tensor(noisy), 0.1).item()
        assert aligned < misaligned

    def test_gradient_flows(self):
        z1 = Tensor(RNG.normal(size=(8, 4)), requires_grad=True)
        z2 = Tensor(RNG.normal(size=(8, 4)), requires_grad=True)
        info_nce(z1, z2, 0.1).backward()
        assert z1.grad is not None and z2.grad is not None

    def test_false_negative_mask_removes_terms(self):
        """Masking a colliding negative must lower the loss."""
        z = RNG.normal(size=(8, 4))
        z[1] = z[0]  # sample 1 duplicates sample 0 → false negative
        plain = info_nce(Tensor(z), Tensor(z), 0.1).item()
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 1] = mask[1, 0] = True
        masked = info_nce(Tensor(z), Tensor(z), 0.1, false_negatives=mask).item()
        assert masked < plain

    def test_diagonal_never_dropped(self):
        z = Tensor(RNG.normal(size=(4, 4)))
        mask = np.ones((4, 4), dtype=bool)  # tries to drop everything
        loss = info_nce(z, z, 0.1, false_negatives=mask)
        assert np.isfinite(loss.item())
        assert loss.item() < 0.1  # only the positive remains

    def test_validation(self):
        z = Tensor(RNG.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            info_nce(z, Tensor(RNG.normal(size=(4, 5))), 0.1)
        with pytest.raises(ValueError):
            info_nce(z, z, 0.0)
        with pytest.raises(ValueError):
            info_nce(z, z, 0.1, false_negatives=np.zeros((3, 3), dtype=bool))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 12), st.floats(0.05, 2.0))
    def test_loss_bounded_by_log_batch(self, batch_size, temperature):
        rng = np.random.default_rng(batch_size)
        z1 = Tensor(rng.normal(size=(batch_size, 6)))
        loss = info_nce(z1, z1, temperature)
        assert 0.0 <= loss.item() <= np.log(batch_size) + 1e-6


class TestMISSModule:
    def test_ssl_losses_finite(self, data, batch):
        module = MISSModule(data.schema, 8, MISSConfig(seed=0),
                            np.random.default_rng(0))
        from repro.models import FeatureEmbedder
        emb = FeatureEmbedder(data.schema, 8, np.random.default_rng(1))
        c = emb.sequence_embeddings(batch)
        li, lf = module.ssl_losses(c, batch.mask, batch.sequences)
        assert np.isfinite(li.item()) and np.isfinite(lf.item())
        assert lf.item() != 0.0

    def test_fine_grained_ablation_zeroes_feature_loss(self, data, batch):
        module = MISSModule(data.schema, 8, MISSConfig(seed=0).without("F"),
                            np.random.default_rng(0))
        from repro.models import FeatureEmbedder
        emb = FeatureEmbedder(data.schema, 8, np.random.default_rng(1))
        _, lf = module.ssl_losses(emb.sequence_embeddings(batch), batch.mask)
        assert lf.item() == 0.0

    def test_sample_level_variant_runs(self, data, batch):
        module = MISSModule(data.schema, 8,
                            MISSConfig(seed=0).without("M", "F", "U", "L"),
                            np.random.default_rng(0))
        from repro.models import FeatureEmbedder
        emb = FeatureEmbedder(data.schema, 8, np.random.default_rng(1))
        li, lf = module.ssl_losses(emb.sequence_embeddings(batch), batch.mask)
        assert np.isfinite(li.item())
        assert lf.item() == 0.0

    @pytest.mark.parametrize("extractor", ["sa", "lstm"])
    def test_alternative_extractors(self, data, batch, extractor):
        module = MISSModule(data.schema, 8, MISSConfig(seed=0, extractor=extractor),
                            np.random.default_rng(0))
        from repro.models import FeatureEmbedder
        emb = FeatureEmbedder(data.schema, 8, np.random.default_rng(1))
        li, _ = module.ssl_losses(emb.sequence_embeddings(batch), batch.mask)
        assert np.isfinite(li.item())

    def test_pair_similarity_in_range(self, data, batch):
        module = MISSModule(data.schema, 8, MISSConfig(seed=0),
                            np.random.default_rng(0))
        from repro.models import FeatureEmbedder
        emb = FeatureEmbedder(data.schema, 8, np.random.default_rng(1))
        sim = module.pair_similarity(emb.sequence_embeddings(batch),
                                     mask=batch.mask)
        assert -1.0 <= sim <= 1.0


class TestPlugin:
    def test_prediction_delegates_to_base(self, data, batch):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        base.eval()
        model.eval()
        np.testing.assert_allclose(model.predict_logits(batch).data,
                                   base.predict_logits(batch).data)

    def test_training_loss_adds_ssl(self, data, batch):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        total = model.training_loss(batch).item()
        ctr = model.ctr_loss(batch).item()
        assert total > ctr  # InfoNCE terms are positive

    def test_no_duplicate_parameters(self, data):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        names = [n for n, _ in model.named_parameters()]
        ids = [id(p) for _, p in model.named_parameters()]
        assert len(ids) == len(set(ids))
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self, data, batch):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        state = model.state_dict()
        other = attach_miss(create_model("DIN", data.schema, seed=8),
                            MISSConfig(seed=0))
        other.load_state_dict(state)
        model.eval()
        other.eval()
        np.testing.assert_allclose(other.predict_logits(batch).data,
                                   model.predict_logits(batch).data)

    def test_ssl_gradient_reaches_embeddings(self, data, batch):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        model.ssl_loss(batch).backward()
        item_table = model.embedder.tables[data.schema.categorical_index("item")]
        assert item_table.weight.grad is not None
        assert np.abs(item_table.weight.grad).sum() > 0

    def test_similarity_tracker(self, data, batch):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        tracker = SimilarityTracker(every=1)
        tracker(model, batch, step=1)
        assert len(tracker.similarities) == 1
        with pytest.raises(TypeError):
            tracker(base, batch, step=2)

    def test_tracker_respects_every(self, data, batch):
        base = create_model("DIN", data.schema, seed=7)
        model = attach_miss(base, MISSConfig(seed=0))
        tracker = SimilarityTracker(every=2)
        for step in range(1, 5):
            tracker(model, batch, step)
        assert tracker.steps == [2, 4]

    def test_smoothed_window(self):
        tracker = SimilarityTracker()
        tracker.similarities = [0.0, 1.0, 0.0, 1.0]
        smoothed = tracker.smoothed(window=2)
        np.testing.assert_allclose(smoothed, [0.5, 0.5, 0.5])
        with pytest.raises(ValueError):
            tracker.smoothed(window=0)
