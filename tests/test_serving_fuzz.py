"""The no-500s fuzz harness for the HTTP scoring server.

Contract under test (stated in the OpenAPI document the server publishes):
malformed input — invalid JSON, wrong shapes, bad headers, hostile bytes —
is always answered with a 4xx status.  A 5xx may only ever mean the server
itself failed.

Three layers hold the line:

* OpenAPI sanity — the published contract is structurally valid and derived
  from the live schema, so generated corpora target the real row shape.
* Regression corpus — ``tests/data/fuzz_corpus/score_corpus.jsonl`` is a
  committed list of raw requests (including non-UTF-8 bodies) that ever
  looked suspicious; CI replays every line on every run.
* Hypothesis — schema-derived strategies generate fresh malformed and
  boundary payloads each run.  ``REPRO_FUZZ_EXAMPLES`` scales the budget
  (CI keeps it short; leave it unset locally for the default).
"""

import base64
import http.client
import json
import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import InterestWorld, InterestWorldConfig, build_ctr_data
from repro.models import create_model
from repro.serving import (
    InferenceSession,
    ScoringServer,
    build_openapi,
    export_artifact,
)

CORPUS_PATH = Path(__file__).parent / "data" / "fuzz_corpus" / \
    "score_corpus.jsonl"

FUZZ_SETTINGS = settings(
    max_examples=int(os.environ.get("REPRO_FUZZ_EXAMPLES", "30")),
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture,
                           HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=30, num_items=80, num_topics=6,
                                 num_categories=3, min_interactions=2, seed=3)
    return build_ctr_data(InterestWorld(config), max_seq_len=8, seed=4)


@pytest.fixture(scope="module")
def session(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("artifacts") / "din"
    export_artifact(create_model("DIN", data.schema, seed=1), path,
                    model_name="DIN",
                    metadata={"dataset": data.schema.name})
    return InferenceSession.load(path)


@pytest.fixture(scope="module")
def server(session):
    with ScoringServer(session, max_wait_ms=1.0) as srv:
        yield srv


def _raw_request(server, method: str, path: str, body: bytes | None = None,
                 headers: dict | None = None) -> int:
    """Send one request over a fresh connection; return the status code.

    ``http.client`` (not urllib) so arbitrary header values and non-UTF-8
    bodies go out exactly as written.
    """
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        all_headers = {"Content-Type": "application/json", **(headers or {})}
        conn.request(method, path, body=body, headers=all_headers)
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


def _corpus_entries():
    entries = []
    for line in CORPUS_PATH.read_text(encoding="utf-8").splitlines():
        if line.strip():
            entries.append(json.loads(line))
    return entries


def _entry_body(entry) -> bytes | None:
    if "body_b64" in entry:
        return base64.b64decode(entry["body_b64"])
    if "body" in entry:
        return entry["body"].encode("utf-8")
    return None


# ---------------------------------------------------------------------------
# The contract document itself
# ---------------------------------------------------------------------------
class TestOpenAPIDocument:
    def test_document_structure(self, session):
        doc = build_openapi(session)
        assert doc["openapi"].startswith("3.0")
        for route in ("/score", "/healthz", "/metrics", "/metrics.json",
                      "/openapi.json", "/admin/reload"):
            assert route in doc["paths"], route

    def test_row_schema_matches_live_dataset_schema(self, session):
        doc = build_openapi(session)
        row = doc["paths"]["/score"]["post"]["requestBody"]["content"][
            "application/json"]["schema"]["oneOf"][1]
        schema = session.schema
        cat = row["properties"]["categorical"]
        assert cat["minItems"] == cat["maxItems"] == schema.num_categorical
        seq = row["properties"]["sequences"]
        assert seq["minItems"] == seq["maxItems"] == schema.num_sequential
        assert seq["items"]["minItems"] == schema.max_seq_len
        mask = row["properties"]["mask"]
        assert mask["minItems"] == mask["maxItems"] == schema.max_seq_len

    def test_score_declares_no_5xx_for_client_errors(self, session):
        responses = build_openapi(session)["paths"]["/score"]["post"][
            "responses"]
        declared = {int(code) for code in responses}
        assert {400, 404, 411, 413, 429} <= declared
        assert 500 not in declared  # the contract: bad input is never a 500

    @pytest.mark.slow
    @pytest.mark.serving
    def test_document_is_json_serialisable_and_served(self, server):
        status = _raw_request(server, "GET", "/openapi.json")
        assert status == 200


# ---------------------------------------------------------------------------
# Committed regression corpus — replayed on every CI run
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.serving
class TestRegressionCorpus:
    def test_corpus_is_nonempty_and_well_formed(self):
        entries = _corpus_entries()
        assert len(entries) >= 30
        for entry in entries:
            assert entry["method"] in {"GET", "POST"}
            assert entry["path"].startswith("/")

    @pytest.mark.parametrize(
        "entry", _corpus_entries(),
        ids=[e["note"].replace(" ", "-") for e in _corpus_entries()])
    def test_corpus_entry_never_5xx(self, server, entry):
        status = _raw_request(server, entry["method"], entry["path"],
                              body=_entry_body(entry),
                              headers=entry.get("headers"))
        assert status < 500, f"{entry['note']}: got {status}"

    def test_server_survives_the_whole_corpus_back_to_back(self, server):
        for entry in _corpus_entries():
            _raw_request(server, entry["method"], entry["path"],
                         body=_entry_body(entry),
                         headers=entry.get("headers"))
        assert _raw_request(server, "GET", "/healthz") == 200

    def test_invalid_content_length_is_411(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/score")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "not-a-number")
            conn.endheaders()
            status = conn.getresponse().status
        finally:
            conn.close()
        assert status == 411


# ---------------------------------------------------------------------------
# Hypothesis: schema-derived malformed and boundary corpora
# ---------------------------------------------------------------------------
def _valid_row(schema) -> dict:
    return {
        "categorical": [0] * schema.num_categorical,
        "sequences": [[0] * schema.max_seq_len] * schema.num_sequential,
        "mask": [True] * schema.max_seq_len,
    }


_SCALARS = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=True, allow_infinity=True), st.text(max_size=20))

_JSON_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=20)


def _mutated_rows(schema):
    """A /score body that is *near* valid: one field broken at a time."""
    field = st.sampled_from(["categorical", "sequences", "mask"])
    breakage = st.one_of(
        _JSON_VALUES,                                   # wrong type entirely
        st.lists(st.integers(-10, 10), max_size=3),     # wrong length
        st.lists(st.floats(allow_nan=True), min_size=1, max_size=3),
    )

    def build(picked, broken, drop):
        row = _valid_row(schema)
        if drop:
            del row[picked]
        else:
            row[picked] = broken
        return {"rows": [row]}

    return st.builds(build, field, breakage, st.booleans())


@pytest.mark.slow
@pytest.mark.serving
class TestHypothesisFuzz:
    @FUZZ_SETTINGS
    @given(raw=st.binary(max_size=512))
    def test_arbitrary_bytes_never_5xx(self, server, raw):
        status = _raw_request(server, "POST", "/score", body=raw)
        assert status < 500

    @FUZZ_SETTINGS
    @given(payload=_JSON_VALUES)
    def test_arbitrary_json_never_5xx(self, server, payload):
        body = json.dumps(payload).encode("utf-8")
        status = _raw_request(server, "POST", "/score", body=body)
        assert status < 500

    @FUZZ_SETTINGS
    @given(data=st.data())
    def test_near_valid_rows_never_5xx(self, server, session, data):
        payload = data.draw(_mutated_rows(session.schema))
        body = json.dumps(payload).encode("utf-8")
        status = _raw_request(server, "POST", "/score", body=body)
        assert status < 500

    @FUZZ_SETTINGS
    @given(header=st.text(max_size=30))
    def test_arbitrary_deadline_header_never_5xx(self, server, session,
                                                 header):
        body = json.dumps({"rows": [_valid_row(session.schema)]})
        try:
            status = _raw_request(
                server, "POST", "/score", body=body.encode("utf-8"),
                headers={"X-Deadline-Ms": header})
        except ValueError:
            return  # http.client refuses headers with \r\n — never sent
        assert status < 500

    @FUZZ_SETTINGS
    @given(payload=_JSON_VALUES)
    def test_admin_reload_never_5xx(self, server, payload):
        body = json.dumps(payload).encode("utf-8")
        status = _raw_request(server, "POST", "/admin/reload", body=body)
        assert status < 500

    def test_boundary_ids_score_or_400_cleanly(self, server, session):
        """Vocab-edge ids: either a clean score or a clean 4xx."""
        schema = session.schema
        for offset in (-1, 0, 1):
            row = _valid_row(schema)
            row["categorical"] = [
                max(0, spec.vocab_size + offset)
                for spec in schema.categorical]
            body = json.dumps({"rows": [row]}).encode("utf-8")
            status = _raw_request(server, "POST", "/score", body=body)
            assert status in {200, 400}, (offset, status)

    def test_server_still_healthy_after_fuzzing(self, server, session):
        body = json.dumps({"rows": [_valid_row(session.schema)]})
        status = _raw_request(server, "POST", "/score",
                              body=body.encode("utf-8"))
        assert status == 200
        assert _raw_request(server, "GET", "/healthz") == 200
