"""Fault-injection suite for crash-safe training (repro.resilience).

Covers: atomic writes, checksummed checkpoint store with corruption fallback
and retention, optimizer state round-trips, RNG stream capture, bit-identical
resume after an injected crash and after a real SIGTERM, completed-run
resume, and NaN-loss rollback with learning-rate backoff.
"""

import json
import math
import os
import signal

import numpy as np
import pytest

from repro.core import MISSConfig, attach_miss
from repro.data import InterestWorld, InterestWorldConfig, build_ctr_data
from repro.models import create_model
from repro.nn import MLP, Adam, SGD, load_checkpoint, save_checkpoint
from repro.nn.layers import Dropout
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.obs import BaseObserver, JsonlTraceWriter, summarize_trace
from repro.resilience import (
    AnomalyGuardConfig,
    CheckpointCorruptError,
    CheckpointStore,
    NumericalAnomalyError,
    RunCheckpoint,
    TrainingInterrupted,
    atomic_write_bytes,
    atomic_write_npz,
    named_rng_states,
    restore_rng_states,
)
from repro.training import TrainConfig, Trainer, evaluate, predict_logits_array


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=30, num_items=80, num_topics=6,
                                 num_categories=3, min_interactions=2, seed=4)
    return build_ctr_data(InterestWorld(config), max_seq_len=8, seed=5)


class Recorder(BaseObserver):
    """Collects every event kind/payload the trainer emits."""

    def __init__(self):
        self.events = []

    def _note(self, event):
        self.events.append((event.kind, event.payload()))

    on_run_start = on_epoch_start = on_batch_end = on_eval_end = _note
    on_run_end = on_checkpoint_written = on_checkpoint_restored = _note
    on_anomaly_detected = _note

    def kinds(self, kind):
        return [payload for k, payload in self.events if k == kind]


class CrashAtStep(BaseObserver):
    """Raises after the Nth optimiser step (injected hard crash)."""

    class Boom(RuntimeError):
        pass

    def __init__(self, step):
        self.step = step

    def on_batch_end(self, event):
        if event.step == self.step:
            raise self.Boom(f"injected crash at step {event.step}")


class KillAtStep(BaseObserver):
    """Sends a real SIGTERM to our own process after the Nth step."""

    def __init__(self, step):
        self.step = step

    def on_batch_end(self, event):
        if event.step == self.step:
            os.kill(os.getpid(), signal.SIGTERM)


class KillDuringEval(BaseObserver):
    """SIGTERM landing between the last training step and the epoch end."""

    def __init__(self, epoch):
        self.epoch = epoch

    def on_eval_end(self, event):
        if event.epoch == self.epoch:
            os.kill(os.getpid(), signal.SIGTERM)


def flip_payload_byte(manifest_path):
    """Flip one byte inside actual array data of a checkpoint's ``.npz``.

    Locating a stored array's raw bytes (uncompressed archives embed them
    verbatim) guarantees the corruption lands in payload, not in zip padding
    the reader never looks at.
    """
    npz = manifest_path.with_suffix(".npz")
    with np.load(npz) as archive:
        largest = max(archive.files,
                      key=lambda name: archive[name].nbytes)
        needle = np.ascontiguousarray(archive[largest]).tobytes()
    blob = bytearray(npz.read_bytes())
    offset = blob.find(needle)
    assert offset >= 0 and needle
    blob[offset + len(needle) // 2] ^= 0xFF
    npz.write_bytes(bytes(blob))


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name], b[name], err_msg=name)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_replaces_previous_contents(self, tmp_path):
        path = tmp_path / "f.bin"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert list(tmp_path.iterdir()) == [path]

    def test_failure_leaves_previous_file_and_no_temp(self, tmp_path):
        path = tmp_path / "f.npz"
        atomic_write_npz(path, {"a": np.arange(3)})
        before = path.read_bytes()

        def explode(fh):
            fh.write(b"partial")
            raise OSError("disk died")

        from repro.resilience import atomic_write
        with pytest.raises(OSError, match="disk died"):
            atomic_write(path, explode)
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_save_checkpoint_is_atomic(self, tmp_path, monkeypatch, data):
        model = create_model("LR", data.schema, seed=1)
        path = save_checkpoint(model, tmp_path / "m")
        before = path.read_bytes()
        import repro.resilience.atomic as atomic_mod
        monkeypatch.setattr(atomic_mod.np, "savez_compressed",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError("crash mid-save")))
        with pytest.raises(OSError, match="crash mid-save"):
            save_checkpoint(model, tmp_path / "m")
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == [path.name]
        # The surviving file still loads.
        load_checkpoint(create_model("LR", data.schema, seed=2), path)


# ----------------------------------------------------------------------
# Optimizer state dicts
# ----------------------------------------------------------------------
class TestOptimizerState:
    def _params(self, seed=0):
        rng = np.random.default_rng(seed)
        mlp = MLP(4, [8, 1], rng)
        return mlp

    def _step(self, mlp, opt, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(16, 4)))
        loss = (mlp(x) * mlp(x)).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()

    def test_adam_round_trip_is_exact(self):
        mlp_a = self._params()
        opt_a = Adam(mlp_a.parameters(), lr=0.05)
        for i in range(3):
            self._step(mlp_a, opt_a, i)
        saved_opt = opt_a.state_dict()
        saved_model = mlp_a.state_dict()

        mlp_b = self._params(seed=9)      # different init, will be overwritten
        opt_b = Adam(mlp_b.parameters(), lr=0.001)
        mlp_b.load_state_dict(saved_model)
        opt_b.load_state_dict(saved_opt)
        assert opt_b.lr == opt_a.lr and opt_b._t == opt_a._t

        for i in range(3, 6):
            self._step(mlp_a, opt_a, i)
            self._step(mlp_b, opt_b, i)
        assert_states_equal(mlp_a.state_dict(), mlp_b.state_dict())

    def test_sgd_round_trip(self):
        mlp = self._params()
        opt = SGD(mlp.parameters(), lr=0.1, momentum=0.9)
        self._step(mlp, opt, 0)
        state = opt.state_dict()
        opt2 = SGD(self._params(1).parameters(), lr=0.5, momentum=0.0)
        opt2.load_state_dict(state)
        assert opt2.momentum == 0.9
        np.testing.assert_array_equal(opt2._velocity[0], opt._velocity[0])

    def test_kind_mismatch_rejected(self):
        mlp = self._params()
        with pytest.raises(ValueError, match="SGD"):
            Adam(mlp.parameters()).load_state_dict(
                SGD(mlp.parameters()).state_dict())

    def test_shape_mismatch_rejected(self):
        state = Adam(self._params().parameters(), lr=0.1).state_dict()
        other = Adam(MLP(4, [3, 1], np.random.default_rng(0)).parameters())
        with pytest.raises(ValueError, match="missing array|shape mismatch"):
            other.load_state_dict(state)


# ----------------------------------------------------------------------
# RNG stream capture
# ----------------------------------------------------------------------
class TestRngState:
    def test_dropout_stream_replays(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, np.random.default_rng(7))

            def forward(self, x):
                return self.drop(x)

        net = Net()
        x = Tensor(np.ones((4, 4)))
        net(x)                                  # advance the stream
        saved = named_rng_states(net)
        a = net(x).data.copy()
        restore_rng_states(net, saved)
        b = net(x).data.copy()
        np.testing.assert_array_equal(a, b)

    def test_strict_mismatch_raises(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, np.random.default_rng(7))

        states = named_rng_states(Net())
        states["ghost"] = next(iter(states.values()))
        with pytest.raises(ValueError, match="unexpected"):
            restore_rng_states(Net(), states)


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
def make_ckpt(step, seed=0):
    rng = np.random.default_rng(seed)
    return RunCheckpoint(
        model_state={"w": rng.normal(size=(3, 2)), "b": rng.normal(size=2)},
        optimizer_state={"kind": "Adam", "lr": 0.01, "weight_decay": 0.0,
                         "betas": [0.9, 0.999], "eps": 1e-8, "t": step,
                         "arrays": {"m.0": rng.normal(size=(3, 2)),
                                    "v.0": rng.normal(size=(3, 2))}},
        loader_rng_state=np.random.default_rng(step).bit_generator.state,
        module_rng_states={"drop._rng":
                           np.random.default_rng(step + 1).bit_generator.state},
        epoch=step // 10, batches_done=step % 10, step=step,
        best_auc=0.5 + 0.01 * step, best_epoch=0, bad_epochs=0,
        best_state={"w": rng.normal(size=(3, 2))},
        history=[{"auc": 0.6, "logloss": 0.69}],
        train_losses=[0.7], epoch_loss=1.5, num_batches=2,
        component_sums={"ctr": 1.4}, epochs_run=1, anomaly_retries=1,
        config={"epochs": 3}, completed=False,
    )


class TestCheckpointStore:
    def test_round_trip_exact(self, tmp_path):
        store = CheckpointStore(tmp_path)
        original = make_ckpt(7)
        path = store.save(original, is_best=True)
        loaded = store.load(path)
        assert_states_equal(loaded.model_state, original.model_state)
        assert_states_equal(loaded.best_state, original.best_state)
        assert_states_equal(loaded.optimizer_state["arrays"],
                            original.optimizer_state["arrays"])
        assert loaded.optimizer_state["t"] == 7
        assert loaded.loader_rng_state == original.loader_rng_state
        assert loaded.module_rng_states == original.module_rng_states
        assert loaded.step == 7 and loaded.batches_done == 7
        assert loaded.best_auc == original.best_auc
        assert loaded.history == original.history
        assert loaded.anomaly_retries == 1
        assert loaded.component_sums == {"ctr": 1.4}

    def test_flipped_byte_is_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_ckpt(3))
        flip_payload_byte(path)
        with pytest.raises(CheckpointCorruptError):
            store.load(path)

    def test_load_latest_falls_back_past_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_ckpt(3))
        latest = store.save(make_ckpt(6))
        flip_payload_byte(latest)
        ckpt, path, skipped = store.load_latest()
        assert ckpt is not None and ckpt.step == 3
        assert [p for p, _ in skipped] == [latest]

    def test_npz_without_manifest_is_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_ckpt(2))
        # Simulate a crash between the npz write and the manifest commit.
        atomic_write_npz(tmp_path / "ckpt-0000000009.npz",
                         {"model/w": np.zeros(2)})
        ckpt, _, skipped = store.load_latest()
        assert ckpt.step == 2 and skipped == []

    def test_retention_keeps_last_k_plus_best(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in (1, 2, 3, 4, 5):
            store.save(make_ckpt(step), is_best=(step == 2))
        steps = [int(p.stem.split("-")[1]) for p in store.manifests()]
        assert steps == [2, 4, 5]
        assert {p.suffix for p in tmp_path.iterdir()} == {".json", ".npz"}

    def test_retention_drops_superseded_best(self, tmp_path):
        # When the newest best checkpoint sits inside the keep-last window,
        # an older best-flagged one is superseded and must age out too.
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in (1, 2, 3, 4, 5):
            store.save(make_ckpt(step), is_best=(step in (2, 4)))
        steps = [int(p.stem.split("-")[1]) for p in store.manifests()]
        assert steps == [4, 5]

    def test_empty_dir(self, tmp_path):
        ckpt, path, skipped = CheckpointStore(tmp_path).load_latest()
        assert ckpt is None and path is None and skipped == []


# ----------------------------------------------------------------------
# Exact resume
# ----------------------------------------------------------------------
def train_control(data, model_name="LR", miss=False, epochs=3, seed=0):
    model = create_model(model_name, data.schema, seed=1)
    if miss:
        model = attach_miss(model, MISSConfig(seed=0))
    result = Trainer(TrainConfig(epochs=epochs, seed=seed, batch_size=8)).fit(
        model, data.train, data.validation)
    return model, result


def assert_same_outcome(result_a, result_b, model_a, model_b):
    assert result_a.best_epoch == result_b.best_epoch
    assert result_a.validation.auc == result_b.validation.auc
    assert result_a.validation.logloss == result_b.validation.logloss
    assert [(r.auc, r.logloss) for r in result_a.history] == \
        [(r.auc, r.logloss) for r in result_b.history]
    assert result_a.train_losses == result_b.train_losses
    assert_states_equal(model_a.state_dict(), model_b.state_dict())


@pytest.mark.slow
class TestExactResume:
    @pytest.mark.parametrize("miss", [False, True],
                             ids=["plain", "miss-rng-streams"])
    def test_crash_mid_epoch_resumes_bit_identically(self, tmp_path, data,
                                                     miss):
        model_name = "DIN" if miss else "LR"
        control_model, control = train_control(data, model_name, miss=miss)

        crashed = create_model(model_name, data.schema, seed=1)
        if miss:
            crashed = attach_miss(crashed, MISSConfig(seed=0))
        with pytest.raises(CrashAtStep.Boom):
            Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
                crashed, data.train, data.validation,
                observers=[CrashAtStep(7)],
                checkpoint_dir=tmp_path, checkpoint_every=3)

        resumed = create_model(model_name, data.schema, seed=1)
        if miss:
            resumed = attach_miss(resumed, MISSConfig(seed=0))
        result = Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
            resumed, data.train, data.validation,
            checkpoint_dir=tmp_path, resume=True, checkpoint_every=3)
        assert_same_outcome(control, result, control_model, resumed)

    def test_sigterm_checkpoints_and_resumes_bit_identically(self, tmp_path,
                                                             data):
        control_model, control = train_control(data)

        killed = create_model("LR", data.schema, seed=1)
        recorder = Recorder()
        handler_before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(TrainingInterrupted) as excinfo:
            Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
                killed, data.train, data.validation,
                observers=[KillAtStep(5), recorder],
                checkpoint_dir=tmp_path)
        assert excinfo.value.signum == signal.SIGTERM
        assert excinfo.value.exit_code == 128 + signal.SIGTERM
        assert excinfo.value.checkpoint is not None
        assert recorder.kinds("checkpoint_written")
        # The handler restored: a later SIGTERM must not be swallowed.
        assert signal.getsignal(signal.SIGTERM) == handler_before

        resumed = create_model("LR", data.schema, seed=1)
        result = Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
            resumed, data.train, data.validation,
            checkpoint_dir=tmp_path, resume=True)
        assert_same_outcome(control, result, control_model, resumed)

    def test_kill_at_epoch_boundary_resumes_bit_identically(self, tmp_path,
                                                            data):
        # With checkpoint_every=None (the fit default) the only checkpoints
        # are epoch-boundary ones.  Crashing on the first step after the
        # boundary forces resume to restart the next epoch from that
        # checkpoint — a stale loader-RNG capture would replay the finished
        # epoch's permutation and diverge from the uninterrupted run.
        control_model, control = train_control(data)
        steps_per_epoch = math.ceil(len(data.train) / 8)

        crashed = create_model("LR", data.schema, seed=1)
        with pytest.raises(CrashAtStep.Boom):
            Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
                crashed, data.train, data.validation,
                observers=[CrashAtStep(steps_per_epoch + 1)],
                checkpoint_dir=tmp_path)
        store = CheckpointStore(tmp_path)
        newest = store.load(store.manifests()[-1])
        assert newest.epoch == 1 and newest.batches_done == 0

        resumed = create_model("LR", data.schema, seed=1)
        result = Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
            resumed, data.train, data.validation,
            checkpoint_dir=tmp_path, resume=True)
        assert_same_outcome(control, result, control_model, resumed)

    def test_sigterm_during_final_eval_still_interrupts(self, tmp_path, data):
        control_model, control = train_control(data, epochs=2)

        killed = create_model("LR", data.schema, seed=1)
        with pytest.raises(TrainingInterrupted) as excinfo:
            Trainer(TrainConfig(epochs=2, seed=0, batch_size=8)).fit(
                killed, data.train, data.validation,
                observers=[KillDuringEval(1)], checkpoint_dir=tmp_path)
        assert excinfo.value.signum == signal.SIGTERM
        assert excinfo.value.checkpoint is not None

        resumed = create_model("LR", data.schema, seed=1)
        result = Trainer(TrainConfig(epochs=2, seed=0, batch_size=8)).fit(
            resumed, data.train, data.validation,
            checkpoint_dir=tmp_path, resume=True)
        assert_same_outcome(control, result, control_model, resumed)

    def test_resume_with_only_corrupt_checkpoints_raises(self, tmp_path,
                                                         data):
        model = create_model("LR", data.schema, seed=1)
        Trainer(TrainConfig(epochs=1, seed=0, batch_size=8)).fit(
            model, data.train, data.validation, checkpoint_dir=tmp_path)
        store = CheckpointStore(tmp_path)
        assert store.manifests()
        for manifest in store.manifests():
            flip_payload_byte(manifest)

        fresh = create_model("LR", data.schema, seed=1)
        with pytest.raises(CheckpointCorruptError,
                           match="refusing to silently restart"):
            Trainer(TrainConfig(epochs=1, seed=0, batch_size=8)).fit(
                fresh, data.train, data.validation,
                checkpoint_dir=tmp_path, resume=True)

    def test_resume_falls_back_past_corrupt_checkpoint(self, tmp_path, data):
        control_model, control = train_control(data)
        first_model = create_model("LR", data.schema, seed=1)
        Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
            first_model, data.train, data.validation,
            checkpoint_dir=tmp_path, checkpoint_every=4, keep_checkpoints=10)
        store = CheckpointStore(tmp_path)
        latest = store.manifests()[-1]
        flip_payload_byte(latest)

        recorder = Recorder()
        resumed = create_model("LR", data.schema, seed=1)
        result = Trainer(TrainConfig(epochs=3, seed=0, batch_size=8)).fit(
            resumed, data.train, data.validation, observers=[recorder],
            checkpoint_dir=tmp_path, resume=True, checkpoint_every=4)
        restored = recorder.kinds("checkpoint_restored")
        assert restored and restored[0]["reason"] == "resume"
        assert restored[0]["skipped"] == [str(latest)]
        assert_same_outcome(control, result, control_model, resumed)

    def test_resume_of_completed_run_skips_training(self, tmp_path, data):
        model_a = create_model("LR", data.schema, seed=1)
        result_a = Trainer(TrainConfig(epochs=2, seed=0, batch_size=8)).fit(
            model_a, data.train, data.validation, checkpoint_dir=tmp_path)

        recorder = Recorder()
        model_b = create_model("LR", data.schema, seed=1)
        result_b = Trainer(TrainConfig(epochs=2, seed=0, batch_size=8)).fit(
            model_b, data.train, data.validation, observers=[recorder],
            checkpoint_dir=tmp_path, resume=True)
        assert recorder.kinds("epoch_start") == []
        assert recorder.kinds("run_start") == []
        assert_same_outcome(result_a, result_b, model_a, model_b)

    def test_resume_requires_checkpoint_dir(self, data):
        model = create_model("LR", data.schema, seed=1)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            Trainer(TrainConfig(epochs=1, seed=0, batch_size=8)).fit(
                model, data.train, data.validation, resume=True)


# ----------------------------------------------------------------------
# Anomaly guard
# ----------------------------------------------------------------------
def poison_loss(model, nan_calls):
    """Make ``training_loss`` return NaN on the given call numbers.

    ``nan_calls`` is a container of 1-based call numbers or a predicate.
    """
    original = model.training_loss
    predicate = nan_calls if callable(nan_calls) else nan_calls.__contains__
    counter = {"n": 0}

    def poisoned(batch):
        counter["n"] += 1
        loss = original(batch)
        if predicate(counter["n"]):
            loss.data = np.full_like(loss.data, np.nan)
        return loss

    model.training_loss = poisoned
    return counter


class TestAnomalyGuard:
    def test_transient_nan_rolls_back_and_recovers(self, data):
        model = create_model("LR", data.schema, seed=1)
        poison_loss(model, {6})
        recorder = Recorder()
        result = Trainer(TrainConfig(epochs=2, seed=0, batch_size=8)).fit(
            model, data.train, data.validation, observers=[recorder],
            anomaly_guard=True, checkpoint_every=4)
        anomalies = recorder.kinds("anomaly_detected")
        assert [a["anomaly"] for a in anomalies] == ["non_finite_loss"]
        assert anomalies[0]["step"] == 6
        rollbacks = [e for e in recorder.kinds("checkpoint_restored")
                     if e["reason"] == "rollback"]
        assert len(rollbacks) == 1 and rollbacks[0]["step"] == 4
        assert np.isfinite(result.validation.auc)

    def test_persistent_nan_exhausts_retry_budget(self, data):
        model = create_model("LR", data.schema, seed=1)
        poison_loss(model, lambda n: n >= 5)
        recorder = Recorder()
        guard_cfg = AnomalyGuardConfig(max_retries=2, backoff_factor=0.5)
        with pytest.raises(NumericalAnomalyError, match="retry budget"):
            Trainer(TrainConfig(epochs=2, seed=0, batch_size=8)).fit(
                model, data.train, data.validation, observers=[recorder],
                anomaly_guard=guard_cfg, checkpoint_every=3)
        anomalies = recorder.kinds("anomaly_detected")
        assert len(anomalies) == guard_cfg.max_retries + 1
        rollbacks = [e for e in recorder.kinds("checkpoint_restored")
                     if e["reason"] == "rollback"]
        assert len(rollbacks) == guard_cfg.max_retries
        # Learning rate backs off on every retry: each detection sees the
        # halved rate left behind by the previous rollback.
        lrs = [a["lr"] for a in anomalies]
        assert lrs == sorted(lrs, reverse=True) and lrs[-1] < lrs[0]

    def test_guard_writes_durable_rollback_target(self, tmp_path, data):
        model = create_model("LR", data.schema, seed=1)
        poison_loss(model, {6})
        recorder = Recorder()
        Trainer(TrainConfig(epochs=1, seed=0, batch_size=8)).fit(
            model, data.train, data.validation, observers=[recorder],
            checkpoint_dir=tmp_path, checkpoint_every=4, anomaly_guard=True)
        rollbacks = [e for e in recorder.kinds("checkpoint_restored")
                     if e["reason"] == "rollback"]
        assert rollbacks and rollbacks[0]["path"] is not None

    def test_spike_detection(self):
        from repro.resilience import AnomalyGuard
        guard = AnomalyGuard(AnomalyGuardConfig(spike_factor=10.0,
                                                spike_warmup=3))
        for _ in range(5):
            guard.record(1.0)
        assert guard.check_loss(0.9) is None
        assert guard.check_loss(50.0) == "loss_spike"
        assert guard.check_loss(float("inf")) == "non_finite_loss"
        assert guard.check_grad_norm(float("nan")) == "non_finite_grad"
        guard.reset_stats()
        assert guard.check_loss(50.0) is None     # EMA forgotten

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnomalyGuardConfig(backoff_factor=1.5)
        with pytest.raises(ValueError):
            AnomalyGuardConfig(max_retries=-1)
        with pytest.raises(ValueError):
            AnomalyGuardConfig(spike_factor=0.5)


# ----------------------------------------------------------------------
# Satellites: guards, config validation, trace writer
# ----------------------------------------------------------------------
class TestGuards:
    def test_evaluate_empty_split_raises_clearly(self, data):
        model = create_model("LR", data.schema, seed=1)
        empty = data.validation.subset(np.arange(0))
        with pytest.raises(ValueError, match="empty split.*no samples"):
            evaluate(model, empty)

    def test_predict_logits_empty_split_raises_clearly(self, data):
        model = create_model("LR", data.schema, seed=1)
        empty = data.test.subset(np.arange(0))
        with pytest.raises(ValueError, match="empty split.*no samples"):
            predict_logits_array(model, empty)

    @pytest.mark.parametrize("kwargs", [
        {"learning_rate": 0.0}, {"learning_rate": -1.0},
        {"learning_rate": float("nan")}, {"learning_rate": float("inf")},
        {"batch_size": 0}, {"grad_clip": 0.0},
        {"grad_clip": float("nan")}, {"weight_decay": -1e-3},
        {"weight_decay": float("inf")},
    ])
    def test_train_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)

    def test_checkpoint_every_validated(self, data):
        model = create_model("LR", data.schema, seed=1)
        with pytest.raises(ValueError, match="checkpoint_every"):
            Trainer(TrainConfig(epochs=1)).fit(
                model, data.train, data.validation, checkpoint_every=0)


class TestTraceWriter:
    def test_resilience_events_serialise_and_summarise(self, tmp_path):
        from repro.obs import (AnomalyDetectedEvent, CheckpointRestoredEvent,
                               CheckpointWrittenEvent, RunStartEvent)
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(str(path)) as writer:
            writer.on_run_start(RunStartEvent(model="LR", num_train=10,
                                              num_validation=5))
            writer.on_checkpoint_written(CheckpointWrittenEvent(
                step=3, epoch=0, path="ckpt-3.json", is_best=True))
            writer.on_anomaly_detected(AnomalyDetectedEvent(
                step=4, epoch=0, anomaly="non_finite_loss",
                value=float("nan"), lr=0.01, retries=1, retries_remaining=2))
            writer.on_checkpoint_restored(CheckpointRestoredEvent(
                step=3, epoch=0, reason="rollback"))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in lines] == [
            "run_start", "checkpoint_written", "anomaly_detected",
            "checkpoint_restored"]
        # The run-trace inspector tolerates the new kinds.
        assert summarize_trace(str(path)).model == "LR"

    def test_records_survive_without_close(self, tmp_path):
        from repro.obs import EpochStartEvent
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(str(path))
        writer.on_epoch_start(EpochStartEvent(epoch=0))
        # No close: per-record flush means the event is already on disk,
        # exactly what a killed run leaves behind.
        assert json.loads(path.read_text().splitlines()[-1])["epoch"] == 0
        writer.close()
        writer.close()      # idempotent
        assert writer.closed
        with pytest.raises(ValueError, match="closed"):
            writer.on_epoch_start(EpochStartEvent(epoch=1))
