"""Tests for the CTR model zoo."""

import numpy as np
import pytest

from repro.data import InterestWorld, InterestWorldConfig, build_ctr_data
from repro.models import (
    CIN,
    MODEL_NAMES,
    CrossNetwork,
    CrossNetworkMatrix,
    FeatureEmbedder,
    build_field_graph,
    create_model,
    fm_second_order,
)
from repro.nn import Tensor


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=30, num_items=80, num_topics=6,
                                 num_categories=3, num_sellers=5,
                                 min_interactions=2, seed=5)
    return build_ctr_data(InterestWorld(config), max_seq_len=10, seed=6)


@pytest.fixture(scope="module")
def batch(data):
    return data.train.batch(np.arange(16))


class TestFeatureEmbedder:
    def test_shapes(self, data, batch):
        emb = FeatureEmbedder(data.schema, 8, np.random.default_rng(0))
        assert emb.categorical_embeddings(batch).shape == (16, data.schema.num_categorical, 8)
        c = emb.sequence_embeddings(batch)
        assert c.shape == (16, data.schema.num_sequential, 10, 8)
        assert emb.field_vectors(batch).shape == (16, data.schema.num_fields, 8)

    def test_sequences_share_candidate_tables(self, data, batch):
        """Item history and candidate item must share one embedding table."""
        emb = FeatureEmbedder(data.schema, 4, np.random.default_rng(0))
        item_index = data.schema.categorical_index("item")
        candidate = emb.candidate_embedding(batch, "item")
        table = emb.tables[item_index].weight.data
        np.testing.assert_allclose(candidate.data,
                                   table[batch.categorical[:, item_index]])
        seq = emb.sequence_field_embedding(batch, 0)
        np.testing.assert_allclose(seq.data, table[batch.sequences[:, 0, :]])

    def test_masked_mean_pool_ignores_padding(self, data):
        emb = FeatureEmbedder(data.schema, 4, np.random.default_rng(0))
        seq = Tensor(np.random.default_rng(1).normal(size=(2, 5, 4)))
        mask = np.array([[False, False, True, True, True]] * 2)
        pooled = emb.masked_mean_pool(seq, mask)
        np.testing.assert_allclose(pooled.data, seq.data[:, 2:, :].mean(axis=1))

    def test_fully_padded_row_pools_to_zero(self, data):
        emb = FeatureEmbedder(data.schema, 4, np.random.default_rng(0))
        seq = Tensor(np.ones((1, 3, 4)))
        pooled = emb.masked_mean_pool(seq, np.zeros((1, 3), dtype=bool))
        np.testing.assert_allclose(pooled.data, np.zeros((1, 4)))


class TestAllModels:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_forward_backward(self, data, batch, name):
        model = create_model(name, data.schema, seed=2)
        logits = model.predict_logits(batch)
        assert logits.shape == (16,)
        loss = model.training_loss(batch)
        assert np.isfinite(loss.item())
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"{name}: no gradient for {missing}"

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_predict_proba_bounds(self, data, batch, name):
        model = create_model(name, data.schema, seed=2)
        probs = model.predict_proba(batch)
        assert probs.shape == (16,)
        assert np.all(probs > 0) and np.all(probs < 1)

    @pytest.mark.parametrize("name", ["DIN", "DeepFM", "FiGNN"])
    def test_same_seed_same_model(self, data, batch, name):
        a = create_model(name, data.schema, seed=9)
        b = create_model(name, data.schema, seed=9)
        a.eval()
        b.eval()
        np.testing.assert_allclose(a.predict_logits(batch).data,
                                   b.predict_logits(batch).data)

    def test_unknown_model(self, data):
        with pytest.raises(KeyError):
            create_model("BERT4Rec", data.schema)


class TestComponents:
    def test_fm_second_order_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        fields = rng.normal(size=(4, 5, 3))
        expected = np.zeros(4)
        for i in range(5):
            for j in range(i + 1, 5):
                expected += (fields[:, i, :] * fields[:, j, :]).sum(axis=1)
        got = fm_second_order(Tensor(fields)).data
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_cross_network_identity_at_zero_weights(self):
        net = CrossNetwork(6, 2, np.random.default_rng(0))
        for w, b in zip(net.weights, net.biases):
            w.data[:] = 0.0
            b.data[:] = 0.0
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6)))
        np.testing.assert_allclose(net(x).data, x.data)

    def test_cross_network_matrix_shape(self):
        net = CrossNetworkMatrix(6, 3, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6)))
        assert net(x).shape == (3, 6)

    def test_cross_network_requires_layers(self):
        with pytest.raises(ValueError):
            CrossNetwork(4, 0, np.random.default_rng(0))

    def test_cin_output_width(self):
        cin = CIN(5, (6, 4), np.random.default_rng(0))
        fields = Tensor(np.random.default_rng(1).normal(size=(3, 5, 7)))
        out = cin(fields)
        assert out.shape == (3, 10)
        assert cin.out_features == 10

    def test_cin_requires_layers(self):
        with pytest.raises(ValueError):
            CIN(4, (), np.random.default_rng(0))

    def test_field_graph_is_complete_digraph(self):
        graph = build_field_graph(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 5 * 4
        assert not any(graph.has_edge(i, i) for i in range(5))


class TestDIEN:
    def test_auxiliary_loss_finite_and_positive(self, data, batch):
        model = create_model("DIEN", data.schema, seed=3)
        aux = model.auxiliary_loss(batch)
        assert np.isfinite(aux.item())
        assert aux.item() > 0

    def test_training_loss_includes_auxiliary(self, data, batch):
        model = create_model("DIEN", data.schema, seed=3)
        main_only = create_model("DIEN", data.schema, seed=3, aux_weight=0.0)
        assert model.training_loss(batch).item() != pytest.approx(
            main_only.training_loss(batch).item())


class TestSIM:
    def test_retrieval_mask_selects_topk(self, data, batch):
        model = create_model("SIM(soft)", data.schema, seed=3, top_k=3)
        sequence = model.embedder.sequence_field_embedding(batch, 0)
        candidate = model.embedder.candidate_embedding(batch, "item")
        retrieved = model._retrieve_mask(sequence, candidate, batch.mask)
        assert retrieved.shape == batch.mask.shape
        assert np.all(retrieved.sum(axis=1) <= 3)
        assert np.all(retrieved <= batch.mask)

    def test_invalid_topk(self, data):
        with pytest.raises(ValueError):
            create_model("SIM(soft)", data.schema, top_k=0)
