"""Tests for the observability subsystem: events, metrics, timers, sinks,
trace inspection, and its integration with the trainer and CLI."""

import json
import re
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core import MISSConfig, SimilarityTracker, attach_miss
from repro.data import InterestWorld, InterestWorldConfig, build_ctr_data
from repro.models import create_model, model_class, supports_miss
from repro.obs import (
    SCHEMA_VERSION,
    BaseObserver,
    BatchEndEvent,
    CallbackObserver,
    ConsoleReporter,
    EMAMeter,
    EpochStartEvent,
    FixedBucketHistogram,
    EvalEndEvent,
    JsonlTraceWriter,
    MetricRegistry,
    ObserverList,
    PhaseTimings,
    RunEndEvent,
    RunStartEvent,
    StreamingHistogram,
    active_timings,
    collect,
    phase,
    read_trace,
    render_summary,
    summarize_trace,
    timed,
)
from repro.obs.metrics import prometheus_name
from repro.training import TrainConfig, Trainer, run_experiment


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=40, num_items=100, num_topics=6,
                                 num_categories=3, min_interactions=2, seed=8)
    return build_ctr_data(InterestWorld(config), max_seq_len=10, seed=9)


class Recorder(BaseObserver):
    """Observer that logs every event it receives, in order."""

    def __init__(self):
        self.events = []

    def on_run_start(self, event):
        self.events.append(event)

    def on_epoch_start(self, event):
        self.events.append(event)

    def on_batch_end(self, event):
        self.events.append(event)

    def on_eval_end(self, event):
        self.events.append(event)

    def on_run_end(self, event):
        self.events.append(event)


# ---------------------------------------------------------------------------
# Metric registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter(self):
        registry = MetricRegistry()
        counter = registry.counter("train.steps")
        counter.inc()
        counter.inc(3)
        assert registry.counter("train.steps").value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        registry = MetricRegistry()
        gauge = registry.gauge("lr")
        assert gauge.value is None
        gauge.set(0.01)
        gauge.set(0.005)
        assert gauge.value == pytest.approx(0.005)

    def test_ema_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=50)
        beta = 0.9
        meter = EMAMeter("loss", beta=beta)
        for v in values:
            meter.update(v)
        # Bias-corrected EMA reference computed directly.
        raw = 0.0
        for v in values:
            raw = beta * raw + (1 - beta) * v
        expected = raw / (1 - beta ** values.size)
        assert meter.value == pytest.approx(expected)
        assert meter.last == pytest.approx(values[-1])
        with pytest.raises(ValueError):
            EMAMeter("bad", beta=1.0)

    def test_histogram_exact_below_reservoir(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=200)
        hist = StreamingHistogram("t", reservoir_size=1000)
        for v in values:
            hist.record(v)
        assert hist.count == 200
        assert hist.min == pytest.approx(values.min())
        assert hist.max == pytest.approx(values.max())
        assert hist.mean == pytest.approx(values.mean())
        assert hist.p50 == pytest.approx(np.quantile(values, 0.5))
        assert hist.p95 == pytest.approx(np.quantile(values, 0.95))

    def test_histogram_reservoir_bounds_memory(self):
        hist = StreamingHistogram("t", reservoir_size=64)
        for v in range(5000):
            hist.record(float(v))
        assert hist.count == 5000
        assert len(hist._reservoir) == 64
        assert hist.max == 4999.0
        # The sampled median should land in the bulk of the stream.
        assert 500 < hist.p50 < 4500

    def test_name_and_type_collisions(self):
        registry = MetricRegistry()
        registry.counter("a.b")
        with pytest.raises(TypeError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.counter("bad name!")
        assert "a.b" in registry
        assert registry.names() == ["a.b"]

    def test_snapshot_is_json_safe(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.ema("e").update(1.5)
        registry.histogram("h").record(2.0)
        registry.gauge("g").set(3.0)
        dumped = json.loads(json.dumps(registry.snapshot()))
        assert set(dumped) == {"c", "e", "g", "h"}
        assert dumped["h"]["p50"] == 2.0

    def test_streaming_histogram_exact_sum_and_count(self):
        # sum/count are exact stream totals, independent of the sketch.
        hist = StreamingHistogram("t", reservoir_size=8)
        values = [float(v) for v in range(1000)]
        for v in values:
            hist.record(v)
        assert hist.count == 1000
        assert hist.sum == pytest.approx(sum(values))
        assert len(hist._reservoir) == 8

    def test_streaming_histogram_deterministic_across_instances(self):
        # The replacement stream is seeded from a digest of the name, not
        # salted hash(): two instances fed the same stream must agree,
        # which is what makes identically-seeded runs bit-comparable.
        a = StreamingHistogram("serve.latency_ms", reservoir_size=16)
        b = StreamingHistogram("serve.latency_ms", reservoir_size=16)
        rng = np.random.default_rng(7)
        for v in rng.normal(size=500):
            a.record(v)
            b.record(v)
        assert a._reservoir == b._reservoir
        assert a.p50 == b.p50

    def test_fixed_bucket_histogram_semantics(self):
        hist = FixedBucketHistogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):   # 0.1 is inclusive (le semantics)
            hist.record(v)
        assert hist.cumulative() == [(0.1, 2), (1.0, 3), (float("inf"), 4)]
        assert hist.count == 4
        assert hist.sum == pytest.approx(2.65)
        snap = hist.snapshot()
        assert snap["buckets"] == {"0.1": 2, "1.0": 3, "+Inf": 4}
        json.dumps(snap)

    def test_fixed_bucket_histogram_validation(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram("h", buckets=())
        with pytest.raises(ValueError):
            FixedBucketHistogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            FixedBucketHistogram("h", buckets=(2.0, 1.0))

    def test_fixed_histogram_registry_accessor(self):
        registry = MetricRegistry()
        hist = registry.fixed_histogram("serve.lat", buckets=(0.5, 1.0))
        assert registry.fixed_histogram("serve.lat") is hist
        with pytest.raises(TypeError):
            registry.histogram("serve.lat")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{(?P<labels>[^}]*)\})? (?P<value>\S+)$")


def parse_exposition(text):
    """Minimal Prometheus text-format (v0.0.4) parser for round-tripping.

    Validates line shape, metric-name charset, and that every sample
    belongs to a family announced by a preceding ``# TYPE`` comment.
    Returns ``(types, samples)`` where samples map name -> [(labels, value)].
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict[str, str] = {}
    samples: dict[str, list] = {}
    for line in text.splitlines():
        if not line:
            continue                       # blank lines are ignorable
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "summary", "histogram")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, value = match.group("name"), float(match.group("value"))
        labels = dict(
            item.split("=", 1) for item in
            (match.group("labels") or "").split(",") if item)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
        assert family in types, f"sample {name!r} precedes its # TYPE"
        samples.setdefault(name, []).append((labels, value))
    return types, samples


class TestPrometheusExposition:
    def test_name_sanitisation(self):
        assert prometheus_name("serve.latency_ms") == "serve_latency_ms"
        assert (prometheus_name("serve.http.healthz.requests")
                == "serve_http_healthz_requests")
        assert prometheus_name("a-b") == "a_b"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("ok:colon") == "ok:colon"

    def _registry(self):
        registry = MetricRegistry()
        registry.counter("serve.requests").inc(5)
        registry.gauge("serve.queue_depth").set(2)
        registry.gauge("serve.unset")          # None: must be omitted
        registry.ema("train.loss").update(0.7)
        reservoir = registry.histogram("serve.latency_ms")
        fixed = registry.fixed_histogram("serve.latency_seconds",
                                         buckets=(0.01, 0.1, 1.0))
        for v in (0.004, 0.05, 0.05, 0.4, 3.0):
            reservoir.record(v * 1000.0)
            fixed.record(v)
        return registry

    def test_round_trips_through_exposition_parser(self):
        types, samples = parse_exposition(self._registry().render_prometheus())
        assert types["serve_requests_total"] == "counter"
        assert types["serve_queue_depth"] == "gauge"
        assert types["train_loss"] == "gauge"
        assert types["serve_latency_ms"] == "summary"
        assert types["serve_latency_seconds"] == "histogram"
        assert "serve_unset" not in types

        assert samples["serve_requests_total"] == [({}, 5.0)]
        assert samples["serve_queue_depth"] == [({}, 2.0)]
        quantiles = {labels["quantile"]: value
                     for labels, value in samples["serve_latency_ms"]}
        assert set(quantiles) == {'"0.5"', '"0.9"', '"0.95"', '"0.99"'}
        assert samples["serve_latency_ms_count"] == [({}, 5.0)]
        assert samples["serve_latency_ms_sum"][0][1] == pytest.approx(3504.0)

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        _, samples = parse_exposition(self._registry().render_prometheus())
        buckets = samples["serve_latency_seconds_bucket"]
        les = [labels["le"] for labels, _ in buckets]
        assert les == ['"0.01"', '"0.1"', '"1.0"', '"+Inf"']
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)          # cumulative => monotone
        assert counts == [1.0, 3.0, 4.0, 5.0]
        assert counts[-1] == samples["serve_latency_seconds_count"][0][1]

    def test_empty_registry_renders_empty_exposition(self):
        types, samples = parse_exposition(MetricRegistry().render_prometheus())
        assert types == {} and samples == {}


# ---------------------------------------------------------------------------
# Phase timers
# ---------------------------------------------------------------------------
class TestTimers:
    def test_noop_without_collector(self):
        assert active_timings() is None
        with phase("anything"):
            pass  # must not raise or record anywhere

    def test_inactive_phase_is_a_shared_singleton(self):
        # The no-observer fast path must not allocate per call: every
        # inactive phase() returns the same no-op scope object.
        assert phase("a") is phase("b")

    def test_inactive_scopes_record_nothing(self):
        # Instrumented code that runs while no collector is active must
        # leave zero trace in a collector activated later.
        @timed("fn.cold")
        def work():
            with phase("inner.cold"):
                return 1

        assert work() == 1
        timings = PhaseTimings()
        with collect(timings):
            pass
        assert timings.stats == {}

    def test_timed_skips_context_when_inactive(self):
        # With no collector, timed() must call straight through — the no-op
        # must propagate exceptions unchanged (no __exit__ swallowing).
        @timed("fn.raises")
        def explode():
            raise KeyError("boom")

        with pytest.raises(KeyError):
            explode()

    def test_nesting_attributes_self_time(self):
        timings = PhaseTimings()
        with collect(timings):
            assert active_timings() is timings
            with phase("outer"):
                time.sleep(0.01)
                with phase("inner"):
                    time.sleep(0.02)
        outer, inner = timings.stats["outer"], timings.stats["inner"]
        assert outer.count == 1 and inner.count == 1
        assert outer.total_s >= inner.total_s
        assert outer.self_s == pytest.approx(outer.total_s - inner.total_s)
        shares = timings.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert active_timings() is None

    def test_timed_decorator(self):
        timings = PhaseTimings()

        @timed("fn")
        def work(x):
            return x + 1

        assert work(1) == 2            # works without a collector
        with collect(timings):
            assert work(2) == 3
        assert timings.stats["fn"].count == 1

    def test_registry_receives_ms_histograms(self):
        registry = MetricRegistry()
        timings = PhaseTimings(registry=registry)
        with collect(timings):
            with phase("data.batch"):
                pass
        hist = registry.get("data.batch_ms")
        assert hist is not None and hist.count == 1

    def test_snapshot_shape(self):
        timings = PhaseTimings()
        timings.observe("a", 0.5)
        snap = timings.snapshot()
        assert snap["a"]["count"] == 1
        assert snap["a"]["share"] == pytest.approx(1.0)
        json.dumps(snap)

    def test_four_threads_keep_independent_phase_stacks(self):
        # Regression test for the shared-stack bug: the active-phase stack
        # must be per-thread.  With one shared stack, concurrent push/pop
        # interleaves across threads, misattributing child time — visible
        # as negative self_s and corrupted nesting.  Four threads nest
        # phases into ONE collector; accounting must stay consistent.
        timings = PhaseTimings()
        iterations, errors = 25, []

        def work():
            try:
                for _ in range(iterations):
                    with phase("outer"):
                        time.sleep(0.0002)
                        with phase("inner"):
                            time.sleep(0.0002)
            except Exception as exc:     # pragma: no cover - failure detail
                errors.append(exc)

        with collect(timings):
            threads = [threading.Thread(target=work, name=f"timer-w{i}")
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert errors == []
        outer, inner = timings.stats["outer"], timings.stats["inner"]
        assert outer.count == 4 * iterations
        assert inner.count == 4 * iterations
        # Nesting only exists within a thread, so every inner is a child
        # of some outer and self-time can never go negative.
        assert outer.self_s >= 0.0
        assert inner.self_s >= 0.0
        assert outer.child_s == pytest.approx(inner.total_s)
        assert outer.total_s >= inner.total_s


# ---------------------------------------------------------------------------
# Event bus through the trainer
# ---------------------------------------------------------------------------
class TestTrainerEvents:
    def test_event_ordering_and_payloads(self, data):
        recorder = Recorder()
        model = create_model("LR", data.schema, seed=1)
        Trainer(TrainConfig(epochs=2, seed=0)).fit(
            model, data.train, data.validation, observers=[recorder])

        kinds = [type(e).kind for e in recorder.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        # Each epoch: epoch_start, batch_end*, eval_end.
        assert kinds[1] == "epoch_start"
        assert "eval_end" in kinds
        first_eval = kinds.index("eval_end")
        assert all(k == "batch_end" for k in kinds[2:first_eval])

        start = recorder.events[0]
        assert isinstance(start, RunStartEvent)
        assert start.model == "LRModel"
        assert start.num_train == len(data.train)
        assert start.config["epochs"] == 2

        batch_events = [e for e in recorder.events
                        if isinstance(e, BatchEndEvent)]
        steps = [e.step for e in batch_events]
        assert steps == list(range(1, len(steps) + 1))
        assert all(np.isfinite(e.loss) and e.grad_norm >= 0
                   for e in batch_events)
        # Live refs are present in-process but excluded from the payload.
        assert batch_events[0].model is model
        assert "model" not in batch_events[0].payload()

        end = recorder.events[-1]
        assert isinstance(end, RunEndEvent)
        assert end.steps == len(batch_events)
        assert "train.forward" in end.timings
        assert end.metrics["train.steps"]["value"] == len(batch_events)

    def test_no_observers_skips_telemetry(self, data):
        model = create_model("LR", data.schema, seed=1)
        result = Trainer(TrainConfig(epochs=1, seed=0)).fit(
            model, data.train, data.validation)
        assert result.metrics is None and result.timings is None

    def test_telemetry_attached_to_result(self, data):
        model = create_model("LR", data.schema, seed=1)
        result = Trainer(TrainConfig(epochs=1, seed=0)).fit(
            model, data.train, data.validation, observers=[Recorder()])
        assert result.metrics is not None
        assert "train.loss.total" in result.metrics
        assert "train.forward" in result.timings

    def test_callback_shim_still_works(self, data):
        calls = []
        model = create_model("LR", data.schema, seed=1)
        Trainer(TrainConfig(epochs=1, seed=0)).fit(
            model, data.train, data.validation,
            on_batch_end=lambda m, b, s: calls.append((m, s)))
        assert [s for _, s in calls] == list(range(1, len(calls) + 1))
        assert all(m is model for m, _ in calls)

    def test_observer_list_build(self):
        shim = ObserverList.build(None, on_batch_end=lambda m, b, s: None)
        assert len(shim) == 1 and isinstance(shim.observers[0],
                                             CallbackObserver)
        nested = ObserverList.build(shim)
        assert nested.observers == shim.observers
        single = ObserverList.build(Recorder())
        assert len(single) == 1
        assert not ObserverList.build(None)

    def test_miss_loss_components_recorded(self, data):
        recorder = Recorder()
        model = attach_miss(create_model("DIN", data.schema, seed=1),
                            MISSConfig(seed=0))
        Trainer(TrainConfig(epochs=1, seed=0)).fit(
            model, data.train, data.validation, observers=[recorder])
        batch_events = [e for e in recorder.events
                        if isinstance(e, BatchEndEvent)]
        assert batch_events
        components = batch_events[0].loss_components
        assert set(components) == {"logloss", "ssl_interest", "ssl_feature"}
        # Eq. 17: total = logloss + α1·ssl + α2·ssl'.
        cfg = model.config
        expected = (components["logloss"]
                    + cfg.alpha_interest * components["ssl_interest"]
                    + cfg.alpha_feature * components["ssl_feature"])
        assert batch_events[0].loss == pytest.approx(expected, rel=1e-6)
        end = recorder.events[-1]
        assert "model.ssl.mie" in end.timings
        assert "model.ssl.infonce" in end.timings

    def test_similarity_tracker_as_observer(self, data):
        model = attach_miss(create_model("DIN", data.schema, seed=1),
                            MISSConfig(seed=0))
        tracker = SimilarityTracker(every=1)
        Trainer(TrainConfig(epochs=1, seed=0)).fit(
            model, data.train, data.validation, observers=[tracker])
        assert tracker.steps and len(tracker.steps) == len(tracker.similarities)


# ---------------------------------------------------------------------------
# Sinks and trace inspection
# ---------------------------------------------------------------------------
class TestSinksAndInspect:
    def _write_trace(self, data, path):
        model = create_model("LR", data.schema, seed=1)
        with JsonlTraceWriter(str(path)) as writer:
            run_experiment(model, data, TrainConfig(epochs=2, seed=0),
                           model_name="LR", observers=[writer])
        return path

    def test_jsonl_round_trip(self, data, tmp_path):
        path = self._write_trace(data, tmp_path / "run.jsonl")
        events = read_trace(str(path))
        assert all(e["schema_version"] == SCHEMA_VERSION for e in events)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds.count("run_end") == 1
        # run_experiment appends the calibrated test eval after run_end.
        assert kinds[-1] == "eval_end"
        assert events[-1]["split"] == "test"
        run_end = next(e for e in events if e["event"] == "run_end")
        assert "train.forward" in run_end["timings"]
        assert "train.grad_norm" in run_end["metrics"]

    def test_summarize_and_render(self, data, tmp_path):
        path = self._write_trace(data, tmp_path / "run.jsonl")
        summary = summarize_trace(str(path))
        assert summary.model == "LRModel"
        assert summary.num_runs == 1
        assert len(summary.epochs) >= 1
        assert "test" in summary.final_evals
        text = render_summary(summary)
        assert "Phase time share" in text
        assert "train.forward" in text
        assert "test" in text

    def test_read_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            read_trace(str(bad))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_trace(str(empty))
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text(json.dumps({"schema_version": 999,
                                     "event": "run_start"}) + "\n")
        with pytest.raises(ValueError):
            read_trace(str(wrong))

    def test_console_reporter_throttles(self):
        import io
        stream = io.StringIO()
        reporter = ConsoleReporter(every=10, stream=stream)
        for step in range(1, 31):
            reporter.on_batch_end(BatchEndEvent(epoch=0, step=step, loss=1.0,
                                                grad_norm=0.5))
        assert len(stream.getvalue().strip().splitlines()) == 3
        reporter.on_eval_end(EvalEndEvent(epoch=0, split="validation",
                                          auc=0.6, logloss=0.69))
        assert "AUC=0.6000" in stream.getvalue()
        with pytest.raises(ValueError):
            ConsoleReporter(every=0)

    def test_inspect_run_cli(self, data, tmp_path, capsys):
        path = self._write_trace(data, tmp_path / "run.jsonl")
        assert main(["inspect-run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Phase time share" in out
        assert "Final metrics" in out

    def test_writer_fails_fast_on_bad_path(self, tmp_path):
        with pytest.raises(OSError):
            JsonlTraceWriter(str(tmp_path / "no-such-dir" / "x.jsonl"))
        writer = JsonlTraceWriter(str(tmp_path / "ok.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.on_epoch_start(EpochStartEvent(epoch=0))

    def test_inspect_run_cli_missing_file(self, tmp_path, capsys):
        assert main(["inspect-run", str(tmp_path / "nope.jsonl")]) == 1
        assert "inspect-run:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Registry capability helpers (used by `compare`)
# ---------------------------------------------------------------------------
class TestCapabilities:
    def test_supports_miss(self):
        assert not supports_miss("LR")
        assert supports_miss("DIN")
        assert supports_miss("DeepFM")
        with pytest.raises(KeyError):
            supports_miss("NotAModel")

    def test_model_class_matches_instance(self, data):
        model = create_model("DIN", data.schema, seed=0)
        assert isinstance(model, model_class("DIN"))
