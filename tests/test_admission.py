"""Unit tests for the admission-control layer: deadline parsing, the bounded
in-flight budget, and the circuit breaker's state machine (driven with a fake
clock — no sleeps, fully deterministic).
"""

import threading

import pytest

from repro.serving import (
    AdmissionController,
    CircuitBreaker,
    ShedError,
    parse_deadline_ms,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestParseDeadlineMs:
    def test_absent_means_no_deadline(self):
        assert parse_deadline_ms(None) is None
        assert parse_deadline_ms("") is None

    @pytest.mark.parametrize("raw,expected", [
        ("250", 250.0), ("1.5", 1.5), ("1e3", 1000.0), ("  42 ", 42.0),
    ])
    def test_valid_values(self, raw, expected):
        assert parse_deadline_ms(raw) == expected

    @pytest.mark.parametrize("raw", [
        "0", "-5", "nan", "inf", "-inf", "abc", "12ms", "1,5",
    ])
    def test_invalid_values_raise(self, raw):
        with pytest.raises(ValueError):
            parse_deadline_ms(raw)


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(4, retry_after_s=0.0)
        with pytest.raises(ValueError):
            AdmissionController(4).acquire(0)

    def test_acquire_release_cycle(self):
        admission = AdmissionController(3)
        admission.acquire(2)
        assert admission.inflight == 2
        admission.acquire(1)
        assert admission.inflight == 3
        admission.release(2)
        admission.release(1)
        assert admission.inflight == 0

    def test_shed_when_budget_exhausted(self):
        admission = AdmissionController(2, retry_after_s=1.25)
        admission.acquire(2)
        with pytest.raises(ShedError) as excinfo:
            admission.acquire(1)
        assert excinfo.value.retry_after_s == 1.25
        # A failed acquire must not leak budget.
        assert admission.inflight == 2

    def test_multi_row_is_all_or_nothing(self):
        admission = AdmissionController(4)
        admission.acquire(3)
        with pytest.raises(ShedError):
            admission.acquire(2)  # only 1 slot left; 2 rows need both
        admission.acquire(1)
        assert admission.inflight == 4

    def test_release_never_goes_negative(self):
        admission = AdmissionController(2)
        admission.release(5)
        assert admission.inflight == 0
        admission.acquire(2)  # full budget still available

    def test_snapshot_counts(self):
        admission = AdmissionController(1)
        admission.acquire()
        with pytest.raises(ShedError):
            admission.acquire()
        admission.release()
        snap = admission.snapshot()
        assert snap == {"inflight": 0, "max_inflight": 1,
                        "admitted": 1, "shed": 1}

    def test_thread_safety_budget_never_exceeded(self):
        admission = AdmissionController(8)
        peak = []
        barrier = threading.Barrier(16)

        def worker():
            barrier.wait()
            for _ in range(200):
                try:
                    admission.acquire()
                except ShedError:
                    continue
                peak.append(admission.inflight)
                admission.release()

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert admission.inflight == 0
        assert max(peak) <= 8


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        kwargs = dict(failure_threshold=0.5, min_requests=4, window_s=10.0,
                      cooldown_s=5.0, clock=clock)
        kwargs.update(overrides)
        return CircuitBreaker(**kwargs)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(min_requests=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window_s=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0)

    def test_stays_closed_below_min_requests(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record(False)  # 100% failure but only 3 outcomes
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trips_at_failure_threshold(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for ok in (True, True, False, False):  # 50% of 4 >= threshold
            breaker.record(ok)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.snapshot()["trips"] == 1

    def test_old_outcomes_age_out_of_the_window(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record(False)
        breaker.record(False)
        clock.advance(11.0)  # beyond window_s
        for _ in range(3):
            breaker.record(True)
        breaker.record(False)  # 1/4 failures in the live window
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cooldown_then_single_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        assert not breaker.allow()          # still cooling down
        clock.advance(5.0)
        assert breaker.allow()              # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()          # concurrent callers refused
        assert not breaker.allow()

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record(True)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        # The window was cleared: old failures cannot insta-trip it.
        breaker.record(False)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record(False)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["trips"] == 2
        clock.advance(4.9)
        assert not breaker.allow()          # new cooldown, not the old one
        clock.advance(0.2)
        assert breaker.allow()

    def test_straggler_outcomes_ignored_while_open(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        # In-flight requests admitted before the trip resolve afterwards;
        # their outcomes must not perturb the open state.
        breaker.record(True)
        breaker.record(False)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["window_requests"] == 0

    def test_snapshot_cooldown_remaining(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert snap["state"] == CircuitBreaker.OPEN
        assert snap["cooldown_remaining_s"] == pytest.approx(3.0)
