"""Additional autograd coverage: composite graphs, edge cases, regressions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    stack,
)

from .helpers import check_gradients

RNG = np.random.default_rng(21)


class TestCompositeGraphs:
    def test_diamond_graph_accumulates_once_per_path(self):
        """x feeds two branches that rejoin: d/dx (x*x + 3x) = 2x + 3."""
        x = Tensor([2.0], requires_grad=True)
        left = x * x
        right = x * 3.0
        (left + right).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain(self):
        x = Tensor([1.5], requires_grad=True)
        y = x
        for _ in range(30):
            y = y * 0.9 + 0.1
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.9 ** 30], rtol=1e-10)

    def test_shared_subexpression(self):
        a = RNG.normal(size=(3, 3))

        def build(ts):
            shared = ts[0].tanh()
            return (shared * shared + shared.exp()).sum()

        check_gradients(build, [a])

    def test_mixed_shapes_pipeline(self):
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(4, 5))

        def build(ts):
            out = (ts[0] @ ts[1]).relu()
            pooled = out.mean(axis=1)
            return (pooled * pooled).sum()

        check_gradients(build, [a, b])

    def test_second_backward_accumulates(self):
        """Calling backward twice without zeroing doubles the gradient."""
        x = Tensor([3.0], requires_grad=True)
        (x * 2).sum().backward()
        first = x.grad.copy()
        y = x * 2
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 2 * first)


class TestGradModeInteraction:
    def test_is_grad_enabled_reflects_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_graph_built_inside_no_grad_is_dead(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad
        assert y._parents == ()

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestEdgeCases:
    def test_empty_like_operations(self):
        t = Tensor(np.zeros((0, 3)))
        assert (t * 2).shape == (0, 3)
        assert t.sum().item() == 0.0

    def test_scalar_tensor_arithmetic(self):
        x = Tensor(2.0, requires_grad=True)
        (x ** 2).backward()
        np.testing.assert_allclose(x.grad, 4.0)

    def test_concatenate_three_parts(self):
        parts = [RNG.normal(size=(2, k)) for k in (1, 2, 3)]
        check_gradients(
            lambda ts: (concatenate(ts, axis=1) ** 2).sum(), parts)

    def test_stack_axis_positions(self):
        a, b = RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))
        assert stack([Tensor(a), Tensor(b)], axis=0).shape == (2, 2, 3)
        assert stack([Tensor(a), Tensor(b)], axis=2).shape == (2, 3, 2)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([2.0, 3.0])

    def test_getitem_then_setflags_safe(self):
        """Views from getitem must not corrupt the parent's gradient."""
        x = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        (x[0] * 2).sum().backward()
        assert x.grad[0].sum() == pytest.approx(8.0)
        assert x.grad[1:].sum() == 0.0


class TestNumericalProperties:
    @settings(max_examples=20, deadline=None)
    @given(hnp.arrays(np.float64, (3, 4),
                      elements=st.floats(-2, 2, allow_nan=False, width=32)))
    def test_tanh_gradient_bounded(self, a):
        t = Tensor(a, requires_grad=True)
        t.tanh().sum().backward()
        assert np.all(t.grad <= 1.0 + 1e-12)
        assert np.all(t.grad >= 0.0)

    @settings(max_examples=20, deadline=None)
    @given(hnp.arrays(np.float64, (5,),
                      elements=st.floats(-3, 3, allow_nan=False, width=32)))
    def test_sum_grad_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones(5))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_matmul_shape_algebra(self, m, n):
        a = Tensor(np.ones((m, 3)))
        b = Tensor(np.ones((3, n)))
        assert (a @ b).shape == (m, n)
        np.testing.assert_allclose((a @ b).data, 3.0)
