"""Tests for modules, layers, and optimisers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Dense,
    Dice,
    Dropout,
    Embedding,
    Parameter,
    PReLU,
    Sequential,
    Tensor,
    clip_grad_norm,
    get_activation,
)

from .helpers import check_gradients

RNG = np.random.default_rng(2)


def make_rng():
    return np.random.default_rng(42)


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, 3, make_rng())
        out = layer(Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_high_rank_input(self):
        layer = Dense(4, 2, make_rng())
        out = layer(Tensor(RNG.normal(size=(3, 6, 4))))
        assert out.shape == (3, 6, 2)

    def test_no_bias(self):
        layer = Dense(3, 2, make_rng(), bias=False)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((1, 3))))
        np.testing.assert_allclose(zero.data, np.zeros((1, 2)))

    def test_gradients_reach_weights(self):
        layer = Dense(3, 2, make_rng())
        out = layer(Tensor(RNG.normal(size=(4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_activation_applied(self):
        layer = Dense(3, 2, make_rng(), activation="relu")
        out = layer(Tensor(RNG.normal(size=(50, 3))))
        assert np.all(out.data >= 0)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, make_rng())
        out = emb(np.array([[1, 2], [3, 4], [5, 0]]))
        assert out.shape == (3, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, make_rng())
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_out_of_range_message_reports_both_bounds(self):
        # The single-pass uint64 bounds check must keep the original
        # diagnostic: the valid range plus the offending min and max.
        emb = Embedding(5, 2, make_rng())
        with pytest.raises(IndexError, match=r"\[0, 5\).*min=-2.*max=7"):
            emb(np.array([3, -2, 7]))

    def test_bounds_check_on_noncontiguous_indices(self):
        # The uint64 reinterpretation must work on strided index views too.
        emb = Embedding(5, 2, make_rng())
        strided = np.arange(12).reshape(3, 4)[:, ::2]  # max stride elem = 10
        with pytest.raises(IndexError):
            emb(strided)
        assert emb(strided % 5).shape == (3, 2, 2)

    def test_boundary_indices_are_valid(self):
        emb = Embedding(5, 2, make_rng())
        out = emb(np.array([0, 4]))
        assert np.array_equal(out.data[0], emb.weight.data[0])
        assert np.array_equal(out.data[1], emb.weight.data[4])

    def test_gradient_accumulates_for_repeats(self):
        emb = Embedding(4, 3, make_rng())
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[2], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            Embedding(0, 3, make_rng())


class TestActivations:
    def test_prelu_negative_slope_learned(self):
        act = PReLU(3, initial=0.5)
        x = Tensor(np.array([[-2.0, 0.0, 2.0], [-1.0, 1.0, -3.0]]))
        out = act(x)
        np.testing.assert_allclose(out.data[0], [-1.0, 0.0, 2.0])

    def test_prelu_gradients(self):
        x = RNG.normal(size=(4, 2)) + 0.1

        def build(ts):
            act = PReLU(2, initial=0.3)
            return act(ts[0]).sum()

        check_gradients(build, [x])

    def test_dice_train_vs_eval(self):
        act = Dice(3)
        x = Tensor(RNG.normal(size=(32, 3)))
        act.train()
        _ = act(x)
        act.eval()
        out1 = act(x).data
        out2 = act(x).data
        np.testing.assert_array_equal(out1, out2)  # deterministic in eval

    def test_get_activation_unknown(self):
        with pytest.raises(ValueError):
            get_activation("swish", 4, make_rng())

    def test_get_activation_linear(self):
        act = get_activation(None, 4, make_rng())
        x = Tensor(RNG.normal(size=(2, 4)))
        np.testing.assert_array_equal(act(x).data, x.data)


class TestMLP:
    def test_paper_tower_shape(self):
        """The paper's deep layers are {40, 40, 40, 1}."""
        mlp = MLP(17, [40, 40, 40, 1], make_rng())
        out = mlp(Tensor(RNG.normal(size=(5, 17))))
        assert out.shape == (5, 1)

    def test_empty_sizes_raises(self):
        with pytest.raises(ValueError):
            MLP(4, [], make_rng())

    def test_dropout_only_between_layers(self):
        mlp = MLP(4, [8, 1], make_rng(), dropout=0.5)
        mlp.eval()
        x = Tensor(RNG.normal(size=(3, 4)))
        out1, out2 = mlp(x).data, mlp(x).data
        np.testing.assert_array_equal(out1, out2)

    def test_gradients_reach_all_layers(self):
        mlp = MLP(4, [6, 3, 1], make_rng())
        mlp(Tensor(RNG.normal(size=(8, 4)))).sum().backward()
        for name, p in mlp.named_parameters():
            assert p.grad is not None, name


class TestModuleSystem:
    def test_named_parameters_nested(self):
        seq = Sequential(Dense(3, 4, make_rng()), Dense(4, 2, make_rng()))
        names = [n for n, _ in seq.named_parameters()]
        assert "steps.items.0.weight" in names
        assert "steps.items.1.bias" in names

    def test_state_dict_roundtrip(self):
        a = MLP(3, [4, 1], make_rng())
        b = MLP(3, [4, 1], np.random.default_rng(99))
        x = Tensor(RNG.normal(size=(2, 3)))
        assert not np.allclose(a(x).data, b(x).data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_state_dict_strict(self):
        a = MLP(3, [4, 1], make_rng())
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros(3)})

    def test_load_state_dict_shape_mismatch(self):
        a = Dense(3, 2, make_rng())
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5, make_rng()), Dense(3, 1, make_rng()))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_num_parameters(self):
        layer = Dense(3, 2, make_rng())
        assert layer.num_parameters() == 3 * 2 + 2

    def test_zero_grad(self):
        layer = Dense(2, 1, make_rng())
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestOptimizers:
    @staticmethod
    def _quadratic_problem():
        """Minimise ||w - target||^2 from w = 0."""
        target = np.array([1.0, -2.0, 3.0])
        w = Parameter(np.zeros(3))
        return w, target

    def test_sgd_converges(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((w - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_adam_converges(self):
        w, target = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((w - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        w1, target = self._quadratic_problem()
        w2, _ = self._quadratic_problem()
        for w, wd in ((w1, 0.0), (w2, 1.0)):
            opt = Adam([w], lr=0.05, weight_decay=wd)
            for _ in range(500):
                opt.zero_grad()
                ((w - Tensor(target)) ** 2).sum().backward()
                opt.step()
        assert np.linalg.norm(w2.data) < np.linalg.norm(w1.data)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_skip_parameters_without_grad(self):
        w = Parameter(np.ones(2))
        opt = Adam([w], lr=0.1)
        opt.step()  # no grad yet: must be a no-op, not a crash
        np.testing.assert_array_equal(w.data, np.ones(2))

    def test_clip_grad_norm(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        pre = clip_grad_norm([w], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_momentum_sgd(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((w - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)
