"""Tests for the competing SSL methods of Table VI."""

import numpy as np
import pytest

from repro.data import InterestWorld, InterestWorldConfig, build_ctr_data
from repro.models import create_model
from repro.ssl_baselines import (
    SSL_METHODS,
    CL4SRecModel,
    IRSSLModel,
    RuleSSLModel,
    S3RecModel,
    attach_ssl_baseline,
)


@pytest.fixture(scope="module")
def data():
    config = InterestWorldConfig(num_users=30, num_items=80, num_topics=6,
                                 num_categories=3, min_interactions=2, seed=5)
    return build_ctr_data(InterestWorld(config), max_seq_len=10, seed=6)


@pytest.fixture(scope="module")
def batch(data):
    return data.train.batch(np.arange(16))


class TestAttachment:
    def test_registry_covers_table6(self):
        assert set(SSL_METHODS) == {"Rule", "IRSSL", "S3Rec", "CL4SRec"}

    def test_unknown_method(self, data):
        with pytest.raises(KeyError):
            attach_ssl_baseline("SimCLR", create_model("DIN", data.schema, seed=1))

    @pytest.mark.parametrize("method", list(SSL_METHODS))
    def test_training_loss_runs(self, data, batch, method):
        base = create_model("DIN", data.schema, seed=1)
        model = attach_ssl_baseline(method, base, seed=2)
        loss = model.training_loss(batch)
        assert np.isfinite(loss.item())
        loss.backward()
        item_table = model.embedder.tables[1]
        assert item_table.weight.grad is not None

    @pytest.mark.parametrize("method", list(SSL_METHODS))
    def test_prediction_delegates(self, data, batch, method):
        base = create_model("DIN", data.schema, seed=1)
        model = attach_ssl_baseline(method, base, seed=2)
        model.eval()
        base.eval()
        np.testing.assert_allclose(model.predict_logits(batch).data,
                                   base.predict_logits(batch).data)

    def test_negative_alpha_rejected(self, data):
        base = create_model("DIN", data.schema, seed=1)
        with pytest.raises(ValueError):
            CL4SRecModel(base, alpha=-1.0)

    def test_no_duplicate_parameters(self, data):
        base = create_model("DIN", data.schema, seed=1)
        model = attach_ssl_baseline("CL4SRec", base, seed=2)
        ids = [id(p) for _, p in model.named_parameters()]
        assert len(ids) == len(set(ids))


class TestCL4SRecOperators:
    @pytest.fixture()
    def model(self, data):
        return CL4SRecModel(create_model("DIN", data.schema, seed=1), seed=2)

    def test_crop_keeps_contiguous_span(self, model, batch):
        cropped, _ = model._crop(batch.mask)
        for b in range(len(batch)):
            kept = np.flatnonzero(cropped[b])
            if kept.size:
                assert np.all(np.diff(kept) == 1)
                assert batch.mask[b, kept].all()

    def test_mask_never_empties_a_row(self, model, batch):
        for _ in range(10):
            masked, _ = model._mask(batch.mask)
            valid_rows = batch.mask.any(axis=1)
            assert masked[valid_rows].any(axis=1).all()
            assert np.all(masked <= batch.mask)

    def test_reorder_permutes_a_span(self, model, batch):
        mask, permutation = model._reorder(batch.mask)
        np.testing.assert_array_equal(mask, batch.mask)
        assert sorted(permutation.tolist()) == list(range(batch.mask.shape[1]))
        assert not np.array_equal(permutation, np.arange(batch.mask.shape[1]))

    def test_views_differ(self, model, batch, data):
        c = model.embedder.sequence_embeddings(batch)
        v1, v2 = model.make_views(batch, c)
        assert v1.shape == (16, data.schema.num_sequential * 10)
        assert not np.allclose(v1.data, v2.data)


class TestIRSSL:
    def test_views_mask_complementary_fields(self, data, batch):
        model = IRSSLModel(create_model("DIN", data.schema, seed=1), seed=2)
        c = model.embedder.sequence_embeddings(batch)
        v1, v2 = model.make_views(batch, c)
        # Complementary masking: positions active in one view are zero in
        # the other.
        active1 = np.abs(v1.data).sum(axis=0) > 0
        active2 = np.abs(v2.data).sum(axis=0) > 0
        assert not np.any(active1 & active2)


class TestS3Rec:
    def test_segment_ratio_validation(self, data):
        base = create_model("DIN", data.schema, seed=1)
        with pytest.raises(ValueError):
            S3RecModel(base, segment_ratio=0.0)

    def test_views_are_segment_and_whole(self, data, batch):
        model = S3RecModel(create_model("DIN", data.schema, seed=1), seed=2)
        c = model.embedder.sequence_embeddings(batch)
        v1, v2 = model.make_views(batch, c)
        assert v1.shape == v2.shape
        assert not np.allclose(v1.data, v2.data)


class TestRule:
    def test_category_segment_is_single_category(self, data, batch):
        model = RuleSSLModel(create_model("DIN", data.schema, seed=1), seed=2)
        segment = model._category_segment(batch)
        j = data.schema.sequential_index("cate_seq")
        categories = batch.sequences[:, j, :]
        for b in range(len(batch)):
            chosen = np.flatnonzero(segment[b])
            if chosen.size:
                assert len(set(categories[b, chosen].tolist())) == 1
                assert batch.mask[b, chosen].all()
