"""Tests for the InterestWorld simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InterestWorld, InterestWorldConfig


def tiny_config(**overrides) -> InterestWorldConfig:
    defaults = dict(num_users=30, num_items=80, num_topics=8, num_categories=4,
                    seed=0)
    defaults.update(overrides)
    return InterestWorldConfig(**defaults)


class TestConfigValidation:
    def test_rejects_more_topics_than_items(self):
        with pytest.raises(ValueError):
            InterestWorldConfig(num_items=5, num_topics=10)

    def test_rejects_categories_finer_than_topics(self):
        with pytest.raises(ValueError):
            tiny_config(num_categories=20)

    def test_rejects_bad_interest_range(self):
        with pytest.raises(ValueError):
            tiny_config(interests_per_user=(5, 3))
        with pytest.raises(ValueError):
            tiny_config(interests_per_user=(0, 3))

    def test_rejects_too_short_histories(self):
        with pytest.raises(ValueError):
            tiny_config(history_length=(2, 3))


class TestCatalogue:
    def test_every_topic_owns_an_item(self):
        world = InterestWorld(tiny_config())
        owned = set(world.item_topic.tolist())
        assert owned == set(range(world.config.num_topics))

    def test_categories_mostly_track_topics(self):
        config = tiny_config(num_items=400, category_noise=0.0)
        world = InterestWorld(config)
        # With zero noise, all items of a topic share one category.
        for topic in range(config.num_topics):
            cats = world.item_category[world.item_topic == topic]
            assert len(set(cats.tolist())) == 1

    def test_category_noise_perturbs(self):
        clean = InterestWorld(tiny_config(num_items=400, category_noise=0.0))
        noisy = InterestWorld(tiny_config(num_items=400, category_noise=0.5))
        disagreement = (clean.item_category != noisy.item_category).mean()
        assert disagreement > 0.1

    def test_sellers_only_for_alipay_style(self):
        assert InterestWorld(tiny_config()).item_seller is None
        world = InterestWorld(tiny_config(num_sellers=5))
        assert world.item_seller is not None
        assert world.item_seller.min() >= 0
        assert world.item_seller.max() < 5

    def test_popularity_exponent_skews_draws(self):
        flat = InterestWorld(tiny_config(popularity_exponent=0.0))
        skewed = InterestWorld(tiny_config(popularity_exponent=2.0))
        flat_top = max(w.max() for w in flat.topic_weights)
        skewed_top = max(w.max() for w in skewed.topic_weights)
        assert skewed_top > flat_top


class TestUsers:
    def test_history_lengths_in_range(self):
        config = tiny_config(history_length=(10, 15))
        world = InterestWorld(config)
        for user in world.users:
            assert 10 <= user.items.size <= 15
            assert user.items.size == user.topics.size

    def test_interest_counts_in_range(self):
        config = tiny_config(interests_per_user=(2, 4))
        world = InterestWorld(config)
        for user in world.users:
            assert 2 <= user.interest_topics.size <= 4
            assert np.isclose(user.affinities.sum(), 1.0)

    def test_behaviours_come_from_user_topics(self):
        config = tiny_config(missclick_rate=0.0)
        world = InterestWorld(config)
        for user in world.users:
            for topic in user.topics:
                assert topic in user.interest_topics

    def test_missclicks_marked(self):
        config = tiny_config(missclick_rate=0.5, num_users=50)
        world = InterestWorld(config)
        noise = np.concatenate([u.topics for u in world.users]) == -1
        assert 0.3 < noise.mean() < 0.7

    def test_closeness_assumption_holds(self):
        """Adjacent behaviours share a topic far more often than chance."""
        config = tiny_config(num_users=100, missclick_rate=0.0,
                             interests_per_user=(3, 5))
        world = InterestWorld(config)
        same, total = 0, 0
        for user in world.users:
            same += int((user.topics[1:] == user.topics[:-1]).sum())
            total += user.topics.size - 1
        adjacent_rate = same / total
        assert adjacent_rate > 0.45  # >> 1/num_interests ≈ 0.25

    def test_interleaving_produces_recurrence(self):
        """With heavy interleaving, interests recur after interruptions."""
        config = tiny_config(num_users=80, interleave_prob=0.6,
                             missclick_rate=0.0, interests_per_user=(3, 5),
                             history_length=(20, 30))
        world = InterestWorld(config)
        recur, total = 0, 0
        for user in world.users:
            topics = user.topics
            for i in range(2, topics.size):
                if topics[i] != topics[i - 1]:
                    total += 1
                    if topics[i] in topics[max(0, i - 8):i - 1]:
                        recur += 1
        assert total > 0
        assert recur / total > 0.5

    def test_reproducible_from_seed(self):
        a = InterestWorld(tiny_config(seed=7))
        b = InterestWorld(tiny_config(seed=7))
        for ua, ub in zip(a.users, b.users):
            np.testing.assert_array_equal(ua.items, ub.items)

    def test_different_seeds_differ(self):
        a = InterestWorld(tiny_config(seed=1))
        b = InterestWorld(tiny_config(seed=2))
        assert any(not np.array_equal(ua.items, ub.items)
                   for ua, ub in zip(a.users, b.users))


class TestNegativeSampling:
    def test_negative_never_interacted(self):
        world = InterestWorld(tiny_config())
        rng = np.random.default_rng(0)
        for user in world.users[:10]:
            for _ in range(5):
                negative = world.sample_negative(rng, user)
                assert negative not in set(user.items.tolist())

    def test_affinity_diagnostic(self):
        world = InterestWorld(tiny_config(missclick_rate=0.0))
        user = world.users[0]
        # An item from the user's own history has positive affinity.
        assert world.affinity(user, int(user.items[0])) > 0


class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_any_seed_builds_valid_world(self, seed):
        world = InterestWorld(tiny_config(seed=seed))
        assert len(world.users) == 30
        for user in world.users:
            assert user.items.min() >= 0
            assert user.items.max() < 80
